"""Quickstart: simulate RLR against LRU on a synthetic workload.

Runs the paper's RLR policy (and plain LRU) on a scaled-down Table III
memory hierarchy driven by an omnetpp-like workload model, and prints LLC
hit rates, demand MPKI, and the IPC speedup.

Usage:
    python examples/quickstart.py
"""

from repro.eval import EvalConfig, compare_policies, speedup_percent


def main() -> None:
    # Scale 16 = Table III divided by 16 (LLC: 2MB -> 128KB, still 16-way).
    eval_config = EvalConfig(scale=16, trace_length=30_000, seed=7)
    trace = eval_config.trace("471.omnetpp")
    print(f"workload: {trace.name}  ({len(trace)} references, "
          f"{trace.instruction_count} instructions)")

    results = compare_policies(
        eval_config, trace, ["lru", "drrip", "rlr", "rlr_unopt"],
        include_belady=True,
    )

    baseline = results["lru"]
    print(f"\n{'policy':12s} {'LLC hit%':>9s} {'demand MPKI':>12s} "
          f"{'IPC':>7s} {'speedup':>9s}")
    for name, result in results.items():
        speedup = speedup_percent(result.single_ipc, baseline.single_ipc)
        print(
            f"{name:12s} {100 * result.llc_hit_rate:8.1f}% "
            f"{result.demand_mpki:12.2f} {result.single_ipc:7.3f} "
            f"{speedup:+8.2f}%"
        )
    print("\n(Belady optimizes total hit rate over all access types, as in "
          "the paper's Figure 1.)")


if __name__ == "__main__":
    main()
