"""Cost-effectiveness scatter: Table I overhead vs measured speedup.

The paper's core argument is about the *combination* of axes: RLR sits
among the PC-based policies on performance while paying a fraction of
their true implementation cost (PC plumbing excluded from Table I).  This
example measures both axes on a workload subset and renders the trade-off.

Usage:
    python examples/overhead_vs_performance.py
"""

from repro.eval import EvalConfig, compare_policies, geomean
from repro.eval.experiments import table1_overhead

POLICIES = ["drrip", "kpc_r", "ship", "ship++", "hawkeye", "mpppb",
            "glider", "rlr", "rlr_unopt"]
WORKLOADS = ["471.omnetpp", "450.soplex", "483.xalancbmk", "470.lbm",
             "429.mcf", "403.gcc"]


def main() -> None:
    eval_config = EvalConfig(scale=16, trace_length=25_000, seed=7)
    overheads = {row.policy: row for row in table1_overhead()}

    speedups = {policy: [] for policy in POLICIES}
    for workload in WORKLOADS:
        trace = eval_config.trace(workload)
        results = compare_policies(eval_config, trace, ["lru"] + POLICIES)
        baseline = results["lru"].single_ipc
        for policy in POLICIES:
            speedups[policy].append(results[policy].single_ipc / baseline)
        print(f"finished {workload}")

    print(f"\n{'policy':12s} {'overhead KB':>12s} {'uses PC':>8s} "
          f"{'speedup':>9s}  cost-effectiveness")
    rows = []
    for policy in POLICIES:
        overall = (geomean(speedups[policy]) - 1) * 100
        row = overheads.get(policy)
        kib = row.kib if row else float("nan")
        uses_pc = row.uses_pc if row else False
        rows.append((policy, kib, uses_pc, overall))
    for policy, kib, uses_pc, overall in sorted(rows, key=lambda r: r[1]):
        efficiency = overall / kib if kib else 0.0
        bar = "#" * max(0, int(efficiency * 20))
        print(f"{policy:12s} {kib:12.2f} {'yes' if uses_pc else 'no':>8s} "
              f"{overall:+8.2f}%  {bar}")

    print("\nPC-based policies additionally require PC plumbing through the "
          "whole pipeline and cache hierarchy — a cost Table I omits and "
          "the paper argues is decisive (§I).")


if __name__ == "__main__":
    main()
