"""The paper's §III pipeline: train an RL agent, interpret it, select features.

1. Record the LLC access stream of a workload (Figure 2's trace input).
2. Train the DQN agent (MLP 334-175-16 at full scale; smaller here for
   speed) with Belady-derived rewards and experience replay.
3. Evaluate the learned policy greedily against LRU and the derived RLR.
4. Print the per-feature weight importances (Figure 3's heat map, one
   column) and a hill-climbing feature-selection run (§III-B).

Usage:
    python examples/train_rl_agent.py [workload]
"""

import sys

from repro.eval import EvalConfig, compare_policies
from repro.eval.runner import replay, _prepared
from repro.rl import (
    AgentReplacementPolicy,
    TrainerConfig,
    feature_importance,
    hill_climb,
    train_on_stream,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "450.soplex"
    eval_config = EvalConfig(scale=32, trace_length=16_000, seed=7)
    trace = eval_config.trace(workload)
    prepared = _prepared(eval_config, trace, 1, None)
    print(f"workload: {workload}  LLC stream: {len(prepared.llc_records)} accesses")

    # Baselines.
    baselines = compare_policies(
        eval_config, trace, ["lru", "rlr"], include_belady=True
    )

    # Train (hidden size reduced from the paper's 175 for runtime).
    config = TrainerConfig(hidden_size=64, epochs=2, seed=1)
    print("training the agent ...")
    trained = train_on_stream(prepared.llc_config, prepared.llc_records, config)

    # Greedy evaluation through the standard replay harness.
    adapter = AgentReplacementPolicy(trained.agent, trained.extractor, train=False)
    rl_result = replay(prepared, adapter, detailed=True)

    print(f"\n{'policy':10s} {'LLC hit rate':>13s}")
    for name in ("lru", "rlr", "belady"):
        print(f"{name:10s} {100 * baselines[name].llc_hit_rate:12.1f}%")
    print(f"{'rl agent':10s} {100 * rl_result.llc_hit_rate:12.1f}%")

    print("\nfeature importances (Figure 3, one column):")
    importances = feature_importance(trained.agent.network, trained.extractor)
    for name, value in sorted(importances.items(), key=lambda kv: -kv[1])[:8]:
        print(f"  {name:26s} {value:.4f}")

    print("\nhill-climbing feature selection (small budget):")
    search = hill_climb(
        prepared.llc_config,
        [prepared.llc_records[:4000]],
        candidates=[
            "access_preuse", "line_preuse", "line_last_access_type",
            "line_hits", "line_recency", "line_dirty", "set_number",
        ],
        config=TrainerConfig(hidden_size=16, epochs=1, max_records=3000, seed=2),
        max_features=4,
    )
    for step in search.steps:
        print(f"  + {step.added_feature:24s} -> hit rate {step.score:.3f}")
    print(f"selected: {search.selected}")


if __name__ == "__main__":
    main()
