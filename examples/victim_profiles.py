"""Compare eviction behaviour across policies (Figures 5-7 for any policy).

The paper derives RLR from the RL agent's victim statistics; this example
checks the distillation empirically by comparing LRU's, DRRIP's, and RLR's
victim profiles on one workload:

* hits-since-insertion histogram (Figure 6's metric),
* recency histogram (Figure 7's metric — RLR should skew to high recency),
* average victim age per last-access type (Figure 5's metric).

Usage:
    python examples/victim_profiles.py [workload]
"""

import sys

from repro.eval import EvalConfig
from repro.eval.victim_analysis import compare_victim_profiles


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "471.omnetpp"
    eval_config = EvalConfig(scale=16, trace_length=25_000, seed=7)
    ways = eval_config.hierarchy(num_cores=1).llc.ways

    profiles = compare_victim_profiles(
        eval_config, workload, ["lru", "drrip", "rlr_unopt"]
    )

    print(f"workload: {workload}\n")
    print(f"{'policy':12s} {'victims':>8s} {'0-hit%':>7s} {'1-hit%':>7s} "
          f"{'upper-recency%':>15s}")
    for name, stats in profiles.items():
        upper = stats.upper_half_recency_fraction(ways)
        print(
            f"{name:12s} {stats.victims:8d} "
            f"{100 * stats.hits_histogram.get('0', 0):6.1f}% "
            f"{100 * stats.hits_histogram.get('1', 0):6.1f}% "
            f"{100 * upper:14.1f}%"
        )

    print("\naverage victim age by last access type:")
    for name, stats in profiles.items():
        ages = ", ".join(
            f"{t}={age:.1f}" for t, age in sorted(stats.avg_age_by_type.items())
        )
        print(f"  {name:12s} {ages}")

    print("\nLRU victims sit at recency 0 by definition; RLR's skew toward "
          "high recency reflects the paper's Figure 7 insight.")


if __name__ == "__main__":
    main()
