"""Explain a single replacement decision of a trained agent (saliency).

Trains a small agent, captures a real replacement decision from a replay,
and prints the gradient-times-input attribution of each Table II feature
toward the chosen way's Q-value — the per-decision companion to the
paper's global Figure 3 heat map.

Usage:
    python examples/explain_decision.py [workload]
"""

import sys

from repro.cache.cache import Cache
from repro.eval import EvalConfig
from repro.eval.runner import _prepared
from repro.rl.explain import explain_decision, render_explanation
from repro.rl.policy_adapter import AgentReplacementPolicy
from repro.rl.trainer import TrainerConfig, train_on_stream


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "450.soplex"
    eval_config = EvalConfig(scale=32, trace_length=10_000, seed=7)
    trace = eval_config.trace(workload)
    prepared = _prepared(eval_config, trace, 1, None)

    print(f"training a small agent on {workload} ...")
    trained = train_on_stream(
        prepared.llc_config,
        prepared.llc_records,
        TrainerConfig(hidden_size=32, epochs=1, seed=1),
    )

    captured = {}

    class _CapturingAdapter(AgentReplacementPolicy):
        def victim(self, set_index, cache_set, access):
            way = super().victim(set_index, cache_set, access)
            if "state" not in captured and self._set_accesses[set_index] > 50:
                state = self.features.vector(
                    access, self._access_preuse(set_index, access), cache_set
                )
                captured["state"] = state
                captured["way"] = way
                captured["set"] = set_index
            return way

    adapter = _CapturingAdapter(trained.agent, trained.extractor, train=False)
    adapter.bind(prepared.llc_config)
    cache = Cache(prepared.llc_config, adapter, detailed=True)
    for record in prepared.llc_records:
        cache.access(record)
        if "state" in captured:
            break

    if "state" not in captured:
        print("no decision captured (trace too short)")
        return

    way = captured["way"]
    print(f"\ncaptured a decision in set {captured['set']}: evict way {way}")
    print("top feature attributions toward that choice:\n")
    attributions = explain_decision(trained, captured["state"], way, top=10)
    print(render_explanation(attributions))


if __name__ == "__main__":
    main()
