"""Extending the framework: write and evaluate your own replacement policy.

Implements a toy "protect-dirty" policy through the public
:class:`repro.cache.replacement.ReplacementPolicy` interface, registers it,
and benchmarks it against LRU and RLR on a write-heavy workload — the same
harness the paper's policies use.

Usage:
    python examples/custom_policy.py
"""

from repro.cache.replacement import ReplacementPolicy, register_policy
from repro.eval import EvalConfig, compare_policies, speedup_percent


@register_policy
class ProtectDirtyPolicy(ReplacementPolicy):
    """Evict clean lines before dirty ones; LRU order within each class.

    Dirty evictions cost a memory write, so retaining dirty lines trades
    read misses for write traffic — rarely a good deal for IPC, which this
    example demonstrates empirically.
    """

    name = "protect_dirty"

    def victim(self, set_index, cache_set, access):
        def eviction_key(way):
            line = cache_set.lines[way]
            return (line.dirty, line.recency)  # clean first, then LRU

        return min(cache_set.valid_ways(), key=eviction_key)


def main() -> None:
    eval_config = EvalConfig(scale=16, trace_length=30_000, seed=7)
    trace = eval_config.trace("470.lbm")  # write-heavy streaming model
    results = compare_policies(
        eval_config, trace, ["lru", "rlr", "protect_dirty"]
    )
    baseline = results["lru"]
    print(f"workload: {trace.name}")
    print(f"\n{'policy':15s} {'LLC hit%':>9s} {'speedup':>9s}")
    for name, result in results.items():
        speedup = speedup_percent(result.single_ipc, baseline.single_ipc)
        print(f"{name:15s} {100 * result.llc_hit_rate:8.1f}% {speedup:+8.2f}%")


if __name__ == "__main__":
    main()
