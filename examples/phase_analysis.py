"""Watch a policy adapt across program phases (paper §III-C).

Builds a two-phase workload (a cache-fitting loop followed by a thrashing
loop), replays it under LRU, DRRIP, and RLR, and prints windowed hit-rate
sparklines plus RLR's reuse-distance (RD) trajectory — the mechanism that
lets RLR track phase changes.

Usage:
    python examples/phase_analysis.py
"""

import random

from repro.cache import Cache, CacheConfig
from repro.cache.replacement import make_policy
from repro.core.rlr import RLRUnoptPolicy
from repro.eval.timeline import TimelineCollector, render_sparkline
from repro.traces import synthetic
from repro.traces.record import AccessType, TraceRecord


def build_phased_records(llc_lines: int, length: int = 24_000):
    rng = random.Random(7)
    phases = [
        lambda r: synthetic.cyclic_working_set(10**9, llc_lines // 2),  # fits
        lambda r: synthetic.cyclic_working_set(10**9, llc_lines * 2),  # thrash
        lambda r: synthetic.zipfian(r, 10**9, llc_lines, alpha=1.1),  # skewed
    ]
    records = []
    for line, _, _ in synthetic.phased(rng, length, phases):
        records.append(TraceRecord(address=line * 64, access_type=AccessType.LOAD))
    return records


def main() -> None:
    config = CacheConfig("LLC", 128 * 1024, 16, latency=26)
    records = build_phased_records(config.num_lines)
    window = 800

    print(f"three phases over {len(records)} LLC accesses "
          f"(fits -> thrash -> zipf), window = {window}\n")
    for name in ("lru", "drrip", "rlr_unopt"):
        policy = RLRUnoptPolicy() if name == "rlr_unopt" else make_policy(name)
        policy.bind(config)
        cache = Cache(config, policy, detailed=False)
        collector = TimelineCollector(window, policy=policy)
        cache.add_access_observer(collector)
        for record in records:
            cache.access(record)
        timeline = collector.timeline
        print(f"{name:10s} hit rate  {render_sparkline(timeline.hit_rates)}")
        if timeline.rd_values:
            print(f"{'':10s} RD value  {render_sparkline(timeline.rd_values)}"
                  f"  (last RD = {timeline.rd_values[-1]})")
        print(f"{'':10s} overall {100 * cache.stats.hit_rate:.1f}%  "
              f"max phase shift {timeline.phase_shift_magnitude():.2f}\n")


if __name__ == "__main__":
    main()
