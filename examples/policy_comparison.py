"""Figure-10-style comparison: IPC speedup over LRU across workloads.

Sweeps a selection of SPEC-2006-like workload models under every evaluated
replacement policy and prints per-workload speedups plus the suite geomean
(the paper's Table IV quantity).

Usage:
    python examples/policy_comparison.py [workload ...]
"""

import sys

from repro.eval import EvalConfig, compare_policies, geomean
from repro.eval.reporting import format_speedup_series

POLICIES = ["drrip", "kpc_r", "ship", "ship++", "hawkeye", "rlr", "rlr_unopt"]
DEFAULT_WORKLOADS = [
    "429.mcf",
    "470.lbm",
    "471.omnetpp",
    "450.soplex",
    "483.xalancbmk",
    "403.gcc",
]


def main() -> None:
    workloads = sys.argv[1:] or DEFAULT_WORKLOADS
    eval_config = EvalConfig(scale=16, trace_length=30_000, seed=7)

    series = {}
    for name in workloads:
        trace = eval_config.trace(name)
        results = compare_policies(eval_config, trace, ["lru"] + POLICIES)
        baseline = results["lru"].single_ipc
        series[name] = {
            policy: results[policy].single_ipc / baseline for policy in POLICIES
        }
        print(f"finished {name}")

    print()
    print(format_speedup_series(series, POLICIES,
                                title="IPC speedup over LRU (Figure 10 style)"))
    print("\nsuite geomean:")
    for policy in POLICIES:
        overall = geomean(row[policy] for row in series.values())
        print(f"  {policy:10s} {(overall - 1) * 100:+.2f}%")


if __name__ == "__main__":
    main()
