"""4-core shared-LLC simulation with RLR's multicore extension (paper §IV-D).

Builds a 4-benchmark mix (one workload model per core, interleaved by
instruction progress), runs it on a 4-core hierarchy with a shared LLC, and
compares the multicore RLR (with its per-core demand-hit priority term)
against LRU, DRRIP, and SHiP++.

Usage:
    python examples/multicore_mix.py [w0 w1 w2 w3]
"""

import sys

from repro.core.rlr import RLRPolicy
from repro.eval import EvalConfig, mix_speedup, run_workload

DEFAULT_MIX = ("429.mcf", "470.lbm", "471.omnetpp", "483.xalancbmk")


def main() -> None:
    mix = tuple(sys.argv[1:5]) if len(sys.argv) >= 5 else DEFAULT_MIX
    eval_config = EvalConfig(scale=16, trace_length=15_000, seed=7)
    trace = eval_config.mix_trace(mix)
    print(f"mix: {trace.name}  ({len(trace)} interleaved references)")

    baseline = run_workload(eval_config, trace, "lru", num_cores=4)
    print(f"\nLRU per-core IPC: {[round(ipc, 3) for ipc in baseline.ipc]}")

    contenders = {
        "drrip": "drrip",
        "ship++": "ship++",
        "rlr (multicore)": RLRPolicy(num_cores=4),
        "rlr (no P_core)": RLRPolicy(num_cores=1),
    }
    print(f"\n{'policy':18s} {'mix speedup':>12s} {'LLC demand hit%':>16s}")
    for label, policy in contenders.items():
        result = run_workload(eval_config, trace, policy, num_cores=4)
        speedup = mix_speedup(result.ipc, baseline.ipc)
        print(
            f"{label:18s} {(speedup - 1) * 100:+11.2f}% "
            f"{100 * result.llc_demand_hit_rate:15.1f}%"
        )


if __name__ == "__main__":
    main()
