"""Close the distillation loop: agent vs RLR decision quality.

The paper trains an agent against Belady-graded rewards, then distills RLR
from it.  This example measures, on one workload:

1. the agent's training curve (fraction of Belady-optimal decisions per
   window — §III-A's reward signal made visible), and
2. the final Belady-agreement of LRU, DRRIP, RLR, and the trained agent.

Usage:
    python examples/agreement_analysis.py [workload]
"""

import sys

from repro.eval import EvalConfig, belady_agreement, render_sparkline
from repro.eval.agreement import OracleProbePolicy
from repro.eval.runner import _prepared
from repro.cache.cache import Cache
from repro.rl.metrics import train_with_monitor
from repro.rl.policy_adapter import AgentReplacementPolicy
from repro.rl.reward import FutureOracle
from repro.rl.trainer import TrainerConfig


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "450.soplex"
    eval_config = EvalConfig(scale=32, trace_length=14_000, seed=7)
    trace = eval_config.trace(workload)
    prepared = _prepared(eval_config, trace, 1, None)
    records = prepared.llc_records

    print(f"workload: {workload} ({len(records)} LLC accesses)")
    print("training the agent ...")
    trained, curve = train_with_monitor(
        prepared.llc_config,
        records,
        TrainerConfig(hidden_size=48, epochs=2, seed=1),
        window=600,
    )
    print(f"training curve (optimal-decision rate per window):")
    print(f"  {render_sparkline(curve.optimal_rates)}  "
          f"(first {curve.optimal_rates[0]:.2f} -> last "
          f"{curve.final_optimal_rate:.2f})")

    print("\nfinal Belady agreement (optimal% / harmful%):")
    for name in ("lru", "drrip", "rlr"):
        profile = belady_agreement(eval_config, workload, name)
        print(f"  {name:10s} {100 * profile.optimal_rate:5.1f}% / "
              f"{100 * profile.harmful_rate:5.1f}%")
    # The trained agent, probed the same way.
    adapter = AgentReplacementPolicy(trained.agent, trained.extractor, train=False)
    probe = OracleProbePolicy(adapter, FutureOracle(prepared.llc_line_stream))
    probe.bind(prepared.llc_config)
    cache = Cache(prepared.llc_config, probe, detailed=True)
    for record in records:
        cache.access(record)
    profile = probe.profile
    print(f"  {'rl agent':10s} {100 * profile.optimal_rate:5.1f}% / "
          f"{100 * profile.harmful_rate:5.1f}%")


if __name__ == "__main__":
    main()
