"""§V-B: RLR vs KPC-R when KPC-P replaces the IP-stride L2 prefetcher.

The paper reports that with KPC-P prefetching, KPC-R and RLR improve SPEC
performance by 3.9% and 5.5% respectively — RLR stays ahead because it
evicts non-reused prefetched LLC lines sooner.
"""

import pytest

from repro.eval.metrics import geomean
from repro.eval.reporting import format_speedup_series
from repro.eval.runner import compare_policies

from common import scenario

SCENARIO = scenario("kpcp-prefetcher")
POLICIES = tuple(p for p in SCENARIO.policies if p != "lru")


def _sweep(eval_config):
    series = {}
    for name in SCENARIO.workload_names:
        trace = eval_config.trace(name)
        results = compare_policies(
            eval_config,
            trace,
            list(SCENARIO.policies),
            l2_prefetcher=SCENARIO.params["l2_prefetcher"],
        )
        baseline = results["lru"].single_ipc
        series[name] = {
            policy: results[policy].single_ipc / baseline for policy in POLICIES
        }
    return series


@pytest.mark.benchmark(group="kpc_p")
def test_rlr_vs_kpcr_under_kpcp_prefetching(benchmark, eval_config):
    series = benchmark.pedantic(_sweep, args=(eval_config,), rounds=1, iterations=1)
    print()
    print(format_speedup_series(
        series, POLICIES,
        title="RLR vs KPC-R with KPC-P as the L2 prefetcher (§V-B)",
    ))
    overall = {
        policy: (geomean(row[policy] for row in series.values()) - 1) * 100
        for policy in POLICIES
    }
    print("overall geomean %:", {k: round(v, 2) for k, v in overall.items()})

    # Shape: both beat LRU overall under KPC-P prefetching.
    assert overall["rlr"] > -0.5
    assert overall["kpc_r"] > -0.5
