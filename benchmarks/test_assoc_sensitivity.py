"""Associativity sensitivity: RLR at 4/8/16 ways (constant capacity).

The paper's RLR is specified for a 16-way LLC; recency approximation and
the priority weights are associativity-independent by construction.  This
sweep checks the policy degrades gracefully at lower associativity.
"""

from dataclasses import replace

import pytest

from repro.eval.metrics import geomean
from repro.eval.reporting import format_table
from repro.eval.runner import compare_policies

from common import scenario

SCENARIO = scenario("assoc-sensitivity")
WAYS = tuple(SCENARIO.params["ways"])
WORKLOADS = SCENARIO.workload_names
POLICIES = [p for p in SCENARIO.policies if p != "lru"]


@pytest.mark.benchmark(group="sensitivity")
def test_associativity_sensitivity(benchmark, eval_config):
    def run():
        table = {}
        for ways in WAYS:
            config = replace(SCENARIO.eval_config(), llc_ways=ways)
            speedups = {policy: [] for policy in POLICIES}
            for workload in WORKLOADS:
                trace = config.trace(workload)
                results = compare_policies(config, trace, ["lru"] + POLICIES)
                baseline = results["lru"].single_ipc
                for policy in POLICIES:
                    speedups[policy].append(
                        results[policy].single_ipc / baseline
                    )
            table[ways] = {
                policy: (geomean(values) - 1) * 100
                for policy, values in speedups.items()
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"LLC ways": ways, **{p: round(v, 2) for p, v in row.items()}}
        for ways, row in table.items()
    ]
    print()
    print(format_table(
        rows, headers=["LLC ways"] + POLICIES,
        title="geomean % speedup over LRU vs LLC associativity",
    ))

    for ways, row in table.items():
        assert row["rlr"] > -2.0, ways  # graceful at low associativity
