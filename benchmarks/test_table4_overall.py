"""Table IV: overall speedup over LRU — 1-core and 4-core, both suites."""

import pytest

from repro.eval.experiments import table4_overall
from repro.eval.reporting import format_table

from common import scenario


@pytest.mark.benchmark(group="table4")
def test_table4_overall_speedups(benchmark, eval_config, eval_config_4core):
    table = benchmark.pedantic(
        table4_overall,
        kwargs=dict(
            eval_config_1core=eval_config,
            eval_config_4core=eval_config_4core,
            scenario=scenario("table4"),
        ),
        rounds=1,
        iterations=1,
    )
    columns = list(next(iter(table.values())).keys())
    rows = [
        {"policy": policy, **{c: round(values[c], 2) for c in columns}}
        for policy, values in table.items()
    ]
    print()
    print(format_table(
        rows,
        headers=["policy"] + columns,
        title="Table IV — overall % speedup over LRU",
    ))

    # Paper shape (1-core SPEC column): every policy gains over LRU;
    # SHiP++ leads; RLR is competitive with the PC-free group.
    spec_column = {p: v["1-core spec2006"] for p, v in table.items()}
    assert all(value > 0 for value in spec_column.values())
    assert spec_column["ship++"] == max(spec_column.values())
    assert spec_column["rlr"] > 0
