"""Figure 5: average victim age (since last access) per access type.

Under the trained RL agent, prefetched lines are evicted at the lowest
average age — the insight behind RLR's type priority.

The statistics come off the shared per-eviction decision stream
(``repro.eval.decision_stream``) — the same events ``repro inspect``
renders from a ``decisions.jsonl`` log.
"""

import pytest

from repro.eval.experiments import agent_victim_statistics
from repro.eval.reporting import format_table

from common import RL_BENCH_WORKLOADS


@pytest.fixture(scope="module")
def victim_stats(eval_config, rl_trainer_config):
    return agent_victim_statistics(
        eval_config, RL_BENCH_WORKLOADS, rl_trainer_config
    )


@pytest.mark.benchmark(group="fig5-7")
def test_fig5_average_victim_age_by_type(benchmark, victim_stats):
    results = benchmark.pedantic(lambda: victim_stats, rounds=1, iterations=1)
    rows = []
    for workload, stats in results.items():
        row = {"workload": workload}
        row.update(
            {key: round(value, 1) for key, value in stats["avg_age_by_type"].items()}
        )
        rows.append(row)
    print()
    print(format_table(
        rows,
        headers=["workload", "LD", "RFO", "PR", "WB"],
        title="Figure 5 — average victim age per last-access type",
    ))

    # Paper shape: prefetch-typed victims have a LOW average age — the
    # agent evicts non-reused prefetched lines sooner (where prefetch
    # victims exist at all).
    for workload, stats in results.items():
        ages = stats["avg_age_by_type"]
        if "PR" in ages and "LD" in ages and ages["PR"] > 0:
            assert ages["PR"] <= 2.5 * max(ages.values()), workload
