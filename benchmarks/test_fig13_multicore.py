"""Figure 13: 4-core IPC speedup over LRU on random SPEC mixes.

The paper runs 100 random 4-benchmark mixes; the benchmark default runs a
handful for runtime (the harness supports the full count via
``multicore_speedups(..., num_mixes=100)``).
"""

import pytest

from repro.eval.experiments import multicore_speedups
from repro.eval.metrics import geomean
from repro.eval.reporting import format_speedup_series

from common import FIGURE_POLICIES, scenario

NUM_MIXES = scenario("fig13").mixes.random_count


@pytest.mark.benchmark(group="fig13")
def test_fig13_multicore_spec_mixes(benchmark, eval_config_4core):
    results = benchmark.pedantic(
        multicore_speedups,
        kwargs=dict(
            eval_config=eval_config_4core,
            scenario=scenario("fig13"),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_speedup_series(
        results, FIGURE_POLICIES,
        title=f"Figure 13 — 4-core mix speedup over LRU ({NUM_MIXES} mixes)",
    ))
    overall = {
        policy: (geomean(row[policy] for row in results.values()) - 1) * 100
        for policy in FIGURE_POLICIES
    }
    print("overall geomean %:", {k: round(v, 2) for k, v in overall.items()})

    assert len(results) == NUM_MIXES
    # Paper shape: multicore gains exist for the adaptive policies, and the
    # multicore-aware RLR stays within a few percent of the PC-based group.
    assert overall["rlr"] > -1.0
    assert max(overall.values()) > 0.5


@pytest.mark.benchmark(group="fig13")
def test_fig13_cloudsuite_4core(benchmark, eval_config_4core):
    results = benchmark.pedantic(
        multicore_speedups,
        kwargs=dict(
            eval_config=eval_config_4core,
            num_mixes=1,
            policies=("drrip", "rlr"),
            suite="cloudsuite",
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_speedup_series(
        results, ("drrip", "rlr"),
        title="Figure 13 — 4-core CloudSuite mix",
    ))
    assert results
