"""Figure 6: hits-since-insertion distribution of the RL agent's victims.

Paper: in all benchmarks more than 50% of victims have zero hits, and more
than 80% have at most one — the agent evicts lines with few hits.
"""

import pytest

from repro.eval.experiments import agent_victim_statistics
from repro.eval.reporting import format_table
from repro.eval.victim_analysis import VictimStatistics

from common import RL_BENCH_WORKLOADS


@pytest.mark.benchmark(group="fig5-7")
def test_fig6_victim_hits_histogram(benchmark, eval_config, rl_trainer_config):
    results = benchmark.pedantic(
        agent_victim_statistics,
        args=(eval_config, RL_BENCH_WORKLOADS[:2], rl_trainer_config),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "workload": workload,
            "0 hits": f"{100 * stats['hits_histogram']['0']:.0f}%",
            "1 hit": f"{100 * stats['hits_histogram']['1']:.0f}%",
            ">1 hit": f"{100 * stats['hits_histogram']['>1']:.0f}%",
        }
        for workload, stats in results.items()
    ]
    print()
    print(format_table(
        rows,
        headers=["workload", "0 hits", "1 hit", ">1 hit"],
        title="Figure 6 — victim hits since insertion",
    ))

    for workload, stats in results.items():
        # The decision stream's profile, through the normalized accessors
        # (key types survive a JSON round-trip of the stats dict).
        profile = VictimStatistics.from_dict(stats)
        # Paper: >50% of victims were never hit; >=80% had at most one hit.
        assert profile.zero_hit_fraction > 0.5, workload
        assert (
            profile.zero_hit_fraction + profile.hits_histogram["1"] > 0.8
        ), workload
