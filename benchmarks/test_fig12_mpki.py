"""Figure 12: demand MPKI per policy for workloads with LRU MPKI > 3."""

import pytest

from repro.eval.experiments import mpki_comparison
from repro.eval.reporting import format_table

from common import FIGURE_POLICIES, scenario


@pytest.mark.benchmark(group="fig12")
def test_fig12_demand_mpki(benchmark, eval_config):
    results = benchmark.pedantic(
        mpki_comparison,
        kwargs=dict(eval_config=eval_config, scenario=scenario("fig12")),
        rounds=1,
        iterations=1,
    )
    policies = ["lru"] + list(FIGURE_POLICIES)
    rows = [
        {"workload": workload, **{p: round(row[p], 1) for p in policies}}
        for workload, row in results.items()
    ]
    print()
    print(format_table(
        rows,
        headers=["workload"] + policies,
        title="Figure 12 — demand MPKI (workloads with LRU MPKI > 3)",
    ))

    assert results, "no workload crossed the MPKI threshold"
    for workload, row in results.items():
        assert row["lru"] > 3.0
        # RLR reduces MPKI relative to LRU on most plotted workloads; never
        # catastrophically worse anywhere.
        assert row["rlr"] < row["lru"] * 1.10, workload
    reduced = sum(1 for row in results.values() if row["rlr"] < row["lru"])
    assert reduced >= len(results) // 2
