"""Shared fixtures for the per-figure/table benchmark harness.

Each benchmark regenerates one paper artifact (see DESIGN.md §4) and prints
it in the paper's format; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.  A session-scoped EvalConfig caches trace generation and
the pass-1 LLC streams across benchmarks.
"""

from __future__ import annotations

import pytest

from repro.eval import EvalConfig
from repro.rl.trainer import TrainerConfig

#: Workloads used by the RL-centric benchmarks (training is expensive).
RL_BENCH_WORKLOADS = ["450.soplex", "471.omnetpp", "403.gcc"]


@pytest.fixture(scope="session")
def eval_config():
    """Single-core evaluation configuration shared by all benchmarks."""
    return EvalConfig(scale=16, trace_length=20_000, seed=7)


@pytest.fixture(scope="session")
def eval_config_4core():
    """Shorter traces for the 4-core benchmarks (4x the simulation work)."""
    return EvalConfig(scale=16, trace_length=8_000, seed=7, num_cores=4)


@pytest.fixture(scope="session")
def rl_trainer_config():
    """Downscaled agent for benchmark runtime (paper: 175 hidden, 1+ epochs)."""
    return TrainerConfig(hidden_size=48, epochs=1, seed=1)
