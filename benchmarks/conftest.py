"""Shared fixtures for the per-figure/table benchmark harness.

Each benchmark regenerates one paper artifact (see DESIGN.md §4) and prints
it in the paper's format; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.  A session-scoped EvalConfig caches trace generation and
the pass-1 LLC streams across benchmarks, and a session prepared-workload
disk cache (:mod:`repro.eval.prep_cache`) persists pass-1 artifacts so
every runner entry point — including the parallel sweep engine — shares
them.  Set ``REPRO_PREP_CACHE`` to a directory to persist the cache across
benchmark sessions.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.prep_cache import attach_prep_cache
from repro.rl.trainer import TrainerConfig

from common import RL_BENCH_WORKLOADS, scenario  # noqa: F401 (re-export)


@pytest.fixture(scope="session")
def prep_cache_dir(tmp_path_factory):
    """Prepared-workload cache directory (override via REPRO_PREP_CACHE)."""
    configured = os.environ.get("REPRO_PREP_CACHE")
    if configured:
        return configured
    return tmp_path_factory.mktemp("prep-cache")


@pytest.fixture(scope="session")
def eval_config(prep_cache_dir):
    """Single-core evaluation configuration shared by all benchmarks."""
    config = scenario("fig10").eval_config()
    attach_prep_cache(config, prep_cache_dir)
    return config


@pytest.fixture(scope="session")
def eval_config_4core(prep_cache_dir):
    """Shorter traces for the 4-core benchmarks (4x the simulation work)."""
    config = scenario("fig13").eval_config()
    attach_prep_cache(config, prep_cache_dir)
    return config


@pytest.fixture(scope="session")
def rl_trainer_config():
    """Downscaled agent for benchmark runtime (paper: 175 hidden, 1+ epochs)."""
    return TrainerConfig(**scenario("fig3").params["trainer"])
