"""Shared fixtures for the per-figure/table benchmark harness.

Each benchmark regenerates one paper artifact (see DESIGN.md §4) and prints
it in the paper's format; run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.  A session-scoped EvalConfig caches trace generation and
the pass-1 LLC streams across benchmarks, and a session prepared-workload
disk cache (:mod:`repro.eval.prep_cache`) persists pass-1 artifacts so
every runner entry point — including the parallel sweep engine — shares
them.  Set ``REPRO_PREP_CACHE`` to a directory to persist the cache across
benchmark sessions.
"""

from __future__ import annotations

import os

import pytest

from repro.eval import EvalConfig
from repro.eval.prep_cache import attach_prep_cache
from repro.rl.trainer import TrainerConfig

#: Workloads used by the RL-centric benchmarks (training is expensive).
RL_BENCH_WORKLOADS = ["450.soplex", "471.omnetpp", "403.gcc"]


@pytest.fixture(scope="session")
def prep_cache_dir(tmp_path_factory):
    """Prepared-workload cache directory (override via REPRO_PREP_CACHE)."""
    configured = os.environ.get("REPRO_PREP_CACHE")
    if configured:
        return configured
    return tmp_path_factory.mktemp("prep-cache")


@pytest.fixture(scope="session")
def eval_config(prep_cache_dir):
    """Single-core evaluation configuration shared by all benchmarks."""
    config = EvalConfig(scale=16, trace_length=20_000, seed=7)
    attach_prep_cache(config, prep_cache_dir)
    return config


@pytest.fixture(scope="session")
def eval_config_4core(prep_cache_dir):
    """Shorter traces for the 4-core benchmarks (4x the simulation work)."""
    config = EvalConfig(scale=16, trace_length=8_000, seed=7, num_cores=4)
    attach_prep_cache(config, prep_cache_dir)
    return config


@pytest.fixture(scope="session")
def rl_trainer_config():
    """Downscaled agent for benchmark runtime (paper: 175 hidden, 1+ epochs)."""
    return TrainerConfig(hidden_size=48, epochs=1, seed=1)
