"""Shared constants for the benchmark harness."""

#: Workloads used by the RL-centric benchmarks (training is expensive).
RL_BENCH_WORKLOADS = ["450.soplex", "471.omnetpp", "403.gcc"]

#: Policy lineup of Figures 10-13 (LRU is always the baseline).
FIGURE_POLICIES = (
    "drrip", "kpc_r", "ship", "rlr", "rlr_unopt", "rlr_tuned", "hawkeye", "ship++"
)
