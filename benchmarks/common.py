"""Shared benchmark configuration, loaded from the scenario library.

The checked-in files under ``scenarios/`` are the single source of truth
for every figure/table configuration; this module resolves them once per
session so benchmark modules share validated scenario objects instead of
duplicated literals.
"""

from functools import lru_cache
from pathlib import Path

from repro.scenarios import resolve_scenario

#: The repository's checked-in scenario library.
SCENARIO_LIBRARY = Path(__file__).resolve().parents[1] / "scenarios"


@lru_cache(maxsize=None)
def scenario(name: str):
    """One validated scenario from the checked-in library."""
    return resolve_scenario(name, root=SCENARIO_LIBRARY)


#: Workloads used by the RL-centric benchmarks (training is expensive).
RL_BENCH_WORKLOADS = list(scenario("fig3").workload_names)

#: Policy lineup of Figures 10-13 (LRU is always the baseline).
FIGURE_POLICIES = tuple(
    policy for policy in scenario("fig10").policies if policy != "lru"
)
