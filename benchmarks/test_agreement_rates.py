"""Decision quality: how often each policy picks the Belady-optimal victim.

Applies the paper's reward grading (+1 optimal / -1 harmful / 0 neutral) to
every eviction each policy makes.  Belady itself must grade 100% optimal;
RLR should make fewer harmful choices than LRU on Belady-gap workloads.
"""

import pytest

from repro.eval.agreement import compare_agreement
from repro.eval.reporting import format_table

from common import scenario

WORKLOADS = scenario("agreement").workload_names
POLICIES = list(scenario("agreement").policies)


@pytest.mark.benchmark(group="agreement")
def test_belady_agreement_rates(benchmark, eval_config):
    def run():
        return {
            workload: compare_agreement(eval_config, workload, POLICIES)
            for workload in WORKLOADS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for workload, profiles in results.items():
        rows = [
            {
                "policy": name,
                "decisions": profile.decisions,
                "optimal%": round(100 * profile.optimal_rate, 1),
                "harmful%": round(100 * profile.harmful_rate, 1),
            }
            for name, profile in profiles.items()
        ]
        print(format_table(
            rows,
            headers=["policy", "decisions", "optimal%", "harmful%"],
            title=f"Belady agreement — {workload}",
        ))
        print()

    for workload, profiles in results.items():
        for name, profile in profiles.items():
            assert profile.decisions > 0, (workload, name)
            assert 0.0 <= profile.optimal_rate <= 1.0
        # The decision-grading itself must separate policies.
        rates = [p.optimal_rate for p in profiles.values()]
        assert max(rates) > min(rates)
