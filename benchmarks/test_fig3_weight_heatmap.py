"""Figure 3: heat map of trained-network feature weights per benchmark.

Trains one agent per benchmark (as in §III-B) and prints the normalized
|weight| heat map over the Table II features.  Asserts the paper's headline
finding: the preuse/hits/recency family of features carries high weight.
"""

import pytest

from repro.eval.experiments import fig3_heatmap
from repro.rl.analysis import render_heatmap

from common import RL_BENCH_WORKLOADS

#: The five features the paper's analysis singles out (§III-B).
PAPER_TOP_FEATURES = {
    "access_preuse",
    "line_preuse",
    "line_last_access_type",
    "line_hits",
    "line_recency",
}


@pytest.mark.benchmark(group="fig3")
def test_fig3_weight_heatmap(benchmark, eval_config, rl_trainer_config):
    features, benchmarks, matrix = benchmark.pedantic(
        fig3_heatmap,
        args=(eval_config, RL_BENCH_WORKLOADS, rl_trainer_config),
        rounds=1,
        iterations=1,
    )
    print()
    print("Figure 3 — feature-weight heat map (darker = heavier):")
    print(render_heatmap(features, benchmarks, matrix))

    assert matrix.shape == (len(features), len(RL_BENCH_WORKLOADS))
    # Mean importance ranking: at least two of the paper's five selected
    # features should land in the top half of all 18 features.
    mean_importance = matrix.mean(axis=1)
    ranked = [f for _, f in sorted(zip(mean_importance, features), reverse=True)]
    top_half = set(ranked[: len(ranked) // 2])
    assert len(PAPER_TOP_FEATURES & top_half) >= 2, ranked
