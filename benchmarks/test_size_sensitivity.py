"""LLC-size sensitivity: RLR's gains across cache scales.

The paper evaluates 2MB (1-core) and 8MB (4-core) LLCs; this sweep varies
the evaluation scale (cache size and working sets move together, so the
interesting axis is the policy's robustness to absolute set counts and the
RD estimator's behaviour at different scales).
"""

from dataclasses import replace

import pytest

from repro.eval.metrics import geomean
from repro.eval.reporting import format_table
from repro.eval.runner import compare_policies

from common import scenario

SCENARIO = scenario("size-sensitivity")
SCALES = tuple(SCENARIO.params["scales"])
WORKLOADS = SCENARIO.workload_names
POLICIES = [p for p in SCENARIO.policies if p != "lru"]


@pytest.mark.benchmark(group="sensitivity")
def test_scale_sensitivity(benchmark, eval_config):
    def run():
        table = {}
        for scale in SCALES:
            config = replace(SCENARIO.eval_config(), scale=scale)
            speedups = {policy: [] for policy in POLICIES}
            for workload in WORKLOADS:
                trace = config.trace(workload)
                results = compare_policies(config, trace, ["lru"] + POLICIES)
                baseline = results["lru"].single_ipc
                for policy in POLICIES:
                    speedups[policy].append(
                        results[policy].single_ipc / baseline
                    )
            table[scale] = {
                policy: (geomean(values) - 1) * 100
                for policy, values in speedups.items()
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"scale (TableIII/n)": scale, **{p: round(v, 2) for p, v in row.items()}}
        for scale, row in table.items()
    ]
    print()
    print(format_table(
        rows, headers=["scale (TableIII/n)"] + POLICIES,
        title="geomean % speedup over LRU vs evaluation scale",
    ))

    # RLR's gains persist across scales (never collapses to a loss).
    for scale, row in table.items():
        assert row["rlr"] > -1.0, scale
