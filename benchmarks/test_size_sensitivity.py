"""LLC-size sensitivity: RLR's gains across cache scales.

The paper evaluates 2MB (1-core) and 8MB (4-core) LLCs; this sweep varies
the evaluation scale (cache size and working sets move together, so the
interesting axis is the policy's robustness to absolute set counts and the
RD estimator's behaviour at different scales).
"""

import pytest

from repro.eval.metrics import geomean
from repro.eval.reporting import format_table
from repro.eval.runner import compare_policies
from repro.eval.workloads import EvalConfig

SCALES = (32, 16, 8)
WORKLOADS = ["471.omnetpp", "450.soplex", "470.lbm"]
POLICIES = ["drrip", "rlr", "ship++"]


@pytest.mark.benchmark(group="sensitivity")
def test_scale_sensitivity(benchmark, eval_config):
    def run():
        table = {}
        for scale in SCALES:
            config = EvalConfig(scale=scale, trace_length=12_000, seed=7)
            speedups = {policy: [] for policy in POLICIES}
            for workload in WORKLOADS:
                trace = config.trace(workload)
                results = compare_policies(config, trace, ["lru"] + POLICIES)
                baseline = results["lru"].single_ipc
                for policy in POLICIES:
                    speedups[policy].append(
                        results[policy].single_ipc / baseline
                    )
            table[scale] = {
                policy: (geomean(values) - 1) * 100
                for policy, values in speedups.items()
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"scale (TableIII/n)": scale, **{p: round(v, 2) for p, v in row.items()}}
        for scale, row in table.items()
    ]
    print()
    print(format_table(
        rows, headers=["scale (TableIII/n)"] + POLICIES,
        title="geomean % speedup over LRU vs evaluation scale",
    ))

    # RLR's gains persist across scales (never collapses to a loss).
    for scale, row in table.items():
        assert row["rlr"] > -1.0, scale
