"""Figure 7: recency distribution of the RL agent's victims.

Paper: most evictions target lines with HIGH recency values — the agent
prefers to evict recently-used lines so older lines can reach their reuse.
"""

import pytest

from repro.eval.experiments import agent_victim_statistics
from repro.eval.victim_analysis import VictimStatistics

from common import RL_BENCH_WORKLOADS


@pytest.mark.benchmark(group="fig5-7")
def test_fig7_victim_recency_distribution(benchmark, eval_config, rl_trainer_config):
    results = benchmark.pedantic(
        agent_victim_statistics,
        args=(eval_config, RL_BENCH_WORKLOADS[:2], rl_trainer_config),
        rounds=1,
        iterations=1,
    )
    ways = eval_config.hierarchy(num_cores=1).llc.ways
    print()
    print("Figure 7 — victim recency distribution (0 = LRU .. 15 = MRU):")
    for workload, stats in results.items():
        histogram = stats["recency_histogram"]
        series = " ".join(
            f"{100 * histogram.get(r, 0.0):4.1f}" for r in range(ways)
        )
        print(f"  {workload:16s} {series}")

    for workload, stats in results.items():
        # The decision stream's profile through the normalized accessor
        # (recency keys compare as integers even after serialization).
        profile = VictimStatistics.from_dict(stats)
        # Paper shape: the upper (more recent) half of the recency range
        # receives the majority of evictions.
        assert profile.upper_half_recency_fraction(ways) > 0.5, (
            workload, profile.recency_histogram,
        )
