"""Figure 10: single-core IPC speedup over LRU, full SPEC-2006-like suite."""

import pytest

from repro.eval.experiments import single_core_speedups
from repro.eval.metrics import geomean
from repro.eval.reporting import format_speedup_series

from common import FIGURE_POLICIES, scenario


@pytest.mark.benchmark(group="fig10")
def test_fig10_spec2006_speedups(benchmark, eval_config):
    results = benchmark.pedantic(
        single_core_speedups,
        kwargs=dict(eval_config=eval_config, scenario=scenario("fig10")),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_speedup_series(
        results, FIGURE_POLICIES,
        title="Figure 10 — IPC speedup over LRU (SPEC 2006 models)",
    ))
    overall = {
        policy: (geomean(row[policy] for row in results.values()) - 1) * 100
        for policy in FIGURE_POLICIES
    }
    print("\noverall geomean %:", {k: round(v, 2) for k, v in overall.items()})

    assert len(results) == 29
    # Paper shape assertions: every policy improves on LRU overall, and the
    # advanced PC-based policy (SHiP++) leads.
    for policy, value in overall.items():
        assert value > 0, policy
    assert overall["ship++"] == max(overall.values())
    # RLR is competitive with the other PC-free policies (paper: RLR beats
    # DRRIP by ~1.75% overall).
    assert overall["rlr"] > overall["drrip"] - 1.0
