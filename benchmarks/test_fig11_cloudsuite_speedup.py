"""Figure 11: single-core IPC speedup over LRU, CloudSuite-like models."""

import pytest

from repro.eval.experiments import single_core_speedups
from repro.eval.metrics import geomean
from repro.eval.reporting import format_speedup_series

from common import FIGURE_POLICIES, scenario


@pytest.mark.benchmark(group="fig11")
def test_fig11_cloudsuite_speedups(benchmark, eval_config):
    results = benchmark.pedantic(
        single_core_speedups,
        kwargs=dict(eval_config=eval_config, scenario=scenario("fig11")),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_speedup_series(
        results, FIGURE_POLICIES,
        title="Figure 11 — IPC speedup over LRU (CloudSuite models)",
    ))

    assert set(results) == {
        "cassandra", "classification", "cloud9", "nutch", "streaming"
    }
    overall = {
        policy: geomean(row[policy] for row in results.values())
        for policy in FIGURE_POLICIES
    }
    # Every evaluated policy improves on LRU overall on the server suite.
    for policy, value in overall.items():
        assert value > 1.0, policy
    # RLR's gains are positive (paper: +3.48% overall on CloudSuite).
    assert overall["rlr"] > 1.0
