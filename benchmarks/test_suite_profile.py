"""Workload-suite characterization: the properties the models are built on.

Profiles every SPEC/CloudSuite model (footprint, memory intensity, writes,
spatial locality, reuse-distance mix) and asserts the documented contrasts:
streaming models have large cold footprints, loop models small hot ones,
write-heavy models actually write.
"""

import pytest

from repro.traces.profiling import compare_profiles, profile_trace
from repro.traces.spec_models import ALL_WORKLOADS

from common import scenario


@pytest.mark.benchmark(group="suite-profile")
def test_suite_characterization(benchmark, eval_config):
    def run():
        profiles = {}
        for name in scenario("suite-profile").workload_names:
            trace = eval_config.trace(name)
            profiles[name] = profile_trace(trace, num_sets=128)
        return profiles

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(compare_profiles(profiles.values()))

    assert len(profiles) == 34
    # Documented contrasts (DESIGN.md §2 calibration targets):
    assert profiles["470.lbm"].write_fraction > 0.3  # write-heavy streaming
    assert (
        profiles["429.mcf"].footprint_lines
        > 10 * profiles["416.gamess"].footprint_lines
    )  # huge vs tiny working sets
    assert (
        profiles["462.libquantum"].cold_fraction
        > profiles["456.hmmer"].cold_fraction
    )  # streaming vs loop reuse
    low_mpki = [n for n, s in ALL_WORKLOADS.items() if s.mpki_class == "low"]
    high_mpki = [n for n, s in ALL_WORKLOADS.items() if s.mpki_class == "high"]
    mean_low = sum(profiles[n].mean_instructions_per_reference for n in low_mpki)
    mean_high = sum(profiles[n].mean_instructions_per_reference for n in high_mpki)
    # Low-MPKI models are less memory-intensive on average.
    assert mean_low / len(low_mpki) > mean_high / len(high_mpki)
