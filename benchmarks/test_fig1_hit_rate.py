"""Figure 1: LLC hit rate per policy, with Belady as the theoretical optimum.

The paper's Figure 1 compares LRU/DRRIP/SHiP/SHiP++/Hawkeye/RLR, the raw RL
agent, and Belady on benchmarks with a significant Belady-vs-LRU gap.  The
RL bar here uses a short training budget (the paper's agents train far
longer); the expected *shape* — Belady on top, PC-based and RLR above LRU —
is asserted.
"""

import pytest

from repro.eval.experiments import fig1_hit_rates
from repro.eval.reporting import format_percent_matrix

from common import scenario

SCENARIO = scenario("fig1")
POLICIES = tuple(p for p in SCENARIO.policies if p != "belady")


@pytest.mark.benchmark(group="fig1")
def test_fig1_llc_hit_rates(benchmark, eval_config, rl_trainer_config):
    results = benchmark.pedantic(
        fig1_hit_rates,
        kwargs=dict(
            eval_config=eval_config,
            scenario=SCENARIO,
            rl_config=rl_trainer_config,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_percent_matrix(
        results,
        list(POLICIES) + ["rl", "belady"],
        title="Figure 1 — LLC hit rate (%), Belady = offline optimal",
    ))

    for workload, row in results.items():
        # Belady is the theoretical optimum for this metric.
        for policy, rate in row.items():
            assert row["belady"] >= rate - 1e-9, (workload, policy)
    # RLR matches or improves LRU's total hit rate on most Belady-gap
    # workloads.  (On write/prefetch-heavy models like lbm RLR deliberately
    # sheds prefetch hits to gain demand hits — total hit rate can drop
    # there even as IPC improves; see EXPERIMENTS.md.)
    improving = sum(
        1 for row in results.values() if row["rlr"] >= row["lru"] - 0.02
    )
    assert improving >= len(results) - 1
