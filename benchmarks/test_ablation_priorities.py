"""§V-B ablation: RLR with the hit / type priorities disabled.

The paper reports that disabling the hit register cuts RLR's speedup by 12%
and disabling the type register by 30% — both terms contribute.
"""

import pytest

from repro.eval.experiments import ablation_priorities
from repro.eval.reporting import format_table

from common import scenario


@pytest.mark.benchmark(group="ablation")
def test_priority_term_ablation(benchmark, eval_config):
    results = benchmark.pedantic(
        ablation_priorities,
        args=(eval_config, scenario("ablation-priorities").workload_names),
        rounds=1,
        iterations=1,
    )
    rows = [
        {"variant": variant, "overall speedup %": round(value, 2)}
        for variant, value in results.items()
    ]
    print()
    print(format_table(
        rows,
        headers=["variant", "overall speedup %"],
        title="RLR priority-term ablation (Belady-gap workloads)",
    ))

    # Full RLR should not lose to the age-only variant overall, and the
    # ablations must actually change behaviour.
    assert results["rlr"] >= results["rlr_age_only"] - 0.5
    assert len({round(v, 4) for v in results.values()}) > 1
