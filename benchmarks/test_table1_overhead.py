"""Table I: hardware overhead of replacement policies (16-way 2MB LLC)."""

import pytest

from repro.eval.reporting import format_table
from repro.eval.experiments import table1_overhead

from common import scenario


@pytest.mark.benchmark(group="table1")
def test_table1_overhead(benchmark):
    rows = benchmark.pedantic(table1_overhead, rounds=1, iterations=1)

    # The scenario file pins the Table I policy lineup.
    assert [row.policy for row in rows] == list(scenario("table1").policies)

    table = [
        {
            "policy": row.policy,
            "uses_pc": "Yes" if row.uses_pc else "No",
            "overhead_kib": row.kib,
            "paper_kib": row.paper_kib,
        }
        for row in rows
    ]
    print()
    print(format_table(
        table,
        headers=["policy", "uses_pc", "overhead_kib", "paper_kib"],
        title="Table I — storage overhead, 16-way 2MB LLC",
    ))

    by_name = {row.policy: row for row in rows}
    # Exact paper matches for the policies with closed-form accounting.
    for name in ("lru", "drrip", "ship", "ship++", "rlr", "rlr_unopt"):
        assert by_name[name].kib == pytest.approx(by_name[name].paper_kib, abs=0.01)
    # Modeled policies land within 5% of the published numbers.
    for name in ("kpc_r", "hawkeye", "mpppb", "glider"):
        assert by_name[name].kib == pytest.approx(
            by_name[name].paper_kib, rel=0.05
        )
    # RLR's headline: cheaper than the advanced PC-based policies (SHiP's
    # raw table storage is smaller, but it additionally needs PC plumbing
    # through the whole hierarchy, which Table I does not count).
    for name in ("ship++", "hawkeye", "glider", "mpppb"):
        assert by_name["rlr"].kib < by_name[name].kib


@pytest.mark.benchmark(group="table1")
def test_rlr_overhead_scales_to_8mb(benchmark):
    from repro.core import rlr_overhead_kib

    kib = benchmark.pedantic(
        rlr_overhead_kib, args=(8 * 1024 * 1024,), rounds=1, iterations=1
    )
    print(f"\nRLR overhead @ 8MB LLC: {kib:.2f} KiB (paper: 67KB)")
    assert kib == pytest.approx(67.0, abs=0.01)
