"""§III-A: the paper found epsilon = 0.1 performed best.

Trains small agents at several exploration rates on one training workload
and compares their greedy hit rates.  With a short training budget the
curve is noisy; the assertions check the sweep runs and produces a sane
spread rather than the paper's exact optimum.
"""

import pytest

from repro.eval.runner import _prepared
from repro.eval.reporting import format_table
from repro.rl.trainer import TrainerConfig, evaluate_on_stream, train_on_stream

from common import scenario

SCENARIO = scenario("epsilon-sweep")
EPSILONS = tuple(SCENARIO.params["epsilons"])
WORKLOAD = SCENARIO.workload_names[0]


@pytest.mark.benchmark(group="rl-sweep")
def test_epsilon_sweep(benchmark, eval_config):
    trace = eval_config.trace(WORKLOAD)
    prepared = _prepared(eval_config, trace, 1, None)
    records = prepared.llc_records[: SCENARIO.params["max_records"]]

    def run():
        results = {}
        for epsilon in EPSILONS:
            config = TrainerConfig(
                **SCENARIO.params["trainer"], epsilon=epsilon
            )
            trained = train_on_stream(prepared.llc_config, records, config)
            stats = evaluate_on_stream(trained, prepared.llc_config, records)
            results[epsilon] = stats.hit_rate
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"epsilon": epsilon, "greedy hit rate": round(rate, 4)}
        for epsilon, rate in results.items()
    ]
    print()
    print(format_table(rows, headers=["epsilon", "greedy hit rate"],
                       title=f"epsilon sweep — {WORKLOAD} (paper: 0.1 best)"))

    assert set(results) == set(EPSILONS)
    assert all(0.0 <= rate <= 1.0 for rate in results.values())
