"""§V-A: the RL policy generalizes to benchmarks unseen in training.

Trains one agent over a subset of the paper's eight training benchmarks,
then evaluates it greedily on held-out workloads.  The paper's claim: the
learned policy remains competitive on 26 benchmarks never used in
training.  With the short training budget here, the assertion is the
qualitative one — the agent does not collapse below LRU on unseen inputs.
"""

import pytest

from repro.eval.reporting import format_percent_matrix
from repro.rl.generalization import generalization_experiment
from repro.rl.trainer import TrainerConfig

from common import scenario

SCENARIO = scenario("generalization")
TRAINING = tuple(SCENARIO.params["training"])
HELD_OUT = list(SCENARIO.workload_names)


@pytest.mark.benchmark(group="generalization")
def test_unseen_benchmark_generalization(benchmark, eval_config):
    result = benchmark.pedantic(
        generalization_experiment,
        kwargs=dict(
            eval_config=eval_config,
            held_out=HELD_OUT,
            training_benchmarks=TRAINING,
            config=TrainerConfig(**SCENARIO.params["trainer"]),
            max_records_per_benchmark=SCENARIO.params[
                "max_records_per_benchmark"
            ],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_percent_matrix(
        result.hit_rates, ["lru", "rlr", "rl"],
        title=f"LLC hit rate on UNSEEN workloads (trained on {TRAINING})",
    ))

    for workload, row in result.hit_rates.items():
        # The agent stays in the game on unseen inputs: within a few points
        # of LRU at worst (short training budget; the paper's fully trained
        # agent beats LRU broadly).
        assert row["rl"] >= row["lru"] - 0.06, workload
