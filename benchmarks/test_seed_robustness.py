"""Methodology check: speedup sign-robustness across trace seeds.

The paper attributes EVA/PDP's surprising degradations to trace selection
(§V-B) and argues for evaluating across all SimPoints.  The synthetic
analogue: regenerate each workload under several seeds and verify the
headline comparisons keep their sign.
"""

import pytest

from repro.eval.reporting import format_table
from repro.eval.statistics import seed_sweep

from common import scenario

SCENARIO = scenario("seed-robustness")
WORKLOADS = SCENARIO.workload_names
POLICIES = tuple(p for p in SCENARIO.policies if p != "lru")
SEEDS = SCENARIO.run_seeds


@pytest.mark.benchmark(group="robustness")
def test_seed_robustness(benchmark):
    def run():
        return {
            workload: seed_sweep(
                workload,
                POLICIES,
                seeds=SEEDS,
                scale=SCENARIO.config.scale,
                trace_length=SCENARIO.config.trace_length,
            )
            for workload in WORKLOADS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for workload, estimates in results.items():
        for policy, estimate in estimates.items():
            rows.append({
                "workload": workload,
                "policy": policy,
                "mean%": round(estimate.mean_percent, 2),
                "stdev%": round(estimate.stdev_percent, 2),
                "min%": round(estimate.min_percent, 2),
                "max%": round(estimate.max_percent, 2),
                "sign robust": "yes" if estimate.sign_is_robust() else "NO",
            })
    print()
    print(format_table(
        rows,
        headers=["workload", "policy", "mean%", "stdev%", "min%", "max%",
                 "sign robust"],
        title=f"speedup over LRU across trace seeds {SEEDS}",
    ))

    # RLR's lbm advantage (a paper-called-out stronghold) holds under
    # every seed.
    lbm = results["470.lbm"]["rlr"]
    assert all(sample > 1.0 for sample in lbm.samples)
