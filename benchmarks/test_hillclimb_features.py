"""§III-B: hill-climbing feature selection (automated, as in the paper).

Runs the greedy-forward search over a candidate subset of Table II features
on one training workload's LLC stream, printing each round's winner.
"""

import pytest

from repro.rl.hill_climbing import hill_climb
from repro.rl.trainer import TrainerConfig, llc_stream_records

from common import scenario

SCENARIO = scenario("hillclimb")
CANDIDATES = tuple(SCENARIO.params["candidates"])


@pytest.mark.benchmark(group="hillclimb")
def test_hill_climbing_feature_selection(benchmark, eval_config):
    llc_config = eval_config.hierarchy(num_cores=1).llc
    workload = SCENARIO.workload_names[0]
    stream = llc_stream_records(eval_config, workload)[
        : SCENARIO.params["max_stream_records"]
    ]
    config = TrainerConfig(**SCENARIO.params["trainer"])

    result = benchmark.pedantic(
        hill_climb,
        kwargs=dict(
            llc_config=llc_config,
            streams=[stream],
            candidates=CANDIDATES,
            config=config,
            max_features=SCENARIO.params["max_features"],
        ),
        rounds=1,
        iterations=1,
    )
    print("\nHill-climbing rounds:")
    for step in result.steps:
        print(f"  + {step.added_feature:24s} -> hit rate {step.score:.3f}")
    print(f"selected: {result.selected}")

    assert 1 <= len(result.selected) <= 4
    scores = [step.score for step in result.steps]
    assert scores == sorted(scores)  # greedy additions never reduce score
