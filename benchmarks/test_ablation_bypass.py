"""§IV-A: RLR's optional cache-bypass mode.

"If cache bypass is supported, the cache management policy bypasses a
request if no cache line has reached an age greater than the RD value."
Compares RLR with and without bypass on thrash-prone workloads.
"""

import pytest

from repro.core.rlr import RLRPolicy
from repro.eval.metrics import geomean
from repro.eval.reporting import format_speedup_series
from repro.eval.runner import _prepared, replay

from common import scenario

WORKLOADS = scenario("ablation-bypass").workload_names


def _sweep(eval_config):
    series = {}
    for name in WORKLOADS:
        trace = eval_config.trace(name)
        prepared = _prepared(eval_config, trace, 1, None)
        baseline = replay(prepared, "lru").single_ipc
        plain = replay(prepared, RLRPolicy()).single_ipc
        bypass = replay(
            prepared, RLRPolicy(enable_bypass=True), allow_bypass=True
        ).single_ipc
        series[name] = {
            "rlr": plain / baseline,
            "rlr+bypass": bypass / baseline,
        }
    return series


@pytest.mark.benchmark(group="ablation")
def test_rlr_bypass_mode(benchmark, eval_config):
    series = benchmark.pedantic(_sweep, args=(eval_config,), rounds=1, iterations=1)
    print()
    print(format_speedup_series(
        series, ("rlr", "rlr+bypass"),
        title="RLR with and without cache bypass",
    ))
    overall_bypass = geomean(row["rlr+bypass"] for row in series.values())
    overall_plain = geomean(row["rlr"] for row in series.values())
    print(f"overall: rlr {100 * (overall_plain - 1):+.2f}%  "
          f"rlr+bypass {100 * (overall_bypass - 1):+.2f}%")
    # Bypass never catastrophically degrades the policy.
    assert overall_bypass > overall_plain - 0.03
