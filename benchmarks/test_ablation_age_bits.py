"""§IV-C ablation: age-counter width sweep (2-8 bits per line).

The paper swept 2-8 bits and chose 5 for the unoptimized policy as the
best performance/overhead point.
"""

import pytest

from repro.eval.experiments import ablation_age_bits
from repro.eval.reporting import format_table

from common import scenario

SCENARIO = scenario("ablation-age-bits")
BIT_WIDTHS = tuple(SCENARIO.params["bit_widths"])


@pytest.mark.benchmark(group="ablation")
def test_age_counter_width_sweep(benchmark, eval_config):
    results = benchmark.pedantic(
        ablation_age_bits,
        args=(eval_config, SCENARIO.workload_names, BIT_WIDTHS),
        rounds=1,
        iterations=1,
    )
    rows = [
        {"age bits": bits, "overall speedup %": round(value, 2)}
        for bits, value in results.items()
    ]
    print()
    print(format_table(
        rows,
        headers=["age bits", "overall speedup %"],
        title="RLR(unopt) age-counter width sweep",
    ))

    assert set(results) == set(BIT_WIDTHS)
    # Wider counters never catastrophically degrade (the curve is flat-ish
    # past the paper's 5-bit choice).
    assert results[8] > results[2] - 2.0
