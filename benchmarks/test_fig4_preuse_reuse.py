"""Figure 4: |preuse − reuse| distribution for reused cache lines.

The paper's claim: for a significant share of reused lines the difference is
below 10 set accesses, and for more than ~50% it is below 50 — preuse
distance is a usable reuse-distance predictor.
"""

import pytest

from repro.eval.experiments import fig4_preuse_vs_reuse
from repro.eval.reporting import format_table

from common import scenario


@pytest.mark.benchmark(group="fig4")
def test_fig4_preuse_vs_reuse(benchmark, eval_config):
    results = benchmark.pedantic(
        fig4_preuse_vs_reuse,
        args=(eval_config, scenario("fig4").workload_names),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "workload": name,
            "<10": f"{100 * buckets['<10']:.0f}%",
            "10-50": f"{100 * buckets['10-50']:.0f}%",
            ">50": f"{100 * buckets['>50']:.0f}%",
        }
        for name, buckets in results.items()
    ]
    print()
    print(format_table(
        rows,
        headers=["workload", "<10", "10-50", ">50"],
        title="Figure 4 — |preuse - reuse| buckets (reused lines)",
    ))

    for name, buckets in results.items():
        total = sum(buckets.values())
        assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0, name
    # Paper shape: across the suite, a majority of reused lines fall below
    # 50 accesses of |preuse - reuse|.
    below_50 = [b["<10"] + b["10-50"] for b in results.values() if sum(b.values())]
    assert sum(below_50) / len(below_50) > 0.5
