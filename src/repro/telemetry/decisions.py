"""Per-eviction decision tracing: sampled event logs + Belady regret.

The paper's method is built on *inspecting individual eviction decisions*:
grading each victim choice against Belady's OPT (the §III-A reward) and
profiling victim age / hits-since-insertion / recency (Figures 5-7).  This
module records that decision stream once, during an ordinary replay, so
every downstream consumer — ``repro inspect``, the Figure 5-7 collectors,
the agreement profiler — reads the same events instead of re-instrumenting
its own replay.

Design rules (mirroring :func:`repro.telemetry.profiling.profiled`):

* **Identity when disabled.**  A replay without a :class:`DecisionTrace`
  executes the exact hot-loop code it always did; the only residue is the
  cache's empty ``decision_observers`` list (one no-op ``for`` per
  eviction, same as the pre-existing ``eviction_observers``).
* **Deterministic.**  Events are a pure function of the (deterministic)
  replay; sampling is counter-based (every ``sample_rate``-th eviction),
  never randomized; every recorded quantity is an integer.  Logs written
  from cells merged in ``(workload, policy)`` order are byte-identical for
  ``--jobs 1`` and ``--jobs N``.
* **Bounded.**  Events land in a ring (:attr:`DecisionTrace.dropped`
  counts overflow); the aggregates (grade counts, per-set eviction counts,
  epoch regret buckets, top-N worst decisions) always cover *every*
  eviction regardless of sampling or ring capacity.

Grading follows :func:`repro.rl.reward.belady_reward`: +1 when the victim
has the farthest next use in its set, -1 when the victim would be reused
sooner than the inserted line, 0 otherwise.  Regret is ``(1 - grade) / 2``
(0 for optimal, 1/2 for neutral, 1 for harmful); to stay in integers the
trace accumulates ``regret_x2 = neutral + 2 * harmful``.

Log formats (both written to the run directory by ``--decisions``):

* ``decisions.jsonl`` — the full payload: a file header line, then per
  cell one ``{"type": "cell", ...}`` line (summary, epoch buckets, per-set
  eviction counts, worst decisions) followed by its ``{"type": "event"}``
  and ``{"type": "violation"}`` lines.
* ``decisions.bin`` — compact binary: magic ``RDLG\\x01``, then per cell a
  fixed header + name strings + fixed 55-byte event records
  (:data:`RECORD_STRUCT`).  Carries the raw event stream only; the
  derived aggregates live in the JSONL.

This module deliberately imports neither :mod:`repro.rl` nor
:mod:`repro.cache` (both sit *above* telemetry in the import graph); the
oracle is duck-typed (``advance`` / ``next_use`` / ``next_use_after``, see
:class:`repro.rl.reward.FutureOracle`).
"""

from __future__ import annotations

import json
import struct
from collections import deque
from pathlib import Path
from typing import NamedTuple, Optional

from repro.runs.atomic import atomic_write_bytes, atomic_write_text
from repro.traces.record import AccessType

#: Decision-log format version (bumped on any layout change).
FORMAT_VERSION = 1

#: Binary log magic: "Repro Decision LoG" + version byte.
MAGIC = b"RDLG" + bytes([FORMAT_VERSION])

#: Grade values (match repro.rl.reward's +1/0/-1 as integers).
OPTIMAL, NEUTRAL, HARMFUL = 1, 0, -1
#: Grade byte for events recorded without an oracle.
UNGRADED = 127

#: Event kinds.
KIND_EVICT = 0
KIND_VIOLATION = 1

#: ``way`` / victim-feature sentinel for violation events (no victim).
NO_WAY = 0xFFFF

#: Number of equal-width stream epochs regret is bucketed into.
DECISION_EPOCHS = 8

#: Default event-ring capacity (aggregates are unaffected by overflow).
DEFAULT_RING_CAPACITY = 65536

#: Default size of the worst-decisions table.
DEFAULT_WORST_N = 16

#: Cap on retained violation events (normal-mode sanitizer degrades after
#: the first violation, so this is a defensive bound, not a budget).
MAX_VIOLATIONS = 256

#: Fixed-size binary event record; see :class:`DecisionEvent` field order.
RECORD_STRUCT = struct.Struct("<QIHBbQIIIBBQQB")

#: Per-cell binary header: workload-name length, policy-name length,
#: sample_rate, stream total, graded flag, reserved, record count.
CELL_STRUCT = struct.Struct("<HHIQBBI")

_NEVER = float("inf")


class DecisionEvent(NamedTuple):
    """One logged eviction (or contract-violation) decision.

    All fields are integers so JSON round-trips are exact and the binary
    encoding is lossless.  ``grade`` is :data:`UNGRADED` when no oracle
    was attached; access types are :class:`repro.traces.record.AccessType`
    values.
    """

    index: int          #: position in the LLC access stream
    set_index: int      #: cache set of the eviction
    way: int            #: victim way (NO_WAY for violation events)
    kind: int           #: KIND_EVICT or KIND_VIOLATION
    grade: int          #: +1 / 0 / -1 / UNGRADED
    victim_line: int    #: evicted line address
    victim_age_insert: int   #: set accesses since the victim was inserted
    victim_age_last: int     #: set accesses since the victim was last hit
    victim_hits: int         #: hits since insertion
    victim_last_type: int    #: AccessType of the victim's last access
    victim_recency: int      #: victim's LRU-stack position (0 = LRU)
    pc: int             #: program counter of the inserted (missing) access
    address: int        #: byte address of the inserted access
    access_type: int    #: AccessType of the inserted access


def _clamp(value: int, limit: int) -> int:
    value = int(value)
    return 0 if value < 0 else (limit if value > limit else value)


def event_to_json(event: DecisionEvent) -> dict:
    """The JSONL encoding of one event (access types as short names)."""
    payload = {
        "type": "violation" if event.kind == KIND_VIOLATION else "event",
        "index": event.index,
        "set": event.set_index,
        "access_type": AccessType(event.access_type).short_name,
        "pc": event.pc,
        "address": event.address,
    }
    if event.kind == KIND_EVICT:
        payload.update(
            way=event.way,
            victim_line=event.victim_line,
            victim_age_insert=event.victim_age_insert,
            victim_age_last=event.victim_age_last,
            victim_hits=event.victim_hits,
            victim_last_type=AccessType(event.victim_last_type).short_name,
            victim_recency=event.victim_recency,
        )
        if event.grade != UNGRADED:
            payload["grade"] = event.grade
    return payload


_SHORT_NAMES = {access_type.short_name: access_type for access_type in AccessType}


def event_from_json(payload: dict) -> DecisionEvent:
    """Inverse of :func:`event_to_json`."""
    violation = payload.get("type") == "violation"
    return DecisionEvent(
        index=int(payload["index"]),
        set_index=int(payload["set"]),
        way=NO_WAY if violation else int(payload["way"]),
        kind=KIND_VIOLATION if violation else KIND_EVICT,
        grade=int(payload.get("grade", UNGRADED)),
        victim_line=int(payload.get("victim_line", 0)),
        victim_age_insert=int(payload.get("victim_age_insert", 0)),
        victim_age_last=int(payload.get("victim_age_last", 0)),
        victim_hits=int(payload.get("victim_hits", 0)),
        victim_last_type=int(
            _SHORT_NAMES[payload["victim_last_type"]]
        ) if "victim_last_type" in payload else int(AccessType.LOAD),
        victim_recency=int(payload.get("victim_recency", 0)),
        pc=int(payload["pc"]),
        address=int(payload["address"]),
        access_type=int(_SHORT_NAMES[payload["access_type"]]),
    )


# -- the recorder --------------------------------------------------------------


class DecisionTrace:
    """Sampled, ring-buffered per-eviction recorder for one replay cell.

    Attach to a cache via :meth:`repro.cache.cache.Cache.add_decision_observer`
    (``on_decision``) and ``add_access_observer`` (``on_access``) — or let
    :func:`repro.eval.runner.replay` do both via its ``decisions=``
    argument, which also routes sanitizer contract violations here while
    the replay runs.

    Args:
        workload: Label for the log (trace name).
        policy: Label for the log (policy name; filled in by ``replay``
            when left empty).
        sample_rate: Record every N-th eviction into the event ring
            (aggregates always cover all evictions).  Counter-based, so
            the same replay always samples the same events.
        capacity: Event-ring size (``None`` = unbounded; analysis paths
            that need every event pass ``None``).
        oracle: Optional Belady oracle (duck-typed
            :class:`repro.rl.reward.FutureOracle`) enabling grading.
        total: LLC stream length (set by :meth:`begin`); needed for epoch
            bucketing and for bounding never-reused severities.
        epochs: Number of equal-width regret epochs.
        worst_n: Size of the worst-decisions table.
    """

    def __init__(
        self,
        workload: str = "",
        policy: str = "",
        *,
        sample_rate: int = 1,
        capacity: Optional[int] = DEFAULT_RING_CAPACITY,
        oracle=None,
        total: int = 0,
        epochs: int = DECISION_EPOCHS,
        worst_n: int = DEFAULT_WORST_N,
    ) -> None:
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.workload = workload
        self.policy = policy
        self.sample_rate = sample_rate
        self.capacity = capacity
        self.oracle = oracle
        self.total = total
        self.epochs = max(1, epochs)
        self.worst_n = max(0, worst_n)

        self.index = 0          #: accesses fully processed so far
        self.evictions = 0      #: all evictions seen (sampled or not)
        self.sampled = 0        #: events pushed into the ring
        self.dropped = 0        #: ring overflow (oldest events discarded)
        self.optimal = 0
        self.neutral = 0
        self.harmful = 0
        self.violation_overflow = 0
        self._ring = deque(maxlen=capacity)
        self._violations = []   #: (DecisionEvent, detail) pairs
        self._worst = []        #: (severity, index, DecisionEvent), harmful only
        self.set_evictions = {}  #: set index -> eviction count (all evictions)
        self.epoch_decisions = [0] * self.epochs
        self.epoch_neutral = [0] * self.epochs
        self.epoch_harmful = [0] * self.epochs

    # -- lifecycle ---------------------------------------------------------

    def begin(self, total: int, policy_name: str = "") -> None:
        """Called by ``replay`` before the loop: stream length + label."""
        self.total = total
        if policy_name and not self.policy:
            self.policy = policy_name

    # -- observers (hot path while tracing) --------------------------------

    def on_access(self, access, hit) -> None:
        """Access observer: keeps the stream index (and oracle) aligned."""
        if self.oracle is not None:
            self.oracle.advance(access.line_address)
        self.index += 1

    def on_decision(self, cache_set, way: int, line, access) -> None:
        """Decision observer: fires once per eviction, before the fill."""
        self.evictions += 1
        set_index = cache_set.index
        self.set_evictions[set_index] = self.set_evictions.get(set_index, 0) + 1

        grade, severity = UNGRADED, 0
        if self.oracle is not None:
            grade, severity = self._grade(cache_set, way, access)
            if grade == OPTIMAL:
                self.optimal += 1
            elif grade == HARMFUL:
                self.harmful += 1
            else:
                self.neutral += 1
            epoch = self._epoch(self.index)
            self.epoch_decisions[epoch] += 1
            if grade == HARMFUL:
                self.epoch_harmful[epoch] += 1
            elif grade == NEUTRAL:
                self.epoch_neutral[epoch] += 1

        sampled = (self.evictions - 1) % self.sample_rate == 0
        if not sampled and grade != HARMFUL:
            return  # nothing left to record for this eviction

        event = DecisionEvent(
            index=self.index,
            set_index=set_index,
            way=way,
            kind=KIND_EVICT,
            grade=grade,
            victim_line=line.line_address,
            victim_age_insert=_clamp(line.age_since_insertion, 0xFFFFFFFF),
            victim_age_last=_clamp(line.age_since_last_access, 0xFFFFFFFF),
            victim_hits=_clamp(line.hits_since_insertion, 0xFFFFFFFF),
            victim_last_type=int(line.last_access_type),
            victim_recency=_clamp(line.recency, 0xFF),
            pc=access.pc,
            address=access.address,
            access_type=int(access.access_type),
        )
        if grade == HARMFUL and self.worst_n:
            self._note_worst(severity, event)
        if sampled:
            if self.capacity is not None and len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            self.sampled += 1

    def record_violation(self, policy_name: str, detail: str, set_index: int) -> None:
        """Sanitizer hook: a contract violation becomes a decision event."""
        if len(self._violations) >= MAX_VIOLATIONS:
            self.violation_overflow += 1
            return
        event = DecisionEvent(
            index=self.index,
            set_index=max(set_index, 0),
            way=NO_WAY,
            kind=KIND_VIOLATION,
            grade=UNGRADED,
            victim_line=0,
            victim_age_insert=0,
            victim_age_last=0,
            victim_hits=0,
            victim_last_type=int(AccessType.LOAD),
            victim_recency=0,
            pc=0,
            address=0,
            access_type=int(AccessType.LOAD),
        )
        self._violations.append((event, f"{policy_name}: {detail}"))

    # -- grading -----------------------------------------------------------

    def _epoch(self, index: int) -> int:
        if self.total <= 0:
            return 0
        return min(self.epochs - 1, index * self.epochs // self.total)

    def _grade(self, cache_set, way: int, access):
        """Belady grade of evicting ``way``; severity for harmful grades.

        The trace's oracle has consumed positions ``0..index-1`` (it
        advances at end-of-access), so resident lines' ``next_use`` values
        are strictly future, while the inserted line's next use must skip
        its own in-flight occurrence at ``index`` —
        :meth:`~repro.rl.reward.FutureOracle.next_use_after` does exactly
        that.  Grades are bit-identical to
        :func:`repro.rl.reward.belady_reward` driven by an oracle advanced
        *past* the current access (the convention
        :class:`repro.eval.agreement.OracleProbePolicy` uses).
        """
        oracle = self.oracle
        next_uses = [
            oracle.next_use(line.line_address) if line.valid else _NEVER
            for line in cache_set.lines
        ]
        chosen = next_uses[way]
        if chosen == max(next_uses):
            return OPTIMAL, 0
        inserted = oracle.next_use_after(access.line_address, self.index)
        if chosen < inserted:
            # Severity: how much sooner the victim returns than the line
            # displacing it (never-reused inserts count as end-of-stream).
            bound = inserted if inserted != _NEVER else max(self.total, chosen + 1)
            return HARMFUL, int(bound - chosen)
        return NEUTRAL, 0

    def _note_worst(self, severity: int, event: DecisionEvent) -> None:
        self._worst.append((severity, event.index, event))
        # Amortized deterministic pruning: keep the table small without
        # resorting the list on every harmful decision.
        if len(self._worst) > 4 * self.worst_n:
            self._worst.sort(key=lambda item: (-item[0], item[1]))
            del self._worst[self.worst_n:]

    # -- results -----------------------------------------------------------

    @property
    def graded(self) -> int:
        """Number of graded decisions."""
        return self.optimal + self.neutral + self.harmful

    @property
    def regret_x2(self) -> int:
        """Twice the summed regret (regret = (1 - grade) / 2 per decision)."""
        return self.neutral + 2 * self.harmful

    def events(self) -> list:
        """The sampled events currently in the ring (oldest first)."""
        return list(self._ring)

    def violations(self) -> list:
        """Recorded contract violations as ``(event, detail)`` pairs."""
        return list(self._violations)

    def worst_decisions(self) -> list:
        """Top-N harmful decisions as ``(severity, event)``, worst first."""
        ranked = sorted(self._worst, key=lambda item: (-item[0], item[1]))
        return [(severity, event) for severity, _, event in ranked[: self.worst_n]]

    def summary(self) -> dict:
        """Aggregate integers (rates are derived by consumers)."""
        return {
            "evictions": self.evictions,
            "sampled": self.sampled,
            "dropped": self.dropped,
            "graded": self.graded,
            "optimal": self.optimal,
            "neutral": self.neutral,
            "harmful": self.harmful,
            "regret_x2": self.regret_x2,
            "violations": len(self._violations) + self.violation_overflow,
        }

    def cell_payload(self) -> dict:
        """The JSON-safe record of this cell for the decision log."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "sample_rate": self.sample_rate,
            "total": self.total,
            "graded_mode": self.oracle is not None,
            "summary": self.summary(),
            "epochs": {
                "decisions": list(self.epoch_decisions),
                "neutral": list(self.epoch_neutral),
                "harmful": list(self.epoch_harmful),
            },
            "set_evictions": {
                str(set_index): self.set_evictions[set_index]
                for set_index in sorted(self.set_evictions)
            },
            "worst": [
                {"severity": severity, **event_to_json(event)}
                for severity, event in self.worst_decisions()
            ],
            "events": [event_to_json(event) for event in self.events()],
            "violations": [
                {**event_to_json(event), "detail": detail}
                for event, detail in self._violations
            ],
        }


# -- the active-trace sink (sanitizer -> decision log) -------------------------

_active_trace: Optional[DecisionTrace] = None


def activate(trace: DecisionTrace) -> None:
    """Route sanitizer violations to ``trace`` (process-local, one deep)."""
    global _active_trace
    _active_trace = trace


def deactivate(trace: DecisionTrace = None) -> None:
    """Stop routing violations (no-op if ``trace`` is no longer active)."""
    global _active_trace
    if trace is None or _active_trace is trace:
        _active_trace = None


def active_trace() -> Optional[DecisionTrace]:
    """The trace currently receiving sanitizer violations, if any."""
    return _active_trace


# -- log codec -----------------------------------------------------------------


def _cell_events(cell: dict) -> list:
    """Event + violation records of one payload cell, in stream order."""
    events = [event_from_json(entry) for entry in cell.get("events", ())]
    events.extend(
        event_from_json(entry) for entry in cell.get("violations", ())
    )
    events.sort(key=lambda event: (event.index, event.kind))
    return events


def write_decisions_jsonl(path, cells) -> Path:
    """Atomically write the full JSONL decision log for ``cells``.

    ``cells`` are :meth:`DecisionTrace.cell_payload` dicts, already in
    deterministic ``(workload, policy)`` order.
    """
    lines = [
        json.dumps(
            {"format": "repro-decisions", "version": FORMAT_VERSION,
             "cells": len(cells)},
            sort_keys=True,
        )
    ]
    for cell in cells:
        header = {key: value for key, value in cell.items()
                  if key not in ("events", "violations")}
        header["type"] = "cell"
        header["events"] = len(cell.get("events", ()))
        header["violations"] = len(cell.get("violations", ()))
        lines.append(json.dumps(header, sort_keys=True))
        for entry in cell.get("events", ()):
            lines.append(json.dumps(entry, sort_keys=True))
        for entry in cell.get("violations", ()):
            lines.append(json.dumps(entry, sort_keys=True))
    path = Path(path)
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def write_decisions_binary(path, cells) -> Path:
    """Atomically write the compact binary event log for ``cells``."""
    chunks = [MAGIC]
    for cell in cells:
        workload = str(cell.get("workload", "")).encode("utf-8")
        policy = str(cell.get("policy", "")).encode("utf-8")
        events = _cell_events(cell)
        chunks.append(CELL_STRUCT.pack(
            len(workload),
            len(policy),
            int(cell.get("sample_rate", 1)),
            int(cell.get("total", 0)),
            1 if cell.get("graded_mode") else 0,
            0,
            len(events),
        ))
        chunks.append(workload)
        chunks.append(policy)
        for event in events:
            chunks.append(RECORD_STRUCT.pack(*event))
    path = Path(path)
    atomic_write_bytes(path, b"".join(chunks))
    return path


def _count_salvaged(amount: int) -> None:
    """Bump the ``telemetry.salvaged`` counter (trace-quarantine idiom)."""
    from repro.telemetry import get_registry

    get_registry().counter("telemetry.salvaged").inc(amount)


def _read_jsonl(text: str, path=None, salvage: bool = False) -> list:
    from repro.store.errors import ArtifactCorruptionError

    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty decision log")
    header = json.loads(lines[0])
    if header.get("format") != "repro-decisions":
        raise ValueError("not a repro decision log (bad header line)")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"decision-log version {header.get('version')!r} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    cells = []
    current = None
    declared = None  #: event+violation count the current cell header promised
    for number, line in enumerate(lines[1:], start=2):
        try:
            entry = json.loads(line)
            if not isinstance(entry, dict):
                raise ValueError("line is not a JSON object")
        except ValueError as error:
            if salvage:
                # Salvage: keep the complete leading cells.  A cell whose
                # declared event counts are unmet was interrupted and is
                # dropped; a cell already complete stays (the torn line
                # was the start of the *next* record).
                if current is not None:
                    received = (len(current["events"])
                                + len(current["violations"]))
                    if declared is None or received < declared:
                        cells.pop()
                dropped = len(lines) - number + 1
                _count_salvaged(dropped)
                return cells
            raise ArtifactCorruptionError(
                f"decision log is damaged: line {number} does not parse "
                f"({error})",
                reason="truncated" if number == len(lines) else "bad_payload",
                path=path,
                frame=number,
            ) from error
        kind = entry.get("type")
        if kind == "cell":
            declared = (
                entry["events"] + entry["violations"]
                if isinstance(entry.get("events"), int)
                and isinstance(entry.get("violations"), int)
                else None
            )
            current = dict(entry, events=[], violations=[])
            del current["type"]
            cells.append(current)
        elif kind in ("event", "violation"):
            if current is None:
                raise ValueError("decision event before any cell header")
            current["events" if kind == "event" else "violations"].append(entry)
        else:
            raise ValueError(f"unknown decision-log line type {kind!r}")
    return cells


def _read_binary(data: bytes, path=None, salvage: bool = False) -> list:
    from repro.store.errors import ArtifactCorruptionError

    if not data.startswith(MAGIC[:4]):
        raise ValueError("not a repro binary decision log (bad magic)")
    if data[: len(MAGIC)] != MAGIC:
        raise ValueError(
            f"binary decision-log version {data[4]} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    offset = len(MAGIC)
    cells = []

    def damaged(kind: str, at: int):
        if salvage:
            # Salvage: the complete leading cells are already in ``cells``.
            _count_salvaged(1)
            return None
        return ArtifactCorruptionError(
            f"binary decision log is damaged: truncated cell {kind} at "
            f"byte offset {at} (complete cells before it: {len(cells)})",
            reason="truncated",
            path=path,
            offset=at,
            frame=len(cells),
        )

    while offset < len(data):
        if offset + CELL_STRUCT.size > len(data):
            error = damaged("header", offset)
            if error is None:
                return cells
            raise error
        wlen, plen, sample_rate, total, graded, _reserved, count = (
            CELL_STRUCT.unpack_from(data, offset)
        )
        offset += CELL_STRUCT.size
        end_names = offset + wlen + plen
        body_end = end_names + count * RECORD_STRUCT.size
        if body_end > len(data):
            error = damaged("body", offset)
            if error is None:
                return cells
            raise error
        workload = data[offset: offset + wlen].decode("utf-8")
        policy = data[offset + wlen: end_names].decode("utf-8")
        events, violations = [], []
        for position in range(count):
            record = RECORD_STRUCT.unpack_from(
                data, end_names + position * RECORD_STRUCT.size
            )
            event = DecisionEvent(*record)
            target = violations if event.kind == KIND_VIOLATION else events
            target.append(event_to_json(event))
        offset = body_end
        cells.append({
            "workload": workload,
            "policy": policy,
            "sample_rate": sample_rate,
            "total": total,
            "graded_mode": bool(graded),
            "events": events,
            "violations": violations,
        })
    return cells


def read_decision_log(path, salvage: bool = False) -> list:
    """Load a decision log (JSONL or binary, sniffed by content).

    Returns a list of cell dicts shaped like
    :meth:`DecisionTrace.cell_payload`.  Binary logs carry the raw event
    stream only: the derived aggregates (``summary``/``epochs``/``worst``/
    ``set_evictions``) are present only for JSONL cells, and binary
    violation records have no detail strings.

    A damaged log (torn tail, truncation) raises a *located*
    :class:`~repro.store.errors.ArtifactCorruptionError` naming the first
    bad line/byte offset — unless ``salvage=True``, which instead returns
    every complete leading cell, drops the damaged tail, and counts the
    loss in the ``telemetry.salvaged`` counter (the trace-quarantine
    idiom), so readers degrade gracefully after a crash.
    """
    path = Path(path)
    if not path.is_file():
        raise ValueError(f"no decision log at {path}")
    data = path.read_bytes()
    if data.startswith(MAGIC[:4]):
        return _read_binary(data, path=path, salvage=salvage)
    return _read_jsonl(
        data.decode("utf-8", errors="replace"), path=path, salvage=salvage
    )


_EVENT_INT_KEYS = ("index", "set", "pc", "address")
_EVICT_INT_KEYS = (
    "way", "victim_line", "victim_age_insert", "victim_age_last",
    "victim_hits", "victim_recency",
)


def validate_decision_log(path) -> list:
    """Schema check; returns a list of problems (empty == valid)."""
    from repro.store.errors import ArtifactCorruptionError

    problems = []
    try:
        cells = read_decision_log(path)
    except (ValueError, KeyError, json.JSONDecodeError, UnicodeDecodeError,
            struct.error, ArtifactCorruptionError) as error:
        return [str(error)]
    for position, cell in enumerate(cells):
        label = f"cell {position} ({cell.get('workload')}/{cell.get('policy')})"
        if not cell.get("workload"):
            problems.append(f"{label}: missing workload name")
        if int(cell.get("sample_rate", 0)) < 1:
            problems.append(f"{label}: sample_rate must be >= 1")
        summary = cell.get("summary")
        if summary is not None and summary.get("sampled") != len(
            cell.get("events", ())
        ):
            problems.append(
                f"{label}: summary.sampled != number of event lines"
            )
        for entry in list(cell.get("events", ())) + list(
            cell.get("violations", ())
        ):
            try:
                event = event_from_json(entry)
            except (KeyError, ValueError, TypeError) as error:
                problems.append(f"{label}: bad event {entry!r}: {error}")
                continue
            if event.grade not in (OPTIMAL, NEUTRAL, HARMFUL, UNGRADED):
                problems.append(
                    f"{label}: event at index {event.index} has invalid "
                    f"grade {event.grade}"
                )
            if cell.get("total") and event.index > int(cell["total"]):
                problems.append(
                    f"{label}: event index {event.index} beyond stream "
                    f"total {cell['total']}"
                )
    return problems
