"""Surfacing: ``metrics.json``, plain-text tables, Prometheus exposition.

``metrics.json`` (written into the run directory by ``repro sweep
--metrics`` and rendered by ``repro metrics <run-dir>``) separates the
deterministic sections from wall-clock data:

.. code-block:: json

    {
      "schema": 1,
      "kind": "sweep",
      "counters":   {"cache.hits{level=llc,policy=rlr}": 123},
      "gauges":     {"rl.train_hit_rate": 0.61},
      "histograms": {"replay.llc_hit_rate{policy=rlr}": {
                        "bounds": [...], "counts": [...],
                        "sum": 1.2, "count": 2, "min": 0.5, "max": 0.7}},
      "timings":    {"wall_seconds": 3.2, "cell_seconds": {...}},
      "ops":        {"timeouts": 0, "crashes": 0, "retries": 0},
      "meta":       {"run_id": "run-0001"}
    }

``counters``/``gauges``/``histograms`` are pure functions of simulation
results and merge deterministically (``--jobs 1`` == ``--jobs 4``, byte
for byte); ``timings``/``ops``/``meta`` are observability-only.  The
Prometheus exporter renders the same payload in text exposition format for
scraping long runs (``repro metrics <run-dir> --prometheus``, or
:func:`start_http_exporter` for a live endpoint).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.runs.atomic import atomic_write_text
from repro.telemetry.registry import deterministic_digest, split_metric_key

SCHEMA_VERSION = 1

METRICS_NAME = "metrics.json"
SPANS_NAME = "spans.jsonl"


def build_payload(kind: str, snapshot: dict, timings: dict = None,
                  ops: dict = None, meta: dict = None) -> dict:
    """Assemble a schema-versioned payload from a merged snapshot."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "histograms": snapshot.get("histograms", {}),
        "timings": timings or {},
        "ops": ops or {},
        "meta": meta or {},
    }


def deterministic_sections(payload: dict) -> dict:
    """The byte-comparable subset (counters/gauges/histograms only)."""
    return {
        "counters": payload.get("counters", {}),
        "gauges": payload.get("gauges", {}),
        "histograms": payload.get("histograms", {}),
    }


def payload_digest(payload: dict) -> str:
    """SHA-256 of the deterministic sections (jobs-count invariant)."""
    return deterministic_digest(deterministic_sections(payload))


def write_metrics_json(path, payload: dict) -> Path:
    """Atomically write ``payload`` as sorted, indented JSON."""
    path = Path(path)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_metrics_json(path) -> dict:
    path = Path(path)
    if path.is_dir():
        path = path / METRICS_NAME
    if not path.is_file():
        raise ValueError(
            f"no {path.name} at {path.parent} (was the run started "
            f"with --metrics?)"
        )
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"could not read {path}: {error}") from error
    problems = validate_metrics(payload)
    if problems:
        raise ValueError(
            f"{path} is not a valid metrics payload: " + "; ".join(problems)
        )
    return payload


def validate_metrics(payload) -> list:
    """Schema check; returns a list of problems (empty == valid)."""
    problems = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    if not isinstance(payload.get("kind"), str):
        problems.append("kind missing or not a string")
    for section, value_check in (
        ("counters", lambda v: isinstance(v, int) and not isinstance(v, bool)),
        ("gauges", lambda v: isinstance(v, (int, float))),
    ):
        section_value = payload.get(section)
        if not isinstance(section_value, dict):
            problems.append(f"{section} missing or not an object")
            continue
        for key, value in section_value.items():
            if not value_check(value):
                problems.append(f"{section}[{key!r}] has invalid value {value!r}")
    histograms = payload.get("histograms")
    if not isinstance(histograms, dict):
        problems.append("histograms missing or not an object")
    else:
        for key, hist in histograms.items():
            if not isinstance(hist, dict):
                problems.append(f"histograms[{key!r}] is not an object")
                continue
            bounds = hist.get("bounds")
            counts = hist.get("counts")
            if not isinstance(bounds, list) or not isinstance(counts, list):
                problems.append(f"histograms[{key!r}] missing bounds/counts")
            elif len(counts) != len(bounds) + 1:
                problems.append(
                    f"histograms[{key!r}] needs len(bounds)+1 counts"
                )
            elif sum(counts) != hist.get("count"):
                problems.append(
                    f"histograms[{key!r}] count does not equal sum(counts)"
                )
    for section in ("timings", "ops", "meta"):
        if section in payload and not isinstance(payload[section], dict):
            problems.append(f"{section} is not an object")
    return problems


# -- plain-text rendering ------------------------------------------------------


def render_metrics(payload: dict) -> str:
    """Human-readable tables for ``repro metrics`` (and ``sweep --metrics``)."""
    from repro.eval.reporting import format_table

    blocks = []
    counters = payload.get("counters", {})
    if counters:
        rows = [{"counter": key, "value": value}
                for key, value in sorted(counters.items())]
        blocks.append(format_table(rows, headers=["counter", "value"],
                                   title=f"counters ({payload.get('kind')})"))
    gauges = payload.get("gauges", {})
    if gauges:
        rows = [{"gauge": key, "value": round(value, 6)}
                for key, value in sorted(gauges.items())]
        blocks.append(format_table(rows, headers=["gauge", "value"],
                                   title="gauges"))
    histograms = payload.get("histograms", {})
    if histograms:
        rows = []
        for key, hist in sorted(histograms.items()):
            rows.append({
                "histogram": key,
                "count": hist.get("count", 0),
                "mean": round(hist["sum"] / hist["count"], 4)
                if hist.get("count") else "-",
                "min": "-" if hist.get("min") is None else round(hist["min"], 4),
                "max": "-" if hist.get("max") is None else round(hist["max"], 4),
            })
        blocks.append(format_table(
            rows, headers=["histogram", "count", "mean", "min", "max"],
            title="histograms",
        ))
    timings = payload.get("timings", {})
    if timings:
        rows = []
        for key in sorted(timings):
            value = timings[key]
            if isinstance(value, dict):
                for sub, seconds in sorted(value.items()):
                    rows.append({"timing": f"{key}.{sub}",
                                 "seconds": round(seconds, 4)})
            elif value is not None:
                rows.append({"timing": key, "seconds": round(value, 4)})
        blocks.append(format_table(rows, headers=["timing", "seconds"],
                                   title="timings (wall clock)"))
    ops = payload.get("ops", {})
    if any(ops.values()):
        rows = [{"op": key, "value": value} for key, value in sorted(ops.items())]
        blocks.append(format_table(rows, headers=["op", "value"],
                                   title="reliability ops"))
    return "\n\n".join(blocks) if blocks else "(no metrics recorded)"


# -- Prometheus text exposition ------------------------------------------------


def _prom_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", f"repro_{name}")


def _prom_labels(labels: dict, extra: dict = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{re.sub(r"[^a-zA-Z0-9_]", "_", k)}="{v}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def to_prometheus(payload: dict) -> str:
    """Render a payload in Prometheus text exposition format 0.0.4."""
    lines = []
    typed = set()

    def emit(name, labels, value, prom_type, extra=None):
        prom = _prom_name(name)
        if prom not in typed:
            lines.append(f"# TYPE {prom} {prom_type}")
            typed.add(prom)
        lines.append(f"{prom}{_prom_labels(labels, extra)} {value}")

    for key, value in sorted(payload.get("counters", {}).items()):
        name, labels = split_metric_key(key)
        emit(name + "_total", labels, value, "counter")
    for key, value in sorted(payload.get("gauges", {}).items()):
        name, labels = split_metric_key(key)
        emit(name, labels, value, "gauge")
    for key, hist in sorted(payload.get("histograms", {}).items()):
        name, labels = split_metric_key(key)
        prom = _prom_name(name)
        if prom not in typed:
            lines.append(f"# TYPE {prom} histogram")
            typed.add(prom)
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f"{prom}_bucket{_prom_labels(labels, {'le': bound})} {cumulative}"
            )
        lines.append(
            f"{prom}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
            f" {hist['count']}"
        )
        lines.append(f"{prom}_sum{_prom_labels(labels)} {hist['sum']}")
        lines.append(f"{prom}_count{_prom_labels(labels)} {hist['count']}")
    for key, value in sorted(payload.get("ops", {}).items()):
        emit(f"ops_{key}_total", {}, value, "counter")
    return "\n".join(lines) + "\n"


class HttpExporter:
    """A running metrics endpoint: explicit port, clean shutdown.

    Returned by :func:`start_http_exporter`.  Supports ``with`` for scoped
    use and unpacks as the historical ``(server, thread)`` pair, so older
    call sites keep working::

        with start_http_exporter(payload_fn) as exporter:
            scrape(f"http://127.0.0.1:{exporter.port}/metrics")

        server, thread = start_http_exporter(payload_fn)  # legacy form
    """

    def __init__(self, server, thread):
        self.server = server
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound TCP port (resolves a requested port 0)."""
        return self.server.server_address[1]

    def close(self, timeout: float = 5.0) -> None:
        """Stop serving, release the socket, and join the thread."""
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "HttpExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __iter__(self):
        return iter((self.server, self.thread))

    def __repr__(self) -> str:
        return f"HttpExporter(http://{self.host}:{self.port}/metrics)"


def start_http_exporter(payload_fn, host: str = "127.0.0.1", port: int = 0,
                        health_fn=None) -> HttpExporter:
    """Serve ``payload_fn()`` at ``/metrics`` in Prometheus format.

    Returns an :class:`HttpExporter`; call ``.close()`` (or use it as a
    context manager) to stop.  Meant for scraping long sweeps/training
    runs; the handler re-evaluates ``payload_fn`` per request, so a live
    registry snapshot works::

        start_http_exporter(lambda: build_payload(
            "train", telemetry.get_registry().snapshot()))

    ``health_fn`` (optional) enables ``/healthz``: it returns a JSON-able
    dict served with status 200 when its ``"ok"`` key is truthy (or
    missing) and 503 otherwise — the policy server wires its shard health
    in here.  Binding a port that is already taken raises :class:`OSError`
    with a message naming the address instead of a bare errno traceback.
    """

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            path = self.path.rstrip("/")
            if path == "/healthz" and health_fn is not None:
                health = health_fn()
                body = json.dumps(health, sort_keys=True).encode("utf-8")
                self.send_response(200 if health.get("ok", True) else 503)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            if path not in ("", "/metrics"):
                self.send_error(404)
                return
            body = to_prometheus(payload_fn()).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # quiet by default
            pass

    try:
        server = ThreadingHTTPServer((host, port), Handler)
    except OSError as error:
        raise OSError(
            f"metrics exporter could not bind {host}:{port}: {error} — "
            f"is another exporter already listening there?  Pass port=0 "
            f"to pick any free port."
        ) from error
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return HttpExporter(server, thread)
