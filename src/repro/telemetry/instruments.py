"""Domain instrumentation: simulator/trainer/sweep state -> metrics.

The hot layers keep their own cheap counters (``CacheStats`` per cache
level, ``PrepCache.hits/misses/corrupt``, the agent's loss list, the pool's
watchdog stats); this module *folds* those into telemetry snapshots at
batch boundaries — once per cell, per workload, per epoch — so the hot
loops themselves never pay a per-access telemetry call.

Determinism contract: everything produced by :func:`cell_snapshot`,
:func:`hierarchy_snapshot`, and :func:`prep_cache_snapshot` is a pure
function of simulation *results* (which are themselves deterministic), so
merging them with :func:`repro.telemetry.merge_snapshots` yields
byte-identical counters for ``--jobs 1`` and ``--jobs 4``.  Wall-clock
data stays in :func:`sweep_timings`, which is surfaced separately and
never enters the deterministic sections.
"""

from __future__ import annotations

from repro.telemetry.registry import (
    MAGNITUDE_BUCKETS,
    RATIO_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)

#: Integer-valued keys of ``CacheStats.summary()`` worth counting.
_STAT_KEYS = (
    "accesses", "hits", "misses", "demand_hits", "demand_misses",
    "evictions", "dirty_evictions", "bypasses",
)


def record_cache_stats(registry, summary: dict, **labels) -> None:
    """Fold one ``CacheStats.summary()`` dict into level-labelled counters."""
    for key in _STAT_KEYS:
        value = summary.get(key, 0)
        if value:
            registry.counter(f"cache.{key}", **labels).inc(value)


def cell_snapshot(cell) -> dict:
    """Deterministic per-cell metrics (pure function of the CellResult)."""
    registry = MetricsRegistry()
    if cell.ok:
        registry.counter("sweep.cells_ok").inc()
        violations = getattr(cell, "violations", ())
        if violations:
            registry.counter("sweep.cells_degraded").inc()
            registry.counter(
                "sweep.cells_degraded_by", policy=cell.policy
            ).inc()
            registry.counter("sanitize.cell_violations").inc(len(violations))
        result = cell.result
        record_cache_stats(registry, result.llc_stats, level="llc",
                           policy=cell.policy)
        registry.histogram(
            "replay.llc_hit_rate", buckets=RATIO_BUCKETS, policy=cell.policy
        ).observe(result.llc_hit_rate)
        registry.histogram(
            "replay.demand_mpki", buckets=MAGNITUDE_BUCKETS, policy=cell.policy
        ).observe(result.demand_mpki)
        decisions = getattr(cell, "decisions", None)
        if decisions:
            record_decision_payload(registry, decisions, policy=cell.policy)
    else:
        registry.counter("sweep.cells_failed").inc()
        registry.counter("sweep.cells_failed_by", policy=cell.policy).inc()
    return registry.snapshot()


def record_decision_payload(registry, payload: dict, **labels) -> None:
    """Fold one decision-trace cell payload into decision metrics.

    Everything here is computed from the payload's integer aggregates
    (pure function of the deterministic replay), so the counters and the
    epoch-regret histogram merge byte-identically across ``--jobs``
    counts.  Regret per decision is ``(1 - grade) / 2``; the histogram
    observes each epoch's *mean* regret, giving an epoch-bucketed view of
    where in the stream a policy loses to OPT.
    """
    summary = payload.get("summary", {})
    for key in ("evictions", "sampled", "dropped", "graded",
                "optimal", "neutral", "harmful"):
        value = summary.get(key, 0)
        if value:
            registry.counter(f"decisions.{key}", **labels).inc(value)
    violations = summary.get("violations", 0)
    if violations:
        registry.counter("decisions.violations", **labels).inc(violations)
    epochs = payload.get("epochs", {})
    decisions_per_epoch = epochs.get("decisions", ())
    neutral_per_epoch = epochs.get("neutral", ())
    harmful_per_epoch = epochs.get("harmful", ())
    histogram = registry.histogram(
        "decisions.epoch_mean_regret", buckets=RATIO_BUCKETS, **labels
    )
    for decisions, neutral, harmful in zip(
        decisions_per_epoch, neutral_per_epoch, harmful_per_epoch
    ):
        if decisions:
            histogram.observe((neutral + 2 * harmful) / (2 * decisions))


def hierarchy_snapshot(hierarchy_stats: dict) -> dict:
    """Pass-1 full-hierarchy counters, per level, summed over workloads.

    ``hierarchy_stats`` is ``{workload: per-level summary}`` as recorded on
    :class:`~repro.eval.runner.PreparedWorkload.hierarchy_stats`.
    """
    registry = MetricsRegistry()
    for stats in hierarchy_stats.values():
        if not stats:
            continue
        for level in ("l1", "l2", "llc"):
            summary = stats.get(level)
            if summary:
                record_cache_stats(registry, summary, level=level,
                                   phase="prepare")
        registry.counter("cache.memory_reads", phase="prepare").inc(
            stats.get("memory_reads", 0)
        )
        registry.counter("cache.memory_writes", phase="prepare").inc(
            stats.get("memory_writes", 0)
        )
        registry.counter("sweep.workloads_prepared").inc()
    return registry.snapshot()


def prep_cache_snapshot(prep_cache_stats: dict) -> dict:
    """Prepared-workload disk-cache counters (hits/misses/corrupt)."""
    registry = MetricsRegistry()
    for key in ("hits", "misses", "corrupt"):
        value = prep_cache_stats.get(key, 0)
        if value:
            registry.counter(f"prep_cache.{key}").inc(value)
    return registry.snapshot()


def sweep_snapshot(report) -> dict:
    """The deterministic merged telemetry view of one sweep.

    Built exclusively from the report's deterministic contents; per-worker
    (per-cell) snapshots merge through the same order-independent path the
    property tests exercise.
    """
    parts = [cell_snapshot(cell) for cell in report.cells]
    parts.append(hierarchy_snapshot(getattr(report, "hierarchy_stats", {})))
    prep_stats = getattr(report, "prep_cache_stats", {})
    if prep_stats:
        parts.append(prep_cache_snapshot(prep_stats))
    return merge_snapshots(parts)


def sweep_timings(report) -> dict:
    """Wall-clock accounting for one sweep (non-deterministic by nature)."""
    cell_seconds = {
        f"{cell.workload}/{cell.policy}": cell.seconds
        for cell in report.cells
        if getattr(cell, "seconds", None) is not None
    }
    prepare_seconds = dict(getattr(report, "prepare_seconds", {}))
    busy = sum(cell_seconds.values()) + sum(prepare_seconds.values())
    wall = getattr(report, "wall_seconds", 0.0)
    jobs = max(1, getattr(report, "jobs", 1))
    return {
        "wall_seconds": wall,
        "busy_seconds": busy,
        "worker_utilization": busy / (wall * jobs) if wall > 0 else None,
        "prepare_seconds": prepare_seconds,
        "cell_seconds": cell_seconds,
    }


def record_training_epoch(
    registry,
    *,
    epoch: int,
    hit_rate: float,
    losses,
    agent,
    agreement: dict = None,
) -> None:
    """Fold one finished training epoch into the registry.

    ``losses`` is the slice of ``agent.losses`` produced *by this epoch*
    (deterministic given the seed); ``agreement`` is the adapter's
    optimal/harmful/total decision counts when available.
    """
    registry.counter("rl.epochs").inc()
    registry.gauge("rl.epoch").set(epoch)
    registry.gauge("rl.train_hit_rate").set(hit_rate)
    registry.gauge("rl.epsilon").set(agent.epsilon)
    registry.gauge("rl.replay_occupancy").set(
        len(agent.replay) / agent.replay.capacity if agent.replay.capacity else 0.0
    )
    registry.counter("rl.train_steps").inc(len(losses))
    loss_hist = registry.histogram(
        "rl.epoch_mean_loss", buckets=MAGNITUDE_BUCKETS
    )
    if losses:
        mean_loss = sum(losses) / len(losses)
        loss_hist.observe(mean_loss)
        registry.gauge("rl.last_mean_loss").set(mean_loss)
    if agreement:
        total = agreement.get("total", 0)
        registry.counter("rl.decisions").inc(total)
        registry.counter("rl.decisions_optimal").inc(
            agreement.get("optimal", 0)
        )
        registry.counter("rl.decisions_harmful").inc(
            agreement.get("harmful", 0)
        )
        if total:
            registry.gauge("rl.agreement_with_opt").set(
                agreement.get("optimal", 0) / total
            )
