"""Phase attribution: where replay wall time actually goes.

The vectorized-kernel roadmap item needs more than an accesses/sec number —
it needs to know *which* hot-path phase to attack.  This module splits the
replay loop's wall time into named, mutually exclusive phases:

=====================  =======================================================
phase                  meaning
=====================  =======================================================
``trace_decode``       loop overhead outside ``cache.access`` (iteration,
                       warm-up bookkeeping, cycle accumulation)
``tag_lookup``         ``cache.access`` minus everything attributed below
                       (set indexing, tag match, recency/stats maintenance)
``victim_scoring``     ``policy.victim`` minus feature extraction
``feature_extraction`` separable per-candidate scoring (``priority`` on the
                       object-cache policies; zero where scoring is inlined)
``policy_update``      the ``on_hit``/``on_miss``/``on_evict``/``on_fill``
                       (``on_admit`` for objcache) policy hooks
``admission``          admission ``record`` + ``admit`` (objcache only)
``telemetry``          registered access/eviction/decision observers
``transport``          everything outside ``policy.victim`` on the serve
                       round-trip (framing, socket, micro-batch queueing)
=====================  =======================================================

Accounting is *subtractive*: raw timers nest (``victim`` inside ``access``
inside the loop) and :meth:`PhaseProfile.finish` derives exclusive phases so
the phase sum equals the measured loop wall time exactly (modulo a clamp of
float-epsilon negatives).  Timings are noisy; the phase *structure* — names,
call counts, access count — is a pure function of the deterministic
simulation, so :meth:`PhaseProfile.structure_digest` excludes every timing
field and is byte-identical across repeats, machines, and worker counts.

The profiled wrappers are opt-in and additive: ``replay(..., profile=None)``
(the default) constructs the plain :class:`~repro.cache.cache.Cache` and the
hot loop is untouched.  ``ProfiledCache``/``ProfiledObjectCache`` change
*when* things are measured, never *what* is computed — the differential
tests assert bit-identical simulation results against the unprofiled path.
"""

from __future__ import annotations

import hashlib
import json
import time

#: The closed phase taxonomy (docs/observability.md mirrors this table).
PHASES = (
    "trace_decode",
    "tag_lookup",
    "victim_scoring",
    "feature_extraction",
    "policy_update",
    "admission",
    "telemetry",
    "transport",
)

ENGINES = ("replay", "objcache", "serve", "train")


class PhaseProfile:
    """Accumulates raw nested timers; ``finish()`` derives exclusive phases.

    One instance profiles one replay (or one object-cache replay, or one
    serve client loop).  ``raw`` holds inclusive accumulators; ``calls``
    holds deterministic invocation counts per phase; ``phases`` (after
    :meth:`finish`) holds the exclusive seconds whose sum reconciles with
    ``loop_seconds``.
    """

    def __init__(self, engine: str) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown profile engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine
        self.accesses = 0
        self.loop_seconds = 0.0
        self.raw = {
            "access": 0.0,
            "victim": 0.0,
            "feature": 0.0,
            "hooks": 0.0,
            "observers": 0.0,
            "admission": 0.0,
        }
        self.calls = {}
        self.phases = {}

    def count(self, phase: str, n: int = 1) -> None:
        self.calls[phase] = self.calls.get(phase, 0) + n

    def finish(self, loop_seconds: float) -> None:
        """Fold one timed loop into the profile and (re)derive phases.

        Accumulative: a cache replayed twice calls ``finish`` twice and the
        profile covers both loops.  Exclusive phases are derived so that
        ``sum(phases) == loop_seconds`` exactly — each subtraction removes
        a timer that nests inside the minuend — with negatives (possible
        only through float rounding) clamped to zero.
        """
        self.loop_seconds += loop_seconds
        raw, phases = self.raw, {}
        if self.engine in ("replay", "objcache"):
            inside_access = (
                raw["victim"] + raw["hooks"] + raw["observers"]
                + raw["admission"]
            )
            phases["trace_decode"] = max(0.0, self.loop_seconds - raw["access"])
            phases["tag_lookup"] = max(0.0, raw["access"] - inside_access)
            phases["victim_scoring"] = max(0.0, raw["victim"] - raw["feature"])
            phases["feature_extraction"] = raw["feature"]
            phases["policy_update"] = raw["hooks"]
            phases["telemetry"] = raw["observers"]
            if self.engine == "objcache":
                phases["admission"] = raw["admission"]
            self.calls["trace_decode"] = self.accesses
            self.calls["tag_lookup"] = self.accesses
        elif self.engine == "serve":
            phases["victim_scoring"] = max(0.0, raw["victim"] - raw["feature"])
            phases["feature_extraction"] = raw["feature"]
            phases["transport"] = max(0.0, self.loop_seconds - raw["victim"])
            self.calls["transport"] = self.accesses
        self.phases = phases

    # -- reporting ---------------------------------------------------------

    def reconciliation(self) -> dict:
        """Phase-sum vs loop wall time (the <=1% acceptance invariant)."""
        phase_sum = sum(self.phases.values())
        error = (
            abs(phase_sum - self.loop_seconds) / self.loop_seconds
            if self.loop_seconds > 0 else 0.0
        )
        return {
            "phase_sum_seconds": round(phase_sum, 9),
            "loop_seconds": round(self.loop_seconds, 9),
            "relative_error": round(error, 9),
        }

    def as_dict(self) -> dict:
        """Full report (timings included) for bench payloads."""
        per_access = 1e9 / self.accesses if self.accesses else 0.0
        return {
            "engine": self.engine,
            "accesses": self.accesses,
            "loop_seconds": round(self.loop_seconds, 9),
            "reconciliation": self.reconciliation(),
            "phases": {
                name: {
                    "seconds": round(seconds, 9),
                    "calls": self.calls.get(name, 0),
                    "per_access_ns": round(seconds * per_access, 1),
                }
                for name, seconds in sorted(self.phases.items())
            },
        }

    def structure(self) -> dict:
        """The deterministic skeleton: every timing field excluded."""
        return {
            "engine": self.engine,
            "accesses": self.accesses,
            "calls": {name: self.calls[name] for name in sorted(self.calls)},
            "phases": sorted(self.phases),
        }

    def structure_digest(self) -> str:
        """sha256 over the canonical structure JSON (repeat/jobs-stable)."""
        body = json.dumps(
            self.structure(), separators=(",", ":"), sort_keys=True
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


# -- CPU cache path -----------------------------------------------------------


class _TimedPolicy:
    """Timing proxy around a (possibly sanitizer-wrapped) CPU policy.

    Only the hot-path contract methods are intercepted; everything else
    (``bind``, ``name``, ``needs_line_metadata``, ...) delegates, so the
    proxy is behaviourally transparent.
    """

    def __init__(self, inner, profile: PhaseProfile) -> None:
        self._inner = inner
        self._profile = profile

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def victim(self, set_index, cache_set, access):
        profile = self._profile
        started = time.perf_counter()
        way = self._inner.victim(set_index, cache_set, access)
        profile.raw["victim"] += time.perf_counter() - started
        profile.count("victim_scoring")
        return way

    def on_hit(self, set_index, way, line, access):
        profile = self._profile
        started = time.perf_counter()
        self._inner.on_hit(set_index, way, line, access)
        profile.raw["hooks"] += time.perf_counter() - started
        profile.count("policy_update")

    def on_miss(self, set_index, access):
        profile = self._profile
        started = time.perf_counter()
        self._inner.on_miss(set_index, access)
        profile.raw["hooks"] += time.perf_counter() - started
        profile.count("policy_update")

    def on_evict(self, set_index, way, line, access):
        profile = self._profile
        started = time.perf_counter()
        self._inner.on_evict(set_index, way, line, access)
        profile.raw["hooks"] += time.perf_counter() - started
        profile.count("policy_update")

    def on_fill(self, set_index, way, line, access):
        profile = self._profile
        started = time.perf_counter()
        self._inner.on_fill(set_index, way, line, access)
        profile.raw["hooks"] += time.perf_counter() - started
        profile.count("policy_update")


def _timed_observer(callback, profile: PhaseProfile):
    def timed(*args):
        started = time.perf_counter()
        callback(*args)
        profile.raw["observers"] += time.perf_counter() - started
        profile.count("telemetry")

    return timed


def make_profiled_cache(config, policy, profile, **kwargs):
    """A :class:`~repro.cache.cache.Cache` with per-phase timers attached.

    Identical simulation behaviour (the differential test replays the same
    stream through both and asserts bit-identical results); the only
    difference is that ``access``, the policy, and any attached observers
    are bracketed with ``perf_counter`` feeding ``profile``.  Imported and
    subclassed at call time so this module never imports the cache layer
    at import time (the cache layer imports telemetry).
    """
    from repro.cache.cache import Cache

    class ProfiledCache(Cache):
        def __init__(self):
            # Cache.__init__ applies the sanitizer wrap; the timer goes on
            # *outside* it so victim_scoring/policy_update include the
            # sanitizer's real hot-path cost.
            super().__init__(config, policy, **kwargs)
            self.profile = profile
            self.policy = _TimedPolicy(self.policy, profile)

        def access(self, access):
            started = time.perf_counter()
            result = super().access(access)
            profile.raw["access"] += time.perf_counter() - started
            profile.accesses += 1
            return result

        def add_access_observer(self, callback):
            super().add_access_observer(_timed_observer(callback, profile))

        def add_eviction_observer(self, callback):
            super().add_eviction_observer(_timed_observer(callback, profile))

        def add_decision_observer(self, callback):
            super().add_decision_observer(_timed_observer(callback, profile))

    return ProfiledCache()


# -- object cache path --------------------------------------------------------


class _TimedObjectPolicy:
    """Timing proxy for object policies; also taps separable ``priority``.

    ``priority`` (the per-candidate scoring RLR/GDSF run inside ``victim``)
    is patched *on the wrapped instance* so the policy's own internal calls
    route through the timer — that is what makes ``feature_extraction``
    separable from ``victim_scoring``.
    """

    def __init__(self, inner, profile: PhaseProfile) -> None:
        self._inner = inner
        self._profile = profile
        original = getattr(inner, "priority", None)
        if callable(original):
            def timed_priority(obj, now):
                started = time.perf_counter()
                score = original(obj, now)
                profile.raw["feature"] += time.perf_counter() - started
                profile.count("feature_extraction")
                return score

            inner.priority = timed_priority

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def victim(self, residents, incoming, now):
        profile = self._profile
        started = time.perf_counter()
        key = self._inner.victim(residents, incoming, now)
        profile.raw["victim"] += time.perf_counter() - started
        profile.count("victim_scoring")
        return key

    def on_admit(self, obj, now):
        profile = self._profile
        started = time.perf_counter()
        self._inner.on_admit(obj, now)
        profile.raw["hooks"] += time.perf_counter() - started
        profile.count("policy_update")

    def on_hit(self, obj, now):
        profile = self._profile
        started = time.perf_counter()
        self._inner.on_hit(obj, now)
        profile.raw["hooks"] += time.perf_counter() - started
        profile.count("policy_update")

    def on_evict(self, obj, now):
        profile = self._profile
        started = time.perf_counter()
        self._inner.on_evict(obj, now)
        profile.raw["hooks"] += time.perf_counter() - started
        profile.count("policy_update")


class _TimedAdmission:
    """Timing proxy for admission hooks (``record`` + ``admit``)."""

    def __init__(self, inner, profile: PhaseProfile) -> None:
        self._inner = inner
        self._profile = profile

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def record(self, request, now):
        profile = self._profile
        started = time.perf_counter()
        self._inner.record(request, now)
        profile.raw["admission"] += time.perf_counter() - started
        profile.count("admission")

    def admit(self, request, now):
        profile = self._profile
        started = time.perf_counter()
        verdict = self._inner.admit(request, now)
        profile.raw["admission"] += time.perf_counter() - started
        profile.count("admission")
        return verdict


def make_profiled_object_cache(capacity_bytes, policy, profile,
                               admission=None):
    """An :class:`~repro.objcache.cache.ObjectCache` with phase timers.

    ``replay`` additionally brackets the whole request loop and calls
    :meth:`PhaseProfile.finish`, so a single ``cache.replay(requests)`` is
    a complete profiled run.
    """
    from repro.objcache.cache import ObjectCache

    class ProfiledObjectCache(ObjectCache):
        def __init__(self):
            super().__init__(capacity_bytes, policy, admission=admission)
            self.profile = profile
            self.policy = _TimedObjectPolicy(self.policy, profile)
            self.admission = _TimedAdmission(self.admission, profile)

        def access(self, request):
            started = time.perf_counter()
            hit = super().access(request)
            profile.raw["access"] += time.perf_counter() - started
            profile.accesses += 1
            return hit

        def replay(self, requests):
            started = time.perf_counter()
            stats = super().replay(requests)
            profile.finish(time.perf_counter() - started)
            return stats

        def add_decision_observer(self, observer):
            super().add_decision_observer(_timed_observer(observer, profile))

    return ProfiledObjectCache()


# -- determinism harness ------------------------------------------------------


def _structure_cell(cell: dict) -> dict:
    """Worker: profile one (engine, policy) cell, return its structure.

    Module-level so :func:`profile_structures` can fan out over a process
    pool; ``cell`` is a plain dict of primitives for picklability.
    """
    engine = cell["engine"]
    profile = PhaseProfile(engine)
    if engine == "replay":
        from repro.eval.runner import prepare_workload, replay
        from repro.eval.workloads import EvalConfig

        config = EvalConfig(
            scale=cell.get("scale", 64),
            trace_length=cell.get("trace_length", 1500),
            seed=cell.get("seed", 7),
        )
        trace = config.trace(cell.get("workload", "429.mcf"))
        prepared = prepare_workload(config, trace)
        replay(prepared, cell.get("policy", "lru"), profile=profile)
        return profile.structure()
    if engine == "objcache":
        from repro.objcache import generate_object_trace, make_object_policy

        trace = generate_object_trace(
            name="perf-cell", kind="zipf",
            objects=cell.get("objects", 400),
            length=cell.get("length", 2000),
            seed=cell.get("seed", 7), alpha=cell.get("alpha", 1.0),
            sizes={"dist": "lognormal", "min": 256, "max": 1 << 16,
                   "correlate": "inverse"},
        )
        cache = make_profiled_object_cache(
            cell.get("capacity_bytes", 1_000_000),
            make_object_policy(cell.get("policy", "lru")),
            profile,
        )
        cache.replay(trace.requests)
        return profile.structure()
    raise ValueError(f"profile_structures cannot run engine {engine!r}")


def profile_structures(cells, jobs: int = 1) -> list:
    """Phase structures for ``cells``, optionally across worker processes.

    The determinism contract this exists to test: the returned structures
    (and their digests) are byte-identical whatever ``jobs`` is — phase
    structure is simulation behaviour, and simulation behaviour does not
    depend on which process ran it.
    """
    cells = list(cells)
    if jobs <= 1:
        return [_structure_cell(cell) for cell in cells]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_structure_cell, cells))


# -- flamegraph capture -------------------------------------------------------


def _frame_name(code) -> str:
    if isinstance(code, str):
        return code.replace(" ", "_")
    from pathlib import Path

    return f"{Path(code.co_filename).name}:{code.co_firstlineno}:{code.co_name}"


def collapse_profile(profile) -> str:
    """Collapsed-stack ("folded") lines from a ``cProfile.Profile``.

    Two-level approximation in the style of flameprof: one line per
    function with its self time, one ``caller;callee`` line per observed
    edge with the callee's inclusive time, weights in integer microseconds.
    Any flamegraph renderer that accepts Brendan Gregg's folded format can
    draw it.  Lines are sorted so the artifact is deterministic given the
    same capture.
    """
    lines = []
    for entry in profile.getstats():
        name = _frame_name(entry.code)
        self_us = int(round(entry.inlinetime * 1e6))
        if self_us > 0:
            lines.append(f"{name} {self_us}")
        for sub in entry.calls or ():
            edge_us = int(round(sub.totaltime * 1e6))
            if edge_us > 0:
                lines.append(f"{name};{_frame_name(sub.code)} {edge_us}")
    return "\n".join(sorted(lines)) + "\n"


def capture_collapsed(fn):
    """Run ``fn()`` under cProfile; returns ``(result, folded_text)``."""
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, collapse_profile(profiler)
