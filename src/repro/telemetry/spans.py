"""Span-based tracing: timed, attributed JSONL events for long runs.

A :class:`SpanRecorder` appends one JSON object per finished span to a
``spans.jsonl`` file (by convention inside the run directory, next to the
crash-safety journal).  Spans are observability, not accounting — they
carry wall-clock timestamps and are deliberately kept out of the
deterministic metrics snapshot.

Event schema (one line each)::

    {"type": "span", "seq": 3, "name": "prepare_workload",
     "ts": 1754500000.123, "dur_s": 0.8421,
     "attrs": {"workload": "429.mcf"}, "pid": 12345}

``seq`` increases per recorder, so interleavings are reconstructible even
when wall clocks collide.  Instrumented code uses the module-level
:func:`repro.telemetry.span` context manager, which resolves the recorder
at entry time and degrades to a shared no-op object when tracing is off —
the disabled path is one global read per span, nothing else.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path


class SpanRecorder:
    """Append-only JSONL span sink (line-buffered, flushed per event)."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._seq = 0

    def emit(self, name: str, duration_s: float, started_ts: float = None,
             **attrs) -> None:
        """Record one finished span (used for externally timed work too,
        e.g. durations measured inside worker processes)."""
        event = {
            "type": "span",
            "seq": self._seq,
            "name": name,
            "ts": time.time() if started_ts is None else started_ts,
            "dur_s": duration_s,
            "attrs": attrs,
            "pid": os.getpid(),
        }
        self._seq += 1
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "SpanRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class Span:
    """A live span: times its ``with`` body and emits on exit."""

    __slots__ = ("recorder", "name", "attrs", "_start", "_ts")

    def __init__(self, recorder: SpanRecorder, name: str, attrs: dict) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        attrs = self.attrs
        if exc_type is not None:
            attrs = dict(attrs, error=exc_type.__name__)
        self.recorder.emit(self.name, duration, started_ts=self._ts, **attrs)
        return False


def read_spans(path) -> list:
    """All parseable span events from a ``spans.jsonl``.

    Spans are append-streamed (not atomically rewritten), so a crash can
    legitimately tear the last line.  Damaged lines are skipped — but
    *counted* in the ``telemetry.salvaged`` counter (the trace-quarantine
    idiom), so silent loss is observable; ``repro fsck`` locates and
    repairs the tail.
    """
    path = Path(path)
    if not path.is_file():
        return []
    events = []
    skipped = 0
    for line in path.read_text(encoding="utf-8",
                               errors="replace").splitlines():
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if isinstance(event, dict) and event.get("type") == "span":
            events.append(event)
    if skipped:
        from repro.telemetry import get_registry

        get_registry().counter("telemetry.salvaged").inc(skipped)
    return events


def summarize_spans(events) -> dict:
    """Per-span-name aggregates: ``{name: {count, total_s, mean_s, max_s}}``."""
    summary = {}
    for event in events:
        if event.get("type") != "span":
            continue
        name = event.get("name", "?")
        duration = float(event.get("dur_s", 0.0))
        entry = summary.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)
    for entry in summary.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return summary
