"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (see docs/observability.md):

* **Cheap when disabled.**  The global accessor
  (:func:`repro.telemetry.get_registry`) returns the shared
  :data:`NULL_REGISTRY` unless telemetry has been configured, and every
  null instrument's method is a bound no-op — instrumented code pays one
  attribute call, no allocation, no branching on flags.
* **Deterministic merge semantics.**  A sweep runs cells in worker
  processes; each worker's :meth:`MetricsRegistry.snapshot` is a plain,
  JSON-serializable dict and :func:`merge_snapshots` combines any number of
  them with commutative, associative operators (counters sum, gauges take
  the max, histograms merge bucket-wise).  Merging N snapshots is therefore
  order-independent: ``--jobs 1`` and ``--jobs 4`` produce byte-identical
  merged counters (the property tests permute snapshots to prove it).
* **Fixed buckets.**  Histogram bucket bounds are part of the metric's
  identity; merging histograms with different bounds is a hard error, never
  a silent re-bucketing.

Metric identity is ``name`` plus optional labels; labels are folded into
the key as ``name{k=v,...}`` with sorted keys, so two registries always
agree on the key for the same (name, labels) pair.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from typing import Optional

#: Default histogram bounds for unit-interval ratios (hit rates, utilization).
RATIO_BUCKETS = tuple(round(0.1 * i, 1) for i in range(1, 10))

#: Default histogram bounds for MPKI-like magnitudes.
MAGNITUDE_BUCKETS = (0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500)


def metric_key(name: str, labels: dict) -> str:
    """Canonical registry key for ``name`` + ``labels`` (sorted, stable)."""
    if not labels:
        return name
    encoded = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{encoded}}}"


def split_metric_key(key: str):
    """Inverse of :func:`metric_key`: ``(name, labels_dict)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, encoded = key.partition("{")
    labels = {}
    for pair in encoded[:-1].split(","):
        if "=" in pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; merges deterministically by maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max aggregates.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last bound, so
    ``counts`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for the disabled path."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry stand-in when telemetry is disabled: every call is a no-op.

    A single shared instance (:data:`NULL_REGISTRY`) serves the whole
    process; its factory methods return one shared instrument, so the
    disabled path never allocates.
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return empty_snapshot()


NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """A live collection of named instruments (one per process/task)."""

    enabled = True

    def __init__(self) -> None:
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- instrument factories (get-or-create) -------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, buckets=RATIO_BUCKETS, **labels) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        elif tuple(instrument.bounds) != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {key!r} re-registered with different buckets"
            )
        return instrument

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, JSON-serializable copy of every instrument."""
        return {
            "counters": {
                key: counter.value for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.value for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.as_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }


def empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _merge_histogram(into: dict, other: dict, key: str) -> dict:
    if into["bounds"] != other["bounds"]:
        raise ValueError(
            f"cannot merge histogram {key!r}: bucket bounds differ "
            f"({into['bounds']} vs {other['bounds']})"
        )
    mins = [m for m in (into["min"], other["min"]) if m is not None]
    maxes = [m for m in (into["max"], other["max"]) if m is not None]
    return {
        "bounds": list(into["bounds"]),
        "counts": [a + b for a, b in zip(into["counts"], other["counts"])],
        "sum": into["sum"] + other["sum"],
        "count": into["count"] + other["count"],
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
    }


def merge_snapshots(snapshots) -> dict:
    """Merge any number of snapshots with order-independent semantics.

    Counters sum, gauges take the maximum, histograms merge bucket-wise
    (sums of counts, min of mins, max of maxes).  Every operator is
    commutative and associative — exactly so for the integer parts
    (counters, bucket counts, ``count``) and for min/max, and up to
    floating-point ULP rounding for histogram ``sum`` (float addition is
    not bit-associative).  Callers that need *byte*-identical output — the
    sweep pipeline does — merge in a canonical order (sorted report cells),
    which also pins the float sums; the property tests cover both levels.
    """
    counters = {}
    gauges = {}
    histograms = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        for key, value in snapshot.get("histograms", {}).items():
            if key in histograms:
                histograms[key] = _merge_histogram(histograms[key], value, key)
            else:
                histograms[key] = {
                    "bounds": list(value["bounds"]),
                    "counts": list(value["counts"]),
                    "sum": value["sum"],
                    "count": value["count"],
                    "min": value["min"],
                    "max": value["max"],
                }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def canonical_json(snapshot: dict) -> str:
    """Byte-stable serialization (sorted keys, repr-exact floats)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def deterministic_digest(snapshot: dict) -> str:
    """SHA-256 over the canonical serialization — the byte-identity check."""
    return hashlib.sha256(canonical_json(snapshot).encode("utf-8")).hexdigest()
