"""``repro.telemetry`` — metrics, spans, and hot-loop profiling.

The observability layer for long-running entry points (sweeps, training,
parallel evaluation).  Three pieces:

* a process-local **metrics registry** (:mod:`repro.telemetry.registry`)
  with counters, gauges, and fixed-bucket histograms, all of whose
  snapshots merge deterministically (order-independent, byte-identical
  across worker counts);
* **span tracing** (:mod:`repro.telemetry.spans`): ``with span("name",
  key=value): ...`` appends timed JSONL events to the run directory;
* **hot-loop profiling** (:mod:`repro.telemetry.profiling`):
  ``profiled(iterable, "replay")`` is the identity function when telemetry
  is disabled, a counting/timing wrapper when enabled.

Telemetry is **off by default** and the disabled path is engineered to be
free: ``get_registry()`` returns a shared null registry, ``span()`` returns
a shared null context manager, ``profiled()`` returns its argument.  Enable
it per process::

    from repro import telemetry
    telemetry.configure(registry=telemetry.MetricsRegistry(),
                        span_path=run_dir / "spans.jsonl")
    ...
    snapshot = telemetry.get_registry().snapshot()
    telemetry.shutdown()

See docs/observability.md for the file formats and CLI surfacing
(``repro sweep --metrics``, ``repro metrics <run-dir>``).
"""

from __future__ import annotations

from repro.telemetry.perf import (
    PHASES,
    PhaseProfile,
    capture_collapsed,
    collapse_profile,
    profile_structures,
)
from repro.telemetry.profiling import loop_totals, profiled, reset_loop_totals
from repro.telemetry.registry import (
    MAGNITUDE_BUCKETS,
    NULL_REGISTRY,
    RATIO_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    canonical_json,
    deterministic_digest,
    empty_snapshot,
    merge_snapshots,
    metric_key,
    split_metric_key,
)
from repro.telemetry.spans import (
    NULL_SPAN,
    Span,
    SpanRecorder,
    read_spans,
    summarize_spans,
)

__all__ = [
    "MAGNITUDE_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "PHASES",
    "PhaseProfile",
    "RATIO_BUCKETS",
    "Span",
    "SpanRecorder",
    "canonical_json",
    "capture_collapsed",
    "collapse_profile",
    "configure",
    "deterministic_digest",
    "emit_span",
    "empty_snapshot",
    "get_recorder",
    "get_registry",
    "is_enabled",
    "loop_totals",
    "merge_snapshots",
    "metric_key",
    "profile_structures",
    "profiled",
    "read_spans",
    "reset_loop_totals",
    "shutdown",
    "span",
    "split_metric_key",
    "summarize_spans",
]

_registry = NULL_REGISTRY
_recorder = None  # Optional[SpanRecorder]


def configure(registry=None, span_path=None, span_recorder=None):
    """Enable telemetry for this process.

    ``registry`` activates metric collection (pass a
    :class:`MetricsRegistry`; ``None`` leaves the current one).
    ``span_path`` opens a :class:`SpanRecorder` appending to that file
    (``span_recorder`` passes one directly).  Returns the active registry.
    """
    global _registry, _recorder
    if registry is not None:
        _registry = registry
    elif _registry is NULL_REGISTRY:
        _registry = MetricsRegistry()
    if span_recorder is not None:
        _recorder = span_recorder
    elif span_path is not None:
        _recorder = SpanRecorder(span_path)
    return _registry


def shutdown() -> None:
    """Disable telemetry and close the span recorder (back to free no-ops)."""
    global _registry, _recorder
    _registry = NULL_REGISTRY
    if _recorder is not None:
        _recorder.close()
        _recorder = None
    reset_loop_totals()


def is_enabled() -> bool:
    """True once :func:`configure` has activated a live registry."""
    return _registry is not NULL_REGISTRY


def get_registry():
    """The active registry (the shared null registry when disabled)."""
    return _registry


def get_recorder():
    """The active span recorder, or ``None`` when tracing is off."""
    return _recorder


def span(name: str, **attrs):
    """Context manager timing its body into the span log.

    When no recorder is configured this returns a shared no-op object —
    the disabled cost is one global read and one function call per span
    site (spans wrap phases, never per-access work).
    """
    recorder = _recorder
    if recorder is None:
        return NULL_SPAN
    return Span(recorder, name, attrs)


def emit_span(name: str, duration_s: float, **attrs) -> None:
    """Record an externally timed span (e.g. measured in a worker)."""
    recorder = _recorder
    if recorder is not None:
        recorder.emit(name, duration_s, **attrs)
