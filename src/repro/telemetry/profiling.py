"""Hot-loop profiling with a provably free disabled path.

The simulator's inner loops (``replay`` over the LLC stream,
``prepare_workload`` over the full trace, the RL environment's access loop)
run millions of iterations; even a no-op function call per iteration would
blow the <2% overhead budget.  :func:`profiled` therefore instruments the
*loop*, not the iteration:

* disabled (the default): it returns the iterable **unchanged** — the
  ``for`` statement binds the exact same object it would have without
  telemetry, so the hot loop's bytecode path is identical and the cost is
  one function call per loop, not per item;
* enabled: it wraps the iterable in a generator that counts items and
  measures the wall-clock of the whole consumption, then folds
  ``(iterations, seconds)`` into the active registry
  (``loop.iterations{loop=...}`` counter and per-loop timing gauges) and
  the process-local :func:`loop_totals` table.

The overhead-guard test (tests/test_telemetry_overhead.py) asserts both the
identity property and the per-loop cost bound.
"""

from __future__ import annotations

import time

_totals = {}  # loop name -> {"iterations": int, "seconds": float, "loops": int}


def loop_totals() -> dict:
    """Per-loop aggregates accumulated in this process (enabled mode only)."""
    return {name: dict(entry) for name, entry in _totals.items()}


def reset_loop_totals() -> None:
    _totals.clear()


def _account(name: str, iterations: int, seconds: float) -> None:
    from repro import telemetry

    entry = _totals.setdefault(
        name, {"iterations": 0, "seconds": 0.0, "loops": 0}
    )
    entry["iterations"] += iterations
    entry["seconds"] += seconds
    entry["loops"] += 1
    registry = telemetry.get_registry()
    registry.counter("loop.iterations", loop=name).inc(iterations)
    registry.counter("loop.runs", loop=name).inc()


def _profiled_iter(iterable, name: str):
    iterations = 0
    start = time.perf_counter()
    try:
        for item in iterable:
            iterations += 1
            yield item
    finally:
        _account(name, iterations, time.perf_counter() - start)


def profiled(iterable, name: str):
    """Wrap ``iterable`` with loop profiling; identity when disabled."""
    from repro import telemetry

    if not telemetry.is_enabled():
        return iterable
    return _profiled_iter(iterable, name)
