"""Per-eviction decision logging for object caches.

The object-world sibling of :mod:`repro.telemetry.decisions`: every
eviction the :class:`~repro.objcache.cache.ObjectCache` makes can be
counted, sampled into a ring, and graded online against the size-aware
Belady oracle (:mod:`repro.objcache.oracle`).  Events carry the victim's
**size** and size bucket, which is what lets ``repro inspect`` render
size-vs-victim profiles — the object analogue of the Fig 5-7 victim
recency/age profiles.

Log format: JSONL with header line ``{"format": "repro-object-decisions",
"version": 1}`` so `repro validate` / `repro inspect` can tell the two
decision-log families apart by sniffing one line.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.objcache.core import MAX_SIZE_BUCKET, size_bucket
from repro.objcache.oracle import (
    GRADE_HARMFUL,
    GRADE_NEUTRAL,
    GRADE_OPTIMAL,
    grade_object_eviction,
)
from repro.runs.atomic import atomic_write_text

FORMAT_NAME = "repro-object-decisions"
FORMAT_VERSION = 1

DEFAULT_RING_CAPACITY = 4096

GRADES = (GRADE_OPTIMAL, GRADE_NEUTRAL, GRADE_HARMFUL)


class ObjectDecisionTrace:
    """Observes one cache's evictions; attach with :meth:`attach`.

    Args:
        workload / policy: cell labels for the log.
        sample_rate: grade + record every Nth eviction (counter-based, so
            replays sample identically; aggregates cover ALL evictions).
        capacity: event-ring size (oldest events drop beyond it).
        oracle: optional :class:`~repro.objcache.oracle.ObjectFutureOracle`;
            grading is skipped without one.
    """

    def __init__(self, workload: str = "", policy: str = "", *,
                 sample_rate: int = 1,
                 capacity: int = DEFAULT_RING_CAPACITY,
                 oracle=None, total: int = 0) -> None:
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        self.workload = workload
        self.policy = policy
        self.sample_rate = sample_rate
        self.capacity = capacity
        self.oracle = oracle
        self.total = total
        self.evictions = 0
        self.evicted_bytes = 0
        self.sampled = 0
        self.dropped = 0
        self.optimal = 0
        self.neutral = 0
        self.harmful = 0
        self._ring = deque(maxlen=capacity)
        self._cache = None
        # bucket -> [evictions, bytes, optimal, neutral, harmful]
        self._buckets = {}

    def attach(self, cache) -> None:
        """Register on an ObjectCache's decision-observer list."""
        self._cache = cache
        cache.add_decision_observer(self._on_evict)

    def on_access(self, request, hit: bool) -> None:
        """Advance the oracle past the completed request (call per access)."""
        if self.oracle is not None:
            self.oracle.advance(request)

    # -- observation -------------------------------------------------------

    def _on_evict(self, victim, incoming, now: int) -> None:
        bucket = size_bucket(victim.size)
        row = self._buckets.setdefault(bucket, [0, 0, 0, 0, 0])
        row[0] += 1
        row[1] += victim.size
        self.evictions += 1
        self.evicted_bytes += victim.size
        if (self.evictions - 1) % self.sample_rate != 0:
            return
        grade = ""
        if self.oracle is not None:
            residents = self._cache.residents if self._cache else {}
            grade = grade_object_eviction(
                self.oracle, residents, victim, incoming, now
            )
            if grade == GRADE_OPTIMAL:
                self.optimal += 1
                row[2] += 1
            elif grade == GRADE_NEUTRAL:
                self.neutral += 1
                row[3] += 1
            else:
                self.harmful += 1
                row[4] += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append({
            "index": now,
            "key": victim.key,
            "size": victim.size,
            "bucket": bucket,
            "age": victim.age(now),
            "hits": victim.hits,
            "seen_before": int(victim.seen_before),
            "incoming_key": incoming.key if incoming else -1,
            "incoming_size": incoming.size if incoming else 0,
            "grade": grade,
        })
        self.sampled += 1

    # -- results -----------------------------------------------------------

    @property
    def graded(self) -> int:
        return self.optimal + self.neutral + self.harmful

    @property
    def regret_x2(self) -> int:
        return self.neutral + 2 * self.harmful

    def summary(self) -> dict:
        return {
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "sampled": self.sampled,
            "dropped": self.dropped,
            "graded": self.graded,
            "optimal": self.optimal,
            "neutral": self.neutral,
            "harmful": self.harmful,
            "regret_x2": self.regret_x2,
        }

    def cell_payload(self) -> dict:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "sample_rate": self.sample_rate,
            "total": self.total,
            "graded_mode": self.oracle is not None,
            "summary": self.summary(),
            "size_buckets": {
                str(bucket): {
                    "evictions": row[0],
                    "bytes": row[1],
                    "optimal": row[2],
                    "neutral": row[3],
                    "harmful": row[4],
                }
                for bucket, row in sorted(self._buckets.items())
            },
            "events": list(self._ring),
        }


# -- codec --------------------------------------------------------------------


def write_object_decisions_jsonl(path, cells) -> Path:
    """Atomically write the object decision log (cells in report order)."""
    lines = [json.dumps(
        {"format": FORMAT_NAME, "version": FORMAT_VERSION,
         "cells": len(cells)},
        sort_keys=True,
    )]
    for cell in cells:
        header = {key: value for key, value in cell.items()
                  if key != "events"}
        header["type"] = "cell"
        header["events"] = len(cell.get("events", ()))
        lines.append(json.dumps(header, sort_keys=True))
        for event in cell.get("events", ()):
            lines.append(json.dumps(event, sort_keys=True))
    path = Path(path)
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def sniff_object_decision_log(path) -> bool:
    """True when ``path`` starts with this module's JSONL header."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
        return json.loads(first).get("format") == FORMAT_NAME
    except (OSError, UnicodeDecodeError, ValueError):
        return False


def read_object_decision_log(path, salvage: bool = False) -> list:
    """Parse the log back into cell dicts (events re-nested).

    A torn or bit-rotted line raises a *located*
    :class:`~repro.store.errors.ArtifactCorruptionError` — unless
    ``salvage=True``, which returns the complete leading cells, drops the
    damaged tail, and counts the loss in ``telemetry.salvaged``.
    """
    from repro.store.errors import ArtifactCorruptionError

    path = Path(path)
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty object decision log")
    header = json.loads(lines[0])
    if header.get("format") != FORMAT_NAME:
        raise ValueError("not a repro object decision log (bad header line)")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"object decision-log version {header.get('version')!r} "
            f"unsupported (expected {FORMAT_VERSION})"
        )
    cells = []
    current = None
    declared_events = None  #: event count the current cell header promised
    salvaged_tail = False
    for number, line in enumerate(lines[1:], start=2):
        try:
            entry = json.loads(line)
            if not isinstance(entry, dict):
                raise ValueError("line is not a JSON object")
        except ValueError as error:
            if salvage:
                # Drop the current cell only when interrupted (declared
                # events unmet); a complete final cell is kept.
                if current is not None and (
                    declared_events is None
                    or len(current["events"]) < declared_events
                ):
                    cells.pop()
                from repro.telemetry import get_registry

                get_registry().counter("telemetry.salvaged").inc(
                    len(lines) - number + 1
                )
                salvaged_tail = True
                break
            raise ArtifactCorruptionError(
                f"object decision log is damaged: line {number} does not "
                f"parse ({error})",
                reason="truncated" if number == len(lines) else "bad_payload",
                path=path,
                frame=number,
            ) from error
        if entry.get("type") == "cell":
            current = dict(entry)
            current.pop("type")
            declared_events = (
                current["events"]
                if isinstance(current.get("events"), int) else None
            )
            current["events"] = []
            cells.append(current)
        else:
            if current is None:
                raise ValueError(
                    "object decision log has events before any cell header"
                )
            current["events"].append(entry)
    declared = header.get("cells")
    if declared is not None and declared != len(cells) and not salvaged_tail:
        raise ValueError(
            f"object decision log declares {declared} cells, found "
            f"{len(cells)}"
        )
    return cells


def validate_object_decision_log(path) -> list:
    """One-line-per-problem validation (for ``repro validate``)."""
    from repro.store.errors import ArtifactCorruptionError

    problems = []
    try:
        cells = read_object_decision_log(path)
    except (OSError, ValueError, ArtifactCorruptionError) as error:
        return [str(error)]
    for position, cell in enumerate(cells):
        locator = (
            f"cell {position} ({cell.get('workload')}/{cell.get('policy')})"
        )
        summary = cell.get("summary")
        if not isinstance(summary, dict):
            problems.append(f"{locator}: missing summary")
            continue
        declared = cell.get("events")
        if isinstance(declared, int) and declared != len(
            cell.get("events", ())
        ):  # pragma: no cover - reader re-nests, kept for hand-edited logs
            problems.append(f"{locator}: event count mismatch")
        graded = (summary.get("optimal", 0) + summary.get("neutral", 0)
                  + summary.get("harmful", 0))
        if summary.get("graded", 0) != graded:
            problems.append(
                f"{locator}: graded != optimal + neutral + harmful"
            )
        if summary.get("regret_x2", 0) != (
            summary.get("neutral", 0) + 2 * summary.get("harmful", 0)
        ):
            problems.append(
                f"{locator}: regret_x2 != neutral + 2*harmful"
            )
        if summary.get("sampled", 0) > summary.get("evictions", 0):
            problems.append(f"{locator}: sampled exceeds evictions")
        for event in cell.get("events", ()):
            if event.get("grade", "") not in ("",) + GRADES:
                problems.append(
                    f"{locator}: event {event.get('index')} has unknown "
                    f"grade {event.get('grade')!r}"
                )
            if event.get("size", 1) <= 0:
                problems.append(
                    f"{locator}: event {event.get('index')} has "
                    "non-positive size"
                )
    return problems


def render_size_profile(cells) -> str:
    """Size-vs-victim profile table (one block per cell) for ``repro
    inspect``: which size buckets supply the victims, byte mass, and the
    graded regret concentrated there."""
    blocks = []
    for cell in cells:
        lines = [
            f"{cell.get('workload')} / {cell.get('policy')} — "
            f"size-vs-victim profile"
        ]
        summary = cell.get("summary", {})
        lines.append(
            "  evictions {evictions}  bytes {evicted_bytes}  graded "
            "{graded}  regret_x2 {regret_x2}".format(
                evictions=summary.get("evictions", 0),
                evicted_bytes=summary.get("evicted_bytes", 0),
                graded=summary.get("graded", 0),
                regret_x2=summary.get("regret_x2", 0),
            )
        )
        lines.append(
            "  bucket      size-range    evictions        bytes  "
            "optimal  neutral  harmful"
        )
        buckets = cell.get("size_buckets", {})
        for bucket in sorted(buckets, key=int):
            row = buckets[bucket]
            low = 1 << int(bucket)
            label = (f">={low}B" if int(bucket) >= MAX_SIZE_BUCKET
                     else f"{low}-{(low << 1) - 1}B")
            lines.append(
                f"  {bucket:>6}  {label:>14}  {row['evictions']:>9}  "
                f"{row['bytes']:>11}  {row['optimal']:>7}  "
                f"{row['neutral']:>7}  {row['harmful']:>7}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
