"""Process-parallel (workload x policy) sweep engine, crash-safe.

The serial runner already splits every simulation into a policy-independent
pass 1 (:func:`~repro.eval.runner.prepare_workload`) and a cheap per-policy
pass 2 (:func:`~repro.eval.runner.replay`).  Both passes are embarrassingly
parallel across their work items, so :func:`parallel_sweep` fans them out
over a :class:`~repro.runs.executor.ProcessTaskPool`:

* pass 1 runs once per workload (misses only — prepared workloads are
  served from the in-memory cache and, when a cache directory is given,
  from the on-disk :class:`~repro.eval.prep_cache.PrepCache`);
* pass 2 runs once per (workload, policy) cell, submitted as soon as that
  workload's pass 1 finishes (no barrier between the passes).

Determinism: every cell is a pure function of its inputs, and results are
merged sorted by ``(workload, policy)``, so ``jobs=1`` and ``jobs=N``
produce byte-identical reports (:meth:`SweepReport.to_csv` /
:meth:`SweepReport.format` — the differential test asserts this).

Fault tolerance (the ``repro.runs`` reliability contract):

* a policy that raises during replay is captured as a per-cell failure
  (:attr:`CellResult.error` holds the traceback) instead of killing the
  sweep; pass-1 failures fail every cell of that workload;
* with ``timeout`` set, a hung worker is killed by the pool's watchdog and
  the cell is retried (up to ``retries`` times, exponential backoff with
  jitter) or reported failed — it can never stall the pool;
* a worker that dies without reporting (SIGKILL, segfault) is likewise a
  retryable transient failure, isolated to its cell;
* with ``journal`` set, every completed cell is durably appended to a
  :class:`~repro.runs.journal.RunJournal`; a resumed sweep skips journaled
  cells (and pass 1 for fully finished workloads) and renders a report
  byte-identical to an uninterrupted run;
* while journaling, SIGINT/SIGTERM raise
  :class:`~repro.runs.supervisor.SweepInterrupted` *after* workers are
  reaped — the journal is always flushed, never torn.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro import telemetry
from repro.cache.config import CoreConfig
from repro.cache.replacement.belady import BeladyPolicy
from repro.cpu.system import SystemResult
from repro.eval.prep_cache import PrepCache, workload_cache_key
from repro.eval.runner import (
    PreparedWorkload,
    _memory_cache,
    _memory_key,
    prepare_workload,
    replay,
)
from repro.eval.workloads import EvalConfig
from repro.runs.executor import ProcessTaskPool
from repro.runs.supervisor import SweepInterrupted
from repro.testing.faults import maybe_fault
from repro.traces.record import Trace

#: Policy name handled specially: the recorded stream is its future input.
BELADY = "belady"


@dataclass
class CellResult:
    """Outcome of one (workload, policy) cell: a result or a failure."""

    workload: str
    policy: str
    result: Optional[SystemResult] = None
    error: Optional[str] = None
    #: Worker-measured replay wall time (telemetry only; never journaled,
    #: so cells adopted on --resume have ``seconds=None``).
    seconds: Optional[float] = None
    #: Contract violations recorded by the policy sanitizer (normal mode
    #: degraded the policy to LRU mid-cell; the numbers are still a valid
    #: simulation, just not of the policy named in the row).
    violations: tuple = ()
    #: Decision-trace payload (:meth:`DecisionTrace.cell_payload`) when the
    #: sweep ran with ``decisions=``; never journaled (cells adopted on
    #: --resume have ``decisions=None`` — the log cannot cover them).
    decisions: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def status(self) -> str:
        """``"ok"`` | ``"degraded"`` | ``"failed"`` (what to_csv prints)."""
        if self.error is not None:
            return "failed"
        return "degraded" if self.violations else "ok"


@dataclass
class SweepReport:
    """Deterministically merged sweep outcome.

    ``cells`` is sorted by ``(workload, policy)`` regardless of completion
    order, so two runs over the same inputs — serial or parallel, cold or
    warm cache, interrupted-and-resumed or uninterrupted — render
    identically.
    """

    cells: list  #: CellResult, sorted by (workload, policy)
    workloads: list  #: workload names in sweep order
    policies: list  #: policy names in sweep order
    jobs: int = 1
    cached_workloads: tuple = ()  #: workloads served from the prep cache
    resumed: tuple = ()  #: (workload, policy) cells served from the journal
    pool_stats: dict = field(default_factory=dict)  #: watchdog/retry counters
    prep_cache_stats: dict = field(default_factory=dict)  #: hits/misses/corrupt
    #: Per-workload pass-1 hierarchy counters (telemetry; resumed workloads
    #: whose pass 1 was skipped entirely are absent).
    hierarchy_stats: dict = field(default_factory=dict)
    prepare_seconds: dict = field(default_factory=dict)  #: workload -> seconds
    wall_seconds: float = 0.0  #: parent-measured sweep wall time

    def cell(self, workload: str, policy: str) -> CellResult:
        for cell in self.cells:
            if cell.workload == workload and cell.policy == policy:
                return cell
        raise KeyError((workload, policy))

    def table(self) -> dict:
        """``{workload: {policy: SystemResult}}`` over successful cells."""
        table = {}
        for cell in self.cells:
            if cell.ok:
                table.setdefault(cell.workload, {})[cell.policy] = cell.result
        return table

    def failures(self) -> list:
        """Cells whose policy raised (pass-1 or pass-2 failures)."""
        return [cell for cell in self.cells if not cell.ok]

    def decision_payloads(self) -> list:
        """Per-cell decision-trace payloads, in deterministic cell order.

        Empty unless the sweep ran with ``decisions=``; cells adopted from
        a journal on --resume carry no payload and are skipped.
        """
        return [
            cell.decisions
            for cell in self.cells
            if getattr(cell, "decisions", None)
        ]

    def _object_cells(self) -> bool:
        """True when the cells carry object-cache results (duck-typed on
        ``byte_hit_rate``, which CPU ``SystemResult`` objects lack)."""
        for cell in self.cells:
            if cell.ok:
                return hasattr(cell.result, "byte_hit_rate")
        return False

    def to_csv(self) -> str:
        """Full-precision deterministic serialization (byte-comparable)."""
        if self._object_cells():
            return self._object_to_csv()
        lines = ["workload,policy,status,ipc,llc_hit_rate,demand_hit_rate,demand_mpki"]
        for cell in self.cells:
            if cell.ok:
                result = cell.result
                lines.append(
                    f"{cell.workload},{cell.policy},{cell.status},"
                    f"{result.single_ipc!r},{result.llc_hit_rate!r},"
                    f"{result.llc_demand_hit_rate!r},{result.demand_mpki!r}"
                )
            else:
                first = cell.error.strip().splitlines()[-1] if cell.error else ""
                lines.append(
                    f"{cell.workload},{cell.policy},failed,"
                    f"{first.replace(',', ';')},,,"
                )
        return "\n".join(lines) + "\n"

    def _object_to_csv(self) -> str:
        lines = ["workload,policy,status,byte_hit_rate,object_hit_rate,"
                 "evictions,evicted_bytes"]
        for cell in self.cells:
            if cell.ok:
                result = cell.result
                lines.append(
                    f"{cell.workload},{cell.policy},{cell.status},"
                    f"{result.byte_hit_rate!r},{result.object_hit_rate!r},"
                    f"{result.evictions},{result.evicted_bytes}"
                )
            else:
                first = cell.error.strip().splitlines()[-1] if cell.error else ""
                lines.append(
                    f"{cell.workload},{cell.policy},failed,"
                    f"{first.replace(',', ';')},,,"
                )
        return "\n".join(lines) + "\n"

    def format(self) -> str:
        """Human-readable per-cell table (also deterministic)."""
        from repro.eval.reporting import format_table

        object_cells = self._object_cells()
        rows = []
        for cell in self.cells:
            if cell.ok:
                status = "ok"
                if cell.violations:
                    status = f"DEGRADED: {cell.violations[0].replace(',', ';')}"
                if object_cells:
                    rows.append({
                        "workload": cell.workload,
                        "policy": cell.policy,
                        "byte-hit%": round(100 * cell.result.byte_hit_rate, 2),
                        "obj-hit%": round(100 * cell.result.object_hit_rate, 2),
                        "evictions": cell.result.evictions,
                        "status": status,
                    })
                else:
                    rows.append({
                        "workload": cell.workload,
                        "policy": cell.policy,
                        "ipc": round(cell.result.single_ipc, 4),
                        "hit%": round(100 * cell.result.llc_hit_rate, 2),
                        "mpki": round(cell.result.demand_mpki, 2),
                        "status": status,
                    })
            else:
                last = cell.error.strip().splitlines()[-1] if cell.error else "?"
                row = {"workload": cell.workload, "policy": cell.policy,
                       "status": f"FAILED: {last}"}
                if object_cells:
                    row.update({"byte-hit%": "-", "obj-hit%": "-",
                                "evictions": "-"})
                else:
                    row.update({"ipc": "-", "hit%": "-", "mpki": "-"})
                rows.append(row)
        if object_cells:
            headers = ["workload", "policy", "byte-hit%", "obj-hit%",
                       "evictions", "status"]
        else:
            headers = ["workload", "policy", "ipc", "hit%", "mpki", "status"]
        return format_table(
            rows,
            headers=headers,
            title=f"sweep: {len(self.workloads)} workloads x "
                  f"{len(self.policies)} policies",
        )


# -- journal codec -------------------------------------------------------------
#
# JSON round-trips Python floats exactly (repr-based shortest encoding), so a
# cell reloaded from the journal renders byte-identically in to_csv()/format().


def journal_cell_entry(cell: CellResult, tag=None) -> dict:
    """The journal entry recording one successfully completed cell.

    Works for both result kinds: CPU cells carry a
    :class:`~repro.eval.runner.SystemResult`, object-cache cells an
    :class:`~repro.objcache.replay.ObjectCacheResult` (duck-typed on
    ``byte_hit_rate`` and tagged ``"result_kind": "object"`` so the reader
    rebuilds the right dataclass).  ``tag`` distinguishes otherwise
    identical grids sharing one journal (e.g. the per-seed passes of a
    multi-seed object scenario).
    """
    entry = {
        "type": "cell",
        "workload": cell.workload,
        "policy": cell.policy,
        "result": asdict(cell.result),
    }
    # Only when present, so journals without degraded cells stay
    # byte-identical to those written before the sanitizer existed (and
    # CPU-cell entries stay byte-identical to pre-object-journal ones).
    if hasattr(cell.result, "byte_hit_rate"):
        entry["result_kind"] = "object"
    if tag is not None:
        entry["tag"] = tag
    if cell.violations:
        entry["violations"] = list(cell.violations)
    return entry


def cell_from_journal_entry(entry: dict) -> Optional[CellResult]:
    """Rebuild a :class:`CellResult` from a journal entry (None if invalid)."""
    if entry.get("type") != "cell":
        return None
    payload = entry.get("result")
    if not isinstance(payload, dict):
        return None
    if entry.get("result_kind") == "object":
        from repro.objcache.replay import ObjectCacheResult

        try:
            result = ObjectCacheResult(**payload)
        except TypeError:
            return None  # incompatible layout: recompute the cell
    else:
        try:
            result = SystemResult(**payload)
        except TypeError:
            return None  # written by an incompatible version: recompute
    return CellResult(
        workload=str(entry.get("workload")),
        policy=str(entry.get("policy")),
        result=result,
        violations=tuple(
            str(item) for item in entry.get("violations", ())
        ),
    )


# -- work items ---------------------------------------------------------------


def _policy_name(policy) -> str:
    return policy if isinstance(policy, str) else policy.name


def _prepare_task(eval_config, trace, num_cores, l2_prefetcher, core_config):
    """Pass-1 work item (runs in a worker process)."""
    return prepare_workload(
        eval_config,
        trace,
        num_cores=num_cores,
        l2_prefetcher=l2_prefetcher,
        core_config=core_config,
    )


def _replay_task(
    prepared, workload, policy, allow_bypass, sanitize=None, decisions=None
) -> CellResult:
    """Pass-2 work item; never raises (fault isolation per cell).

    The policy is wrapped here (idempotently re-wrapped inside
    :func:`replay`) so the task can read recorded contract violations off
    the wrapper and mark the cell ``degraded``.  In strict mode a
    violation raises :class:`~repro.sanitize.errors.PolicyContractError`
    from inside the replay and lands in ``error`` like any other per-cell
    failure.

    ``decisions`` (an integer sample rate) attaches a graded
    :class:`~repro.telemetry.decisions.DecisionTrace` to the replay; its
    payload rides back on :attr:`CellResult.decisions`.  The events are a
    pure function of the deterministic replay, so the payload is identical
    whichever worker runs the cell.
    """
    from repro.eval.runner import _instantiate
    from repro.sanitize import CheckedPolicy, wrap_policy

    name = _policy_name(policy)
    started = time.perf_counter()
    try:
        maybe_fault("replay", workload=workload, policy=name)
        if name == BELADY:
            policy = BeladyPolicy(
                prepared.llc_line_stream, allow_bypass=allow_bypass
            )
        policy = _instantiate(policy, prepared.num_cores)
        policy = wrap_policy(policy, mode=sanitize, allow_bypass=allow_bypass)
        trace = None
        if decisions:
            from repro.rl.reward import FutureOracle
            from repro.telemetry.decisions import DecisionTrace

            trace = DecisionTrace(
                workload=workload,
                policy=name,
                sample_rate=decisions,
                oracle=FutureOracle(prepared.llc_line_stream),
            )
        result = replay(
            prepared, policy, allow_bypass=allow_bypass, sanitize=sanitize,
            decisions=trace,
        )
        violations = ()
        if isinstance(policy, CheckedPolicy):
            violations = tuple(policy.violations)
        return CellResult(
            workload, name, result=result,
            seconds=time.perf_counter() - started,
            violations=violations,
            decisions=trace.cell_payload() if trace is not None else None,
        )
    except Exception:
        return CellResult(
            workload, name, error=traceback.format_exc(),
            seconds=time.perf_counter() - started,
        )


def _worker_config(eval_config: EvalConfig) -> EvalConfig:
    """A pickling-light copy of the config (traces travel separately)."""
    return replace(eval_config, _trace_cache={})


@contextmanager
def _interrupt_guard(enabled: bool):
    """Convert SIGINT/SIGTERM into :class:`SweepInterrupted` while active.

    Only installed from the main thread (signal handlers cannot be set
    elsewhere); the previous handlers are always restored.
    """
    if not enabled or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise_interrupted(signum, frame):
        raise SweepInterrupted(f"received signal {signum}")

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _raise_interrupted)
        except (ValueError, OSError):
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass


def parallel_sweep(
    eval_config: EvalConfig,
    workloads,
    policies,
    *,
    jobs: int = 1,
    include_belady: bool = False,
    num_cores: int = 1,
    l2_prefetcher: Optional[str] = None,
    core_config: Optional[CoreConfig] = None,
    cache_dir=None,
    use_cache: bool = True,
    allow_bypass: bool = False,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.25,
    journal=None,
    sanitize: Optional[str] = None,
    decisions: Optional[int] = None,
) -> SweepReport:
    """Run a (workload x policy) sweep, parallel over ``jobs`` processes.

    ``workloads`` are workload-model names (resolved via
    ``eval_config.trace``) or pre-built :class:`Trace` objects (e.g.
    multicore mixes).  ``policies`` are registry names or picklable policy
    instances; ``include_belady`` appends the offline-optimal policy.
    ``cache_dir`` (with ``use_cache=True``) enables the on-disk prepared-
    workload cache; an existing ``eval_config.prep_cache`` attachment is
    honoured when ``cache_dir`` is not given.  ``progress`` is an optional
    ``callable(str)`` for status lines.

    Reliability knobs: ``timeout`` is a per-cell wall-clock watchdog in
    seconds, ``retries``/``retry_backoff`` bound the retry-with-backoff
    schedule for transient worker failures, and ``journal`` (a
    :class:`~repro.runs.journal.RunJournal`) makes the sweep resumable —
    already-journaled cells are skipped and completed cells are appended
    durably.  Setting ``timeout`` or ``retries`` routes even ``jobs=1``
    sweeps through worker processes (a watchdog needs something to kill).

    ``sanitize`` selects the policy-contract sanitizer mode per cell
    ("off"/"normal"/"strict"; None = environment/default — see
    :mod:`repro.sanitize`).  In normal mode a misbehaving policy degrades
    to LRU and its cells are reported ``degraded``; in strict mode they
    fail with a typed error.

    ``decisions`` (an integer sample rate, 1 = every eviction) turns on
    per-eviction decision tracing with online Belady grading for every
    cell; the payloads ride on :attr:`CellResult.decisions` (see
    :meth:`SweepReport.decision_payloads` and
    :mod:`repro.telemetry.decisions`).  ``None`` leaves the replay path
    structurally unchanged.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if decisions is not None and decisions < 1:
        raise ValueError("decisions sample rate must be >= 1")
    from repro.sanitize import resolve_mode

    # Resolve once in the parent: typos fail the sweep up front, and worker
    # processes see one explicit mode instead of racing the environment.
    sanitize = resolve_mode(sanitize)
    sweep_started = time.perf_counter()
    policies = list(policies)
    if include_belady and BELADY not in [_policy_name(p) for p in policies]:
        policies.append(BELADY)
    policy_names = [_policy_name(p) for p in policies]

    disk = None
    if use_cache:
        if cache_dir is not None:
            disk = PrepCache(cache_dir)
        else:
            disk = getattr(eval_config, "prep_cache", None)

    traces = [
        workload if isinstance(workload, Trace) else eval_config.trace(workload)
        for workload in workloads
    ]
    workload_names = [trace.name for trace in traces]
    notify = progress or (lambda message: None)

    # Resume: cells already journaled are adopted verbatim, not re-run.
    done_cells = []
    done_keys = set()
    if journal is not None:
        journal.reload()
        grid = {
            (name, policy) for name in workload_names for policy in policy_names
        }
        for entry in journal.entries():
            cell = cell_from_journal_entry(entry)
            if cell is None:
                continue
            key = (cell.workload, cell.policy)
            if key in grid and key not in done_keys:
                done_keys.add(key)
                done_cells.append(cell)
        if done_cells:
            notify(f"resume: {len(done_cells)} cells served from the journal")

    #: policies still owed per workload; fully journaled workloads skip pass 1.
    wanted = {
        name: [
            policy
            for policy in policies
            if (name, _policy_name(policy)) not in done_keys
        ]
        for name in workload_names
    }
    active = [trace for trace in traces if wanted[trace.name]]

    # Telemetry accumulators (parent side; deterministic pieces only ride
    # on the report — see repro.telemetry.instruments.sweep_snapshot).
    hier_stats = {}  # workload -> per-level summary from pass 1
    prep_seconds = {}  # workload -> worker/parent-measured pass-1 seconds

    def note_prepared(name: str, prepared) -> None:
        stats = getattr(prepared, "hierarchy_stats", {})
        if stats:
            hier_stats[name] = stats
        seconds = getattr(prepared, "prepare_seconds", 0.0)
        if seconds:
            prep_seconds[name] = seconds

    # Resolve pass 1 from the in-memory and on-disk caches (parent side).
    memory = _memory_cache(eval_config)
    prepared_map = {}  # workload name -> PreparedWorkload
    cached = []
    pending = []  # (trace, disk_key)
    for trace in active:
        memory_key = _memory_key(trace, num_cores, l2_prefetcher)
        disk_key = None
        if core_config is None and memory_key in memory:
            prepared_map[trace.name] = memory[memory_key]
            note_prepared(trace.name, memory[memory_key])
            cached.append(trace.name)
            continue
        if disk is not None:
            disk_key = workload_cache_key(
                eval_config,
                trace,
                num_cores=num_cores,
                l2_prefetcher=l2_prefetcher,
                core_config=core_config,
            )
            hit = disk.load(disk_key)
            if hit is not None:
                prepared_map[trace.name] = hit
                note_prepared(trace.name, hit)
                if core_config is None:
                    memory[memory_key] = hit
                cached.append(trace.name)
                notify(f"prepared {trace.name} (cache hit)")
                continue
        pending.append((trace, disk_key))

    def adopt(trace, disk_key, prepared) -> None:
        prepared_map[trace.name] = prepared
        note_prepared(trace.name, prepared)
        telemetry.emit_span(
            "cell.prepare",
            getattr(prepared, "prepare_seconds", 0.0),
            workload=trace.name,
        )
        if core_config is None:
            memory[_memory_key(trace, num_cores, l2_prefetcher)] = prepared
        if disk is not None and disk_key is not None:
            disk.store(disk_key, prepared)
        notify(f"prepared {trace.name}")

    results = []

    def complete(cell: CellResult) -> None:
        results.append(cell)
        if cell.seconds is not None:
            telemetry.emit_span(
                "cell.replay",
                cell.seconds,
                workload=cell.workload,
                policy=cell.policy,
                ok=cell.ok,
            )
        if journal is not None and cell.ok:
            journal.append(journal_cell_entry(cell))

    # A watchdog needs a process to kill; retries need a process to restart.
    pooled = jobs > 1 or timeout is not None or retries > 0
    pool_stats = {}
    try:
        with _interrupt_guard(enabled=journal is not None):
            if not pooled:
                for trace, disk_key in pending:
                    try:
                        prepared = prepare_workload(
                            eval_config,
                            trace,
                            num_cores=num_cores,
                            l2_prefetcher=l2_prefetcher,
                            core_config=core_config,
                        )
                    except Exception:
                        error = traceback.format_exc()
                        for policy in wanted[trace.name]:
                            complete(
                                CellResult(
                                    trace.name, _policy_name(policy), error=error
                                )
                            )
                        notify(f"prepare FAILED for {trace.name}")
                        continue
                    adopt(trace, disk_key, prepared)
                for name in workload_names:
                    needed = wanted[name]
                    prepared = prepared_map.get(name)
                    if not needed or prepared is None:
                        continue
                    for policy in needed:
                        complete(
                            _replay_task(
                                prepared, name, policy, allow_bypass,
                                sanitize, decisions,
                            )
                        )
                    notify(f"finished {name}")
            else:
                worker_config = _worker_config(eval_config)
                with ProcessTaskPool(
                    max_workers=jobs,
                    timeout=timeout,
                    retries=retries,
                    backoff=retry_backoff,
                ) as pool:

                    def submit_replays(name: str, prepared: PreparedWorkload):
                        for policy in wanted[name]:
                            pool.submit(
                                _replay_task,
                                prepared,
                                name,
                                policy,
                                allow_bypass,
                                sanitize,
                                decisions,
                                tag=("replay", name, _policy_name(policy)),
                            )

                    prep_info = {
                        trace.name: (trace, disk_key)
                        for trace, disk_key in pending
                    }
                    for trace, _disk_key in pending:
                        pool.submit(
                            _prepare_task,
                            worker_config,
                            trace,
                            num_cores,
                            l2_prefetcher,
                            core_config,
                            tag=("prepare", trace.name),
                        )
                    for name, prepared in list(prepared_map.items()):
                        submit_replays(name, prepared)

                    for outcome in pool.completed():
                        if outcome.tag[0] == "prepare":
                            trace, disk_key = prep_info[outcome.tag[1]]
                            if not outcome.ok:
                                for policy in wanted[trace.name]:
                                    complete(
                                        CellResult(
                                            trace.name,
                                            _policy_name(policy),
                                            error=outcome.error,
                                        )
                                    )
                                notify(f"prepare FAILED for {trace.name}")
                                continue
                            adopt(trace, disk_key, outcome.value)
                            submit_replays(trace.name, outcome.value)
                        else:
                            _, name, pname = outcome.tag
                            if outcome.ok:
                                complete(outcome.value)
                            else:
                                # Crash/timeout after all retries: a per-cell
                                # failure, not a sweep failure.
                                complete(
                                    CellResult(name, pname, error=outcome.error)
                                )
                    pool_stats = pool.stats.as_dict()
    except (KeyboardInterrupt, SweepInterrupted):
        if journal is None:
            raise
        # Workers are already reaped (pool context exit) and every completed
        # cell was journaled as it finished — safe to resume.
        raise SweepInterrupted(
            "sweep interrupted — completed cells are journaled; resume "
            "with --resume",
            completed=len(done_cells) + len(results),
        ) from None

    results.extend(done_cells)
    results.sort(key=lambda cell: (cell.workload, cell.policy))
    return SweepReport(
        cells=results,
        workloads=workload_names,
        policies=policy_names,
        jobs=jobs,
        cached_workloads=tuple(cached),
        resumed=tuple(sorted(done_keys)),
        pool_stats=pool_stats,
        prep_cache_stats=disk.stats() if disk is not None else {},
        hierarchy_stats={
            name: hier_stats[name] for name in sorted(hier_stats)
        },
        prepare_seconds=dict(prep_seconds),
        wall_seconds=time.perf_counter() - sweep_started,
    )
