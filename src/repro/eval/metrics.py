"""Performance metrics (paper §V-A).

Single-core: IPC speedup over LRU per benchmark, geometric mean across the
suite.  Multicore: per-mix geometric mean of the four cores' IPC speedups,
then geometric mean across mixes.
"""

from __future__ import annotations

import math


def geomean(values) -> float:
    """Geometric mean of positive values (1.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 1.0
    if any(value <= 0 for value in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def ipc_speedup(ipc: float, baseline_ipc: float) -> float:
    """IPC_i / IPC_LRU — the paper's per-benchmark metric."""
    if baseline_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return ipc / baseline_ipc


def speedup_percent(ipc: float, baseline_ipc: float) -> float:
    """Speedup as the percentage the paper's figures plot."""
    return (ipc_speedup(ipc, baseline_ipc) - 1.0) * 100.0


def mix_speedup(ipcs, baseline_ipcs) -> float:
    """Multicore workload-mix speedup: (prod_i IPC_i/IPC_LRU_i)^(1/n)."""
    if len(ipcs) != len(baseline_ipcs):
        raise ValueError("per-core IPC lists must have equal length")
    return geomean(
        ipc_speedup(ipc, base) for ipc, base in zip(ipcs, baseline_ipcs)
    )


def overall_speedup_percent(per_workload_speedups) -> float:
    """Suite-level number reported in Table IV: geomean speedup, as %."""
    return (geomean(per_workload_speedups) - 1.0) * 100.0
