"""Windowed time-series instrumentation (phase analysis).

The paper's §III-C argues a key virtue of the learned policy is *dynamic
adaptation* — RLR inherits it through the periodically refreshed RD
estimate.  This module records windowed LLC hit-rate series for any policy
and the RD-estimate trajectory for RLR, so phase transitions and the
policy's reaction to them can be observed directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.runner import _prepared, replay


@dataclass
class Timeline:
    """Windowed series for one (workload, policy) replay."""

    window: int
    hit_rates: list = field(default_factory=list)
    demand_hit_rates: list = field(default_factory=list)
    rd_values: list = field(default_factory=list)  #: empty unless RLR-like

    @property
    def windows(self) -> int:
        return len(self.hit_rates)

    def phase_shift_magnitude(self) -> float:
        """Largest window-to-window change in hit rate (phase indicator)."""
        if len(self.hit_rates) < 2:
            return 0.0
        return max(
            abs(b - a) for a, b in zip(self.hit_rates, self.hit_rates[1:])
        )


class TimelineCollector:
    """Access observer accumulating windowed statistics."""

    def __init__(self, window: int, policy=None) -> None:
        self.timeline = Timeline(window=window)
        self._policy = policy
        self._window = window
        self._hits = 0
        self._demand_hits = 0
        self._demand_total = 0
        self._count = 0

    def __call__(self, access, hit: bool) -> None:
        self._count += 1
        self._hits += hit
        if access.access_type.is_demand:
            self._demand_total += 1
            self._demand_hits += hit
        if self._count == self._window:
            self._flush()

    def _flush(self) -> None:
        timeline = self.timeline
        timeline.hit_rates.append(self._hits / self._window)
        timeline.demand_hit_rates.append(
            self._demand_hits / self._demand_total if self._demand_total else 0.0
        )
        estimator = getattr(self._policy, "estimator", None)
        if estimator is not None:
            timeline.rd_values.append(estimator.rd)
        self._hits = 0
        self._demand_hits = 0
        self._demand_total = 0
        self._count = 0


def policy_timeline(
    eval_config, workload_name: str, policy, window: int = 2000
) -> Timeline:
    """Replay a workload and return the windowed hit-rate (and RD) series."""
    trace = eval_config.trace(workload_name)
    prepared = _prepared(eval_config, trace, 1, None)
    from repro.eval.runner import _instantiate

    policy_instance = _instantiate(policy, 1)
    collector = TimelineCollector(window, policy=policy_instance)
    # Attach via the replay cache's access observers.
    from repro.cache.cache import Cache

    policy_instance.bind(prepared.llc_config)
    cache = Cache(
        prepared.llc_config,
        policy_instance,
        detailed=getattr(policy_instance, "needs_line_metadata", True),
    )
    cache.add_access_observer(collector)
    for record in prepared.llc_records:
        cache.access(record)
    return collector.timeline


def render_sparkline(values, width: int = 60) -> str:
    """Compact unicode sparkline for a numeric series."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))] for value in values
    )
