"""Evaluation configuration and workload construction.

The default evaluation scale divides Table III's cache sizes by 16 (LLC:
2MB -> 128KB, still 16-way) and scales every workload's working set by the
same factor via :mod:`repro.traces.spec_models` (working sets are expressed
as fractions of LLC capacity).  Trace lengths default to 100k references —
enough for the policies' adaptive state to converge at this scale while
keeping a full-suite sweep tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import HierarchyConfig
from repro.traces.mix import interleave, random_mixes
from repro.traces.record import Trace
from repro.traces.spec_models import (
    ALL_WORKLOADS,
    CLOUDSUITE,
    SPEC2006,
    build_trace,
    get_workload,
)


@dataclass
class EvalConfig:
    """Knobs shared by every experiment."""

    scale: int = 16  #: divide Table III cache sizes by this
    trace_length: int = 100_000
    seed: int = 7
    warmup_fraction: float = 0.2
    num_cores: int = 1
    llc_ways: int = 16  #: LLC associativity (16 = Table III)
    _trace_cache: dict = field(default_factory=dict, repr=False)

    def hierarchy(self, num_cores: int = None) -> HierarchyConfig:
        """The hierarchy configuration at this evaluation scale."""
        cores = num_cores or self.num_cores
        if self.scale == 1 and self.llc_ways == 16:
            return HierarchyConfig.paper(num_cores=cores)
        return HierarchyConfig.scaled(
            num_cores=cores, factor=self.scale, llc_ways=self.llc_ways
        )

    @property
    def llc_lines(self) -> int:
        """LLC capacity in lines at this scale (single-core)."""
        return self.hierarchy(num_cores=1).llc.num_lines

    def trace(self, workload_name: str, core: int = 0) -> Trace:
        """Build (and cache) the trace for one workload model."""
        key = (workload_name, core)
        if key not in self._trace_cache:
            spec = get_workload(workload_name)
            self._trace_cache[key] = build_trace(
                spec,
                llc_lines=self.llc_lines,
                length=self.trace_length,
                seed=self.seed,
                core=core,
            )
        return self._trace_cache[key]

    def mix_trace(self, names) -> Trace:
        """Build a 4-core (or N-core) interleaved mix trace."""
        traces = [self.trace(name, core=core) for core, name in enumerate(names)]
        return interleave(traces)


def suite_names(suite: str) -> list:
    """Benchmark names of a suite ("spec2006" or "cloudsuite")."""
    if suite == "spec2006":
        return [spec.name for spec in SPEC2006]
    if suite == "cloudsuite":
        return [spec.name for spec in CLOUDSUITE]
    raise ValueError(f"unknown suite {suite!r}")


def high_mpki_names(suite: str = "spec2006") -> list:
    """Benchmarks the paper focuses on (significant LRU-vs-Belady gap)."""
    return [
        name
        for name in suite_names(suite)
        if ALL_WORKLOADS[name].mpki_class == "high"
    ]


#: The eight SPEC benchmarks used for RL agent training / analysis (§III-B,
#: Figure 7): applications with a significant Belady-vs-LRU hit-rate gap.
RL_TRAINING_BENCHMARKS = [
    "459.GemsFDTD",
    "403.gcc",
    "429.mcf",
    "450.soplex",
    "470.lbm",
    "437.leslie3d",
    "471.omnetpp",
    "483.xalancbmk",
]


def spec_mixes(eval_config: EvalConfig, num_mixes: int) -> list:
    """Random 4-benchmark SPEC mixes (paper: 100 mixes of the 29 apps)."""
    return random_mixes(
        suite_names("spec2006"), num_mixes, mix_size=4, seed=eval_config.seed
    )
