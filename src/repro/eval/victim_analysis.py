"""Victim-profile analysis for any replacement policy.

Generalizes the paper's Figures 5-7 instrumentation (victim age per access
type, hits-since-insertion histogram, recency histogram) from the RL agent
to arbitrary policies, so a derived policy's eviction behaviour can be
compared directly against the agent it was distilled from — the validation
step behind §IV's design.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.eval.runner import _prepared, replay
from repro.traces.record import AccessType


@dataclass
class VictimStatistics:
    """Aggregated victim features for one (workload, policy) run."""

    victims: int = 0
    avg_age_by_type: dict = field(default_factory=dict)
    hits_histogram: dict = field(default_factory=dict)
    recency_histogram: dict = field(default_factory=dict)

    @property
    def zero_hit_fraction(self) -> float:
        return self.hits_histogram.get("0", 0.0)

    def upper_half_recency_fraction(self, ways: int) -> float:
        """Share of victims from the upper (more recent) recency half."""
        return sum(
            value for recency, value in self.recency_histogram.items()
            if recency >= ways // 2
        )


class VictimCollector:
    """Eviction observer accumulating the Figures 5-7 statistics."""

    def __init__(self) -> None:
        self._ages_by_type = defaultdict(list)
        self._hits = {"0": 0, "1": 0, ">1": 0}
        self._recency = defaultdict(int)

    def __call__(self, set_index, line, access) -> None:
        self._ages_by_type[line.last_access_type].append(
            line.age_since_last_access
        )
        if line.hits_since_insertion == 0:
            self._hits["0"] += 1
        elif line.hits_since_insertion == 1:
            self._hits["1"] += 1
        else:
            self._hits[">1"] += 1
        self._recency[line.recency] += 1

    def statistics(self) -> VictimStatistics:
        victims = sum(self._hits.values())
        scale = victims or 1
        return VictimStatistics(
            victims=victims,
            avg_age_by_type={
                access_type.short_name: sum(ages) / len(ages)
                for access_type, ages in self._ages_by_type.items()
                if ages
            },
            hits_histogram={k: v / scale for k, v in self._hits.items()},
            recency_histogram={
                recency: count / scale
                for recency, count in sorted(self._recency.items())
            },
        )


def policy_victim_statistics(
    eval_config, workload_name: str, policy
) -> VictimStatistics:
    """Replay one workload under ``policy``, collecting victim statistics."""
    trace = eval_config.trace(workload_name)
    prepared = _prepared(eval_config, trace, 1, None)
    collector = VictimCollector()
    replay(prepared, policy, detailed=True, observers=[collector])
    return collector.statistics()


def compare_victim_profiles(eval_config, workload_name: str, policies) -> dict:
    """Victim statistics for several policies on one workload.

    Accepts policy names or instances; returns {label: VictimStatistics}.
    """
    profiles = {}
    for policy in policies:
        label = policy if isinstance(policy, str) else policy.name
        profiles[label] = policy_victim_statistics(
            eval_config, workload_name, policy
        )
    return profiles
