"""Victim-profile analysis for any replacement policy.

Generalizes the paper's Figures 5-7 instrumentation (victim age per access
type, hits-since-insertion histogram, recency histogram) from the RL agent
to arbitrary policies, so a derived policy's eviction behaviour can be
compared directly against the agent it was distilled from — the validation
step behind §IV's design.

The statistics are computed from the shared per-eviction decision stream
(:mod:`repro.eval.decision_stream` / :mod:`repro.telemetry.decisions`), so
a live replay and a ``decisions.jsonl`` log replayed through ``repro
inspect`` produce bit-identical profiles.  :class:`VictimCollector`, the
original eviction-observer implementation, is kept as an independent
cross-check (the equivalence test drives both over the same replay).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.eval.decision_stream import trace_decisions
from repro.traces.record import AccessType

#: Hits-since-insertion buckets of Figure 6, in render order.
HITS_BUCKETS = ("0", "1", ">1")


def _hits_bucket(hits: int) -> str:
    return "0" if hits == 0 else ("1" if hits == 1 else ">1")


@dataclass
class VictimStatistics:
    """Aggregated victim features for one (workload, policy) run.

    Key-type contract (normalized by :meth:`from_dict` so profiles survive
    a JSON round-trip, where every key becomes a string):

    * ``avg_age_by_type`` — keyed by access-type *short name* (``"LD"``);
    * ``hits_histogram`` — keyed by the *string* buckets ``"0"/"1"/">1"``;
    * ``recency_histogram`` — keyed by *integer* recency positions.
    """

    victims: int = 0
    avg_age_by_type: dict = field(default_factory=dict)
    hits_histogram: dict = field(default_factory=dict)
    recency_histogram: dict = field(default_factory=dict)

    @property
    def zero_hit_fraction(self) -> float:
        return self.hits_histogram.get("0", 0.0)

    def upper_half_recency_fraction(self, ways: int) -> float:
        """Share of victims from the upper (more recent) recency half.

        Keys are compared as integers even if the histogram arrived with
        string keys (a raw ``json.load`` of a profile), so the fraction is
        stable across serialization boundaries.
        """
        return sum(
            value for recency, value in self.recency_histogram.items()
            if int(recency) >= ways // 2
        )

    def as_dict(self) -> dict:
        """JSON-safe encoding (recency keys become strings)."""
        return {
            "victims": self.victims,
            "avg_age_by_type": dict(self.avg_age_by_type),
            "hits_histogram": dict(self.hits_histogram),
            "recency_histogram": {
                str(recency): value
                for recency, value in self.recency_histogram.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VictimStatistics":
        """Inverse of :meth:`as_dict`, normalizing JSON-mangled key types."""
        return cls(
            victims=int(payload.get("victims", 0)),
            avg_age_by_type={
                str(key): float(value)
                for key, value in payload.get("avg_age_by_type", {}).items()
            },
            hits_histogram={
                str(key): float(value)
                for key, value in payload.get("hits_histogram", {}).items()
            },
            recency_histogram={
                int(key): float(value)
                for key, value in payload.get("recency_histogram", {}).items()
            },
        )

    @classmethod
    def from_events(cls, events) -> "VictimStatistics":
        """Figures 5-7 statistics from decision-stream events.

        ``events`` are :class:`~repro.telemetry.decisions.DecisionEvent`
        records (violation events are skipped).  The arithmetic mirrors
        :meth:`VictimCollector.statistics` operation for operation —
        integer sums divided in the same order — so a profile built from a
        decision log is bit-for-bit equal to one collected live.
        """
        from repro.telemetry.decisions import KIND_EVICT

        ages_by_type = defaultdict(list)
        hits = {key: 0 for key in HITS_BUCKETS}
        recency = defaultdict(int)
        for event in events:
            if event.kind != KIND_EVICT:
                continue
            ages_by_type[AccessType(event.victim_last_type)].append(
                event.victim_age_last
            )
            hits[_hits_bucket(event.victim_hits)] += 1
            recency[event.victim_recency] += 1
        victims = sum(hits.values())
        scale = victims or 1
        return cls(
            victims=victims,
            avg_age_by_type={
                access_type.short_name: sum(ages) / len(ages)
                for access_type, ages in ages_by_type.items()
                if ages
            },
            hits_histogram={k: v / scale for k, v in hits.items()},
            recency_histogram={
                position: count / scale
                for position, count in sorted(recency.items())
            },
        )


class VictimCollector:
    """Eviction observer accumulating the Figures 5-7 statistics.

    The pre-decision-stream implementation, retained as an independent
    cross-check of :meth:`VictimStatistics.from_events` (and for callers
    that instrument a cache directly).
    """

    def __init__(self) -> None:
        self._ages_by_type = defaultdict(list)
        self._hits = {key: 0 for key in HITS_BUCKETS}
        self._recency = defaultdict(int)

    def __call__(self, set_index, line, access) -> None:
        self._ages_by_type[line.last_access_type].append(
            line.age_since_last_access
        )
        self._hits[_hits_bucket(line.hits_since_insertion)] += 1
        self._recency[line.recency] += 1

    def statistics(self) -> VictimStatistics:
        victims = sum(self._hits.values())
        scale = victims or 1
        return VictimStatistics(
            victims=victims,
            avg_age_by_type={
                access_type.short_name: sum(ages) / len(ages)
                for access_type, ages in self._ages_by_type.items()
                if ages
            },
            hits_histogram={k: v / scale for k, v in self._hits.items()},
            recency_histogram={
                recency: count / scale
                for recency, count in sorted(self._recency.items())
            },
        )


def policy_victim_statistics(
    eval_config, workload_name: str, policy
) -> VictimStatistics:
    """Replay one workload under ``policy``, collecting victim statistics."""
    decisions = trace_decisions(eval_config, workload_name, policy)
    return VictimStatistics.from_events(decisions.events())


def compare_victim_profiles(eval_config, workload_name: str, policies) -> dict:
    """Victim statistics for several policies on one workload.

    Accepts policy names or instances; returns {label: VictimStatistics}.
    """
    profiles = {}
    for policy in policies:
        label = policy if isinstance(policy, str) else policy.name
        profiles[label] = policy_victim_statistics(
            eval_config, workload_name, policy
        )
    return profiles
