"""Sweep runner: (workload x policy) simulations, including Belady.

Because the LLC reference stream is independent of the LLC's own replacement
policy (upper levels never observe LLC state — the same property the paper
exploits to train RL on pre-recorded LLC traces), each workload is simulated
through the full hierarchy exactly once (:func:`prepare_workload`), recording

* the LLC access stream,
* the per-core compute + L1/L2-stall cycle baseline, and
* the warm-up boundary,

and every policy is then evaluated by replaying only the LLC
(:func:`replay`).  Replay results are bit-identical to a full-system run and
an order of magnitude faster.  :func:`run_workload` is the public
one-simulation entry point; :func:`run_belady` reuses the recorded stream as
OPT's future knowledge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.cache.cache import Cache
from repro.cache.config import CoreConfig
from repro.cache.hierarchy import L1, L2, LLC, MEMORY, CacheHierarchy
from repro.cache.replacement import make_policy
from repro.cache.replacement.belady import BeladyPolicy
from repro.cpu.core_model import TimingModel
from repro.cpu.system import SystemResult
from repro.eval.workloads import EvalConfig
from repro.sanitize import wrap_policy
from repro.telemetry import profiled, span
from repro.testing.faults import maybe_fault
from repro.traces.record import Trace


@dataclass
class PreparedWorkload:
    """Pass-1 artifact: everything policy-independent about one workload."""

    trace_name: str
    num_cores: int
    llc_config: object
    llc_records: list  #: the LLC access stream (TraceRecord objects)
    warmup_index: int  #: stream position where measurement starts
    base_cycles: list  #: per-core cycles excluding LLC-level demand stalls
    instructions: list  #: per-core instructions (post-warm-up)
    stall_llc: float
    stall_mem: float
    #: Per-level hierarchy counters from the recording pass (telemetry).
    hierarchy_stats: dict = field(default_factory=dict)
    #: Wall-clock seconds pass 1 took (telemetry; 0.0 for legacy artifacts).
    #: Excluded from equality — two identical simulations are equal however
    #: long the hardware took to run them.
    prepare_seconds: float = field(default=0.0, compare=False)

    @property
    def llc_line_stream(self) -> list:
        """Line addresses of the stream (Belady's future knowledge)."""
        return [record.line_address for record in self.llc_records]


def _core_config(core_config: Optional[CoreConfig]) -> CoreConfig:
    """Normalize an optional core configuration (the one place it happens)."""
    return CoreConfig() if core_config is None else core_config


def prepare_workload(
    eval_config: EvalConfig,
    trace: Trace,
    num_cores: int = 1,
    l2_prefetcher: Optional[str] = None,
    core_config: Optional[CoreConfig] = None,
) -> PreparedWorkload:
    """Run the full hierarchy once (LRU LLC) and record the LLC stream."""
    maybe_fault("prepare", workload=trace.name)
    started = time.perf_counter()
    core_config = _core_config(core_config)
    hierarchy_config = eval_config.hierarchy(num_cores=num_cores)
    hierarchy = CacheHierarchy(
        hierarchy_config, make_policy("lru"), l2_prefetcher=l2_prefetcher
    )
    timing = TimingModel(hierarchy_config, core_config)
    llc_records = []
    hierarchy.llc.add_access_observer(
        lambda access, hit: llc_records.append(access)
    )

    warmup_end = int(len(trace.records) * eval_config.warmup_fraction)
    warmup_index = 0
    base_cycles = [0.0] * num_cores
    instructions = [0] * num_cores
    issue_width = timing.core_config.issue_width
    stall = timing._stall
    with span("prepare_workload", workload=trace.name):
        for position, record in enumerate(
            profiled(trace.records, "prepare_workload")
        ):
            if position == warmup_end:
                warmup_index = len(llc_records)
            level = hierarchy.access(record)
            if position < warmup_end:
                continue
            core = record.core
            instructions[core] += record.instr_delta
            base_cycles[core] += record.instr_delta / issue_width
            if level in (L1, L2):
                base_cycles[core] += stall[level]
            # LLC/MEMORY stalls are policy-dependent; charged during replay.
    return PreparedWorkload(
        trace_name=trace.name,
        num_cores=num_cores,
        llc_config=hierarchy_config.llc,
        llc_records=llc_records,
        warmup_index=warmup_index,
        base_cycles=base_cycles,
        instructions=instructions,
        stall_llc=stall[LLC],
        stall_mem=stall[MEMORY],
        hierarchy_stats=hierarchy.stats_summary(),
        prepare_seconds=time.perf_counter() - started,
    )


def _instantiate(policy, num_cores: int):
    """Accept a policy name or instance; wire multicore RLR automatically."""
    if not isinstance(policy, str):
        return policy
    if policy in ("rlr", "rlr_unopt", "rlr_tuned") and num_cores > 1:
        return make_policy(policy, num_cores=num_cores)
    return make_policy(policy)


def replay(
    prepared: PreparedWorkload,
    policy,
    allow_bypass: bool = False,
    detailed: Optional[bool] = None,
    observers: Optional[list] = None,
    sanitize: str = None,
    decisions=None,
    profile=None,
) -> SystemResult:
    """Replay the recorded LLC stream under ``policy``; compute IPC/stats.

    ``detailed`` forces Table II metadata maintenance on the replay cache
    (defaults to the policy's own ``needs_line_metadata``); ``observers`` are
    attached as eviction observers (Figures 5-7 instrumentation).
    ``sanitize`` selects the policy-contract sanitizer mode (see
    :mod:`repro.sanitize`); wrapping here, before ``bind``, lets the
    sanitizer observe the policy's full lifecycle.

    ``decisions`` is an optional
    :class:`repro.telemetry.decisions.DecisionTrace`: it is attached as an
    access + decision observer, receives sanitizer contract violations
    while the replay runs, and forces ``detailed=True`` so victim feature
    snapshots are live (metadata maintenance does not change simulation
    results — only what observers can read).  When ``None`` (the default)
    the replay is structurally identical to a pre-tracing one.

    ``profile`` is an optional :class:`repro.telemetry.perf.PhaseProfile`:
    when given, the cache and its policy are wrapped with phase timers and
    the loop wall time is folded in via ``profile.finish()``.  When
    ``None`` (the default) the plain :class:`Cache` is constructed and the
    hot loop runs the exact pre-profiler code path.
    """
    policy = _instantiate(policy, prepared.num_cores)
    policy = wrap_policy(policy, mode=sanitize, allow_bypass=allow_bypass)
    if decisions is not None:
        from repro.telemetry.decisions import activate

        detailed = True
        decisions.begin(
            total=len(prepared.llc_records),
            policy_name=getattr(policy, "name", "unknown"),
        )
        activate(decisions)
    try:
        policy.bind(prepared.llc_config)
        if detailed is None:
            detailed = getattr(policy, "needs_line_metadata", True)
        if profile is None:
            cache = Cache(
                prepared.llc_config,
                policy,
                allow_bypass=allow_bypass,
                detailed=detailed,
                sanitize=sanitize,
            )
        else:
            from repro.telemetry.perf import make_profiled_cache

            cache = make_profiled_cache(
                prepared.llc_config,
                policy,
                profile,
                allow_bypass=allow_bypass,
                detailed=detailed,
                sanitize=sanitize,
            )
        for observer in observers or []:
            cache.add_eviction_observer(observer)
        if decisions is not None:
            cache.add_decision_observer(decisions.on_decision)
            cache.add_access_observer(decisions.on_access)
        cycles = list(prepared.base_cycles)
        warmup_index = prepared.warmup_index
        stall_llc, stall_mem = prepared.stall_llc, prepared.stall_mem
        loop_started = time.perf_counter()
        with span(
            "replay",
            workload=prepared.trace_name,
            policy=getattr(policy, "name", "unknown"),
        ):
            for position, record in enumerate(
                profiled(prepared.llc_records, "replay")
            ):
                if position == warmup_index:
                    cache.reset_stats()
                result = cache.access(record)
                if position >= warmup_index and record.access_type.is_demand:
                    cycles[record.core] += stall_llc if result.hit else stall_mem
        if profile is not None:
            profile.finish(time.perf_counter() - loop_started)
    finally:
        if decisions is not None:
            from repro.telemetry.decisions import deactivate

            deactivate(decisions)
    ipc = [
        instr / cyc if cyc > 0 else 0.0
        for instr, cyc in zip(prepared.instructions, cycles)
    ]
    total_instructions = sum(prepared.instructions)
    return SystemResult(
        trace_name=prepared.trace_name,
        policy_name=getattr(policy, "name", "unknown"),
        ipc=ipc,
        instructions=list(prepared.instructions),
        llc_stats=cache.stats.summary(),
        demand_mpki=cache.stats.demand_mpki(total_instructions),
        llc_demand_hit_rate=cache.stats.demand_hit_rate,
        llc_hit_rate=cache.stats.hit_rate,
    )


def _memory_cache(eval_config) -> dict:
    """The per-EvalConfig in-memory pass-1 cache (created on first use)."""
    cache = getattr(eval_config, "_prepared_cache", None)
    if cache is None:
        cache = {}
        eval_config._prepared_cache = cache
    return cache


def _memory_key(trace, num_cores, l2_prefetcher):
    return (trace.name, num_cores, l2_prefetcher, len(trace.records))


def _prepared(eval_config, trace, num_cores, l2_prefetcher) -> PreparedWorkload:
    """Cache pass-1 artifacts on the EvalConfig (keyed by trace identity).

    If a :class:`repro.eval.prep_cache.PrepCache` is attached to the
    EvalConfig (``eval_config.prep_cache``), it is consulted before
    simulating and populated after, so prepared workloads persist across
    processes and sessions.
    """
    cache = _memory_cache(eval_config)
    key = _memory_key(trace, num_cores, l2_prefetcher)
    if key not in cache:
        disk = getattr(eval_config, "prep_cache", None)
        prepared = None
        disk_key = None
        if disk is not None:
            from repro.eval.prep_cache import workload_cache_key

            disk_key = workload_cache_key(
                eval_config, trace, num_cores=num_cores, l2_prefetcher=l2_prefetcher
            )
            prepared = disk.load(disk_key)
        if prepared is None:
            prepared = prepare_workload(
                eval_config, trace, num_cores=num_cores, l2_prefetcher=l2_prefetcher
            )
            if disk is not None:
                disk.store(disk_key, prepared)
        cache[key] = prepared
    return cache[key]


def run_workload(
    eval_config: EvalConfig,
    trace: Trace,
    policy,
    num_cores: int = 1,
    allow_bypass: bool = False,
    l2_prefetcher: Optional[str] = None,
) -> SystemResult:
    """Simulate one trace under one policy at the evaluation scale."""
    prepared = _prepared(eval_config, trace, num_cores, l2_prefetcher)
    return replay(prepared, policy, allow_bypass=allow_bypass)


def record_llc_stream(
    eval_config: EvalConfig,
    trace: Trace,
    num_cores: int = 1,
    l2_prefetcher: Optional[str] = None,
) -> list:
    """The LLC line-address stream for ``trace`` (Belady's future input)."""
    prepared = _prepared(eval_config, trace, num_cores, l2_prefetcher)
    return prepared.llc_line_stream


def run_belady(
    eval_config: EvalConfig,
    trace: Trace,
    num_cores: int = 1,
    l2_prefetcher: Optional[str] = None,
    allow_bypass: bool = False,
) -> SystemResult:
    """Exact Belady OPT using the recorded stream as future knowledge."""
    prepared = _prepared(eval_config, trace, num_cores, l2_prefetcher)
    policy = BeladyPolicy(prepared.llc_line_stream, allow_bypass=allow_bypass)
    return replay(prepared, policy, allow_bypass=allow_bypass)


def compare_policies(
    eval_config: EvalConfig,
    trace: Trace,
    policies,
    num_cores: int = 1,
    include_belady: bool = False,
    l2_prefetcher: Optional[str] = None,
) -> dict:
    """Run one trace under several policies; returns {name: SystemResult}."""
    prepared = _prepared(eval_config, trace, num_cores, l2_prefetcher)
    results = {}
    for policy in policies:
        name = policy if isinstance(policy, str) else policy.name
        results[name] = replay(prepared, policy)
    if include_belady:
        belady = BeladyPolicy(prepared.llc_line_stream)
        results["belady"] = replay(prepared, belady)
    return results


def sweep(
    eval_config: EvalConfig,
    workload_names,
    policies,
    include_belady: bool = False,
    l2_prefetcher: Optional[str] = None,
) -> dict:
    """Run a suite sweep; returns {workload: {policy: SystemResult}}."""
    table = {}
    for name in workload_names:
        trace = eval_config.trace(name)
        table[name] = compare_policies(
            eval_config,
            trace,
            policies,
            include_belady=include_belady,
            l2_prefetcher=l2_prefetcher,
        )
    return table
