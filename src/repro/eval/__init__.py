"""Experiment harness: workloads, runner, metrics, and per-figure experiments."""

from repro.eval.agreement import belady_agreement, compare_agreement
from repro.eval.decision_stream import trace_decisions
from repro.eval.report import generate_report, write_report
from repro.eval.statistics import SpeedupEstimate, seed_sweep
from repro.eval.timeline import policy_timeline, render_sparkline
from repro.eval.victim_analysis import (
    VictimStatistics,
    compare_victim_profiles,
    policy_victim_statistics,
)

from repro.eval.metrics import (
    geomean,
    ipc_speedup,
    mix_speedup,
    overall_speedup_percent,
    speedup_percent,
)
from repro.eval.parallel import CellResult, SweepReport, parallel_sweep
from repro.eval.prep_cache import (
    PrepCache,
    attach_prep_cache,
    workload_cache_key,
)
from repro.eval.runner import (
    compare_policies,
    record_llc_stream,
    run_belady,
    run_workload,
    sweep,
)
from repro.eval.workloads import (
    EvalConfig,
    RL_TRAINING_BENCHMARKS,
    high_mpki_names,
    spec_mixes,
    suite_names,
)

__all__ = [
    "CellResult",
    "EvalConfig",
    "PrepCache",
    "SpeedupEstimate",
    "SweepReport",
    "VictimStatistics",
    "trace_decisions",
    "attach_prep_cache",
    "parallel_sweep",
    "workload_cache_key",
    "belady_agreement",
    "generate_report",
    "seed_sweep",
    "write_report",
    "compare_agreement",
    "compare_victim_profiles",
    "policy_timeline",
    "policy_victim_statistics",
    "render_sparkline",
    "RL_TRAINING_BENCHMARKS",
    "compare_policies",
    "geomean",
    "high_mpki_names",
    "ipc_speedup",
    "mix_speedup",
    "overall_speedup_percent",
    "record_llc_stream",
    "run_belady",
    "run_workload",
    "speedup_percent",
    "spec_mixes",
    "suite_names",
    "sweep",
]
