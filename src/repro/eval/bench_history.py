"""Bench history (``BENCH_history.jsonl``) and the regression gate.

The history is an append-only JSONL log of every completed bench payload,
CRC-enveloped line by line via :class:`repro.runs.journal.RunJournal` — the
same framing the run journals use, so a torn write or bit flip damages one
line, is located by ``repro fsck``/``repro validate``, and never takes the
tail of the history with it (tail-salvage: damaged lines are skipped and
counted, valid entries before and after still load).

The gate (:func:`compare`) is deliberately simple and reproducible:

* rates are already **min-noise** (best-of-N inside the bench), so the
  comparison needs no statistics beyond a relative threshold;
* thresholds are **per bench family** (:data:`FAMILY_THRESHOLDS`) because
  a 150-request serve loop is noisier than a 20k-access replay;
* the **overhead** family gates on its absolute ``ok`` budget flags, not
  on baseline deltas — a budget bust is a regression even on day one;
* a bench or rate key missing from the baseline is ``new``, never a
  failure (otherwise adding a bench would break the gate that protects
  it).

On a regression the report names the *phase* that grew the most
(per-access ns from the attribution profiler), so "replay/rlr got 30%
slower" arrives as "victim_scoring grew +45%", which is an actionable
lead instead of a number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.runs.journal import RunJournal

DEFAULT_HISTORY_NAME = "BENCH_history.jsonl"

#: Relative rate-drop tolerated per bench family before the gate fails.
#: Generous by design: CI machines have noisy neighbours, and a gate that
#: cries wolf gets deleted.  ``None`` = the family is gated on absolute
#: budget checks instead of relative rates.
FAMILY_THRESHOLDS = {
    "replay": 0.25,
    "objcache": 0.25,
    "serve": 0.40,
    "train": 0.30,
    "overhead": None,
}
DEFAULT_THRESHOLD = 0.30


def append_history(path, payload: dict) -> None:
    """Durably append one bench payload to the history log."""
    RunJournal(path).append({
        "type": "bench",
        "name": payload.get("bench"),
        "payload": payload,
    })


def load_history(path):
    """All valid bench payloads plus located damage.

    Returns ``(payloads, damage)`` where ``damage`` is the journal's
    ``(line_number, problem)`` list — damaged lines are skipped, never
    fatal (``repro fsck`` repairs them).
    """
    scan = RunJournal(path).scan()
    payloads = [
        entry["payload"]
        for entry in scan.entries
        if entry.get("type") == "bench"
        and isinstance(entry.get("payload"), dict)
    ]
    return payloads, scan.damage


def latest_per_bench(payloads) -> dict:
    """The most recent payload per bench name (append order wins)."""
    latest = {}
    for payload in payloads:
        name = payload.get("bench")
        if name:
            latest[name] = payload
    return latest


def resolve_baseline(target):
    """Load a comparison baseline from a history log, dir, or snapshot.

    ``target`` may be a ``.jsonl`` history (latest payload per bench), a
    directory holding committed ``BENCH_*.json`` snapshots, or one
    snapshot file.  Returns ``({bench: payload}, notes)``.
    """
    target = Path(target)
    notes = []
    if target.is_dir():
        baseline = {}
        for path in sorted(target.glob("BENCH_*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except ValueError as error:
                notes.append(f"skipped unparseable {path.name}: {error}")
                continue
            if isinstance(payload, dict) and payload.get("bench"):
                baseline[payload["bench"]] = payload
        if not baseline:
            notes.append(f"no BENCH_*.json snapshots under {target}")
        return baseline, notes
    if not target.is_file():
        raise FileNotFoundError(f"no baseline at {target}")
    if target.suffix == ".jsonl":
        payloads, damage = load_history(target)
        if damage:
            notes.append(
                f"baseline history has {len(damage)} damaged line(s) "
                f"(skipped; run `repro fsck` to repair): "
                + ", ".join(f"line {number}" for number, _ in damage[:5])
            )
        if not payloads:
            notes.append(f"baseline history {target} holds no bench entries")
        return latest_per_bench(payloads), notes
    payload = json.loads(target.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or not payload.get("bench"):
        raise ValueError(f"{target} is not a bench payload")
    return {payload["bench"]: payload}, notes


# -- comparison ----------------------------------------------------------------


@dataclass
class CompareRow:
    """One gated quantity: a rate key or an overhead check."""

    bench: str
    key: str
    current: float
    baseline: float = None  #: None when the key is new
    delta_pct: float = None
    threshold_pct: float = None
    status: str = "ok"  #: ok | improved | new | regression


@dataclass
class PhaseDelta:
    """Per-access phase growth between baseline and current."""

    bench: str
    key: str
    phase: str
    baseline_ns: float
    current_ns: float
    delta_pct: float


@dataclass
class CompareReport:
    rows: list = field(default_factory=list)
    phase_deltas: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        return [row for row in self.rows if row.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def worst_phase(self, bench: str, key: str):
        """The fastest-growing phase for one (bench, key), or ``None``."""
        candidates = [
            delta for delta in self.phase_deltas
            if delta.bench == bench and delta.key == key
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda delta: delta.delta_pct)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "rows": [vars(row) for row in self.rows],
            "phase_deltas": [vars(delta) for delta in self.phase_deltas],
            "notes": list(self.notes),
        }

    def format(self) -> str:
        lines = []
        widths = (10, 22, 14, 14, 8, 6, 10)
        header = ("bench", "key", "baseline", "current", "delta%", "thr%",
                  "status")
        lines.append("  ".join(
            str(col).ljust(width) for col, width in zip(header, widths)
        ).rstrip())
        for row in self.rows:
            cells = (
                row.bench,
                row.key,
                "-" if row.baseline is None else f"{row.baseline:.1f}",
                f"{row.current:.1f}",
                "-" if row.delta_pct is None else f"{row.delta_pct:+.1f}",
                "-" if row.threshold_pct is None
                else f"{row.threshold_pct:.0f}",
                row.status,
            )
            lines.append("  ".join(
                str(col).ljust(width) for col, width in zip(cells, widths)
            ).rstrip())
        for row in self.regressions:
            blame = self.worst_phase(row.bench, row.key)
            detail = (
                f"  REGRESSION {row.bench}/{row.key}: "
                + (
                    f"{-row.delta_pct:.1f}% below baseline "
                    f"(threshold {row.threshold_pct:.0f}%)"
                    if row.delta_pct is not None
                    else "budget check failed"
                )
            )
            if blame is not None and blame.delta_pct > 0:
                detail += (
                    f"; slowest-growing phase: {blame.phase} "
                    f"({blame.delta_pct:+.1f}%, {blame.baseline_ns:.1f} -> "
                    f"{blame.current_ns:.1f} ns/access)"
                )
            lines.append(detail)
        regressed = {(row.bench, row.key) for row in self.regressions}
        shown = [
            delta for delta in self.phase_deltas
            if (delta.bench, delta.key) in regressed
        ]
        if shown:
            lines.append("")
            lines.append("per-phase deltas (ns/access) for regressed benches:")
            phase_widths = (10, 22, 20, 12, 12, 8)
            phase_header = ("bench", "key", "phase", "baseline", "current",
                            "delta%")
            lines.append("  ".join(
                str(col).ljust(width)
                for col, width in zip(phase_header, phase_widths)
            ).rstrip())
            for delta in shown:
                cells = (
                    delta.bench, delta.key, delta.phase,
                    f"{delta.baseline_ns:.1f}", f"{delta.current_ns:.1f}",
                    f"{delta.delta_pct:+.1f}",
                )
                lines.append("  ".join(
                    str(col).ljust(width)
                    for col, width in zip(cells, phase_widths)
                ).rstrip())
        for note in self.notes:
            lines.append(f"  note: {note}")
        verdict = "PASS" if self.ok else (
            f"FAIL: {len(self.regressions)} regression(s)"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _phase_deltas(bench: str, key: str, baseline_phases: dict,
                  current_phases: dict) -> list:
    deltas = []
    base = (baseline_phases or {}).get(key, {}).get("phases", {})
    curr = (current_phases or {}).get(key, {}).get("phases", {})
    for phase in sorted(set(base) & set(curr)):
        baseline_ns = float(base[phase].get("per_access_ns", 0.0))
        current_ns = float(curr[phase].get("per_access_ns", 0.0))
        if baseline_ns <= 0.0 and current_ns <= 0.0:
            continue
        delta_pct = (
            (current_ns - baseline_ns) / baseline_ns * 100.0
            if baseline_ns > 0 else float("inf")
        )
        deltas.append(PhaseDelta(bench, key, phase, baseline_ns, current_ns,
                                 delta_pct))
    return deltas


def compare(current: dict, baseline: dict,
            tolerance: float = None) -> CompareReport:
    """Gate ``current`` bench payloads against ``baseline`` ones.

    ``current`` and ``baseline`` map bench name -> payload.  ``tolerance``
    (a fraction, e.g. ``0.5`` = 50%) overrides every family threshold —
    the CI knob for generous noise bounds.
    """
    report = CompareReport()
    for bench in sorted(current):
        payload = current[bench]
        base_payload = baseline.get(bench)
        threshold = (
            tolerance if tolerance is not None
            else FAMILY_THRESHOLDS.get(bench, DEFAULT_THRESHOLD)
        )
        for key in sorted(payload.get("rates", {})):
            rate = float(payload["rates"][key])
            base_rates = (base_payload or {}).get("rates", {})
            if key not in base_rates:
                report.rows.append(CompareRow(bench, key, rate, status="new"))
                continue
            base_rate = float(base_rates[key])
            delta_pct = (
                (rate - base_rate) / base_rate * 100.0 if base_rate > 0
                else 0.0
            )
            effective = DEFAULT_THRESHOLD if threshold is None else threshold
            if base_rate > 0 and rate < base_rate * (1.0 - effective):
                status = "regression"
            elif base_rate > 0 and rate > base_rate * (1.0 + effective):
                status = "improved"
            else:
                status = "ok"
            report.rows.append(CompareRow(
                bench, key, rate, baseline=base_rate, delta_pct=delta_pct,
                threshold_pct=effective * 100.0, status=status,
            ))
            if base_payload is not None:
                report.phase_deltas.extend(_phase_deltas(
                    bench, key, base_payload.get("phases"),
                    payload.get("phases"),
                ))
        # Overhead checks: absolute budgets, regression on any ok=false.
        for key in sorted(payload.get("checks", {})):
            check = payload["checks"][key]
            value = float(check.get("value", 0.0))
            base_checks = (base_payload or {}).get("checks", {})
            base_value = (
                float(base_checks[key]["value"]) if key in base_checks
                else None
            )
            report.rows.append(CompareRow(
                bench, key, value, baseline=base_value,
                status="ok" if check.get("ok") else "regression",
            ))
    for bench in sorted(set(baseline) - set(current)):
        report.notes.append(
            f"baseline bench {bench!r} was not run this time (not gated)"
        )
    return report


# -- history rendering ---------------------------------------------------------


def format_history(payloads, damage) -> str:
    """The ``repro bench history`` table: one row per recorded rate."""
    lines = []
    widths = (5, 10, 22, 14, 12, 7)
    header = ("seq", "bench", "key", "rate", "git", "dirty")
    lines.append("  ".join(
        str(col).ljust(width) for col, width in zip(header, widths)
    ).rstrip())
    for seq, payload in enumerate(payloads, start=1):
        environment = payload.get("environment", {})
        git = environment.get("git", {}) or {}
        sha = (git.get("sha") or "-")[:10]
        dirty = {True: "yes", False: "no"}.get(git.get("dirty"), "-")
        bench = payload.get("bench", "?")
        for key in sorted(payload.get("rates", {})):
            cells = (seq, bench, key, f"{float(payload['rates'][key]):.1f}",
                     sha, dirty)
            lines.append("  ".join(
                str(col).ljust(width) for col, width in zip(cells, widths)
            ).rstrip())
        for key in sorted(payload.get("checks", {})):
            check = payload["checks"][key]
            status = "ok" if check.get("ok") else "FAIL"
            cells = (seq, bench, key,
                     f"{float(check.get('value', 0.0)):.6f} [{status}]",
                     sha, dirty)
            lines.append("  ".join(
                str(col).ljust(width) for col, width in zip(cells, widths)
            ).rstrip())
    if damage:
        lines.append(
            f"  note: {len(damage)} damaged history line(s) skipped "
            f"(run `repro fsck` to repair): "
            + ", ".join(f"line {number}" for number, _ in damage[:5])
        )
    if not payloads:
        lines.append("  (history is empty)")
    return "\n".join(lines)
