"""Full experiment report generation.

Runs a configurable subset of the paper's experiments and renders one
markdown report — the programmatic equivalent of re-running the benchmark
suite and collating its tables.  Used by ``python -m repro report``.
"""

from __future__ import annotations

import io

from repro.eval.experiments import (
    FIGURE_POLICIES,
    fig4_preuse_vs_reuse,
    mpki_comparison,
    multicore_speedups,
    single_core_speedups,
    table1_overhead,
)
from repro.eval.metrics import geomean
from repro.eval.reporting import format_speedup_series, format_table
from repro.eval.workloads import EvalConfig, RL_TRAINING_BENCHMARKS


def generate_report(
    eval_config: EvalConfig,
    policies=FIGURE_POLICIES,
    suites=("spec2006", "cloudsuite"),
    include_multicore: bool = False,
    num_mixes: int = 3,
) -> str:
    """Run the core experiment set and render a markdown report."""
    out = io.StringIO()
    write = out.write
    write("# RLR reproduction report\n\n")
    write(f"- evaluation scale: Table III / {eval_config.scale}\n")
    write(f"- trace length: {eval_config.trace_length} references\n")
    write(f"- seed: {eval_config.seed}\n\n")

    write("## Table I — storage overhead\n\n```\n")
    rows = [
        {
            "policy": row.policy,
            "uses_pc": "Yes" if row.uses_pc else "No",
            "kib": round(row.kib, 2),
            "paper_kib": row.paper_kib,
        }
        for row in table1_overhead()
    ]
    write(format_table(rows, headers=["policy", "uses_pc", "kib", "paper_kib"]))
    write("\n```\n\n")

    for suite in suites:
        write(f"## Single-core speedups over LRU ({suite})\n\n```\n")
        series = single_core_speedups(eval_config, suite, policies)
        write(format_speedup_series(series, policies))
        write("\n```\n\nGeomean: ")
        geomeans = {
            policy: (geomean(row[policy] for row in series.values()) - 1) * 100
            for policy in policies
        }
        write(", ".join(f"{p} {v:+.2f}%" for p, v in geomeans.items()))
        write("\n\n")

    write("## Demand MPKI (LRU MPKI > 3)\n\n```\n")
    mpki = mpki_comparison(eval_config, policies=policies)
    mpki_policies = ["lru"] + list(policies)
    rows = [
        {"workload": workload, **{p: round(row[p], 2) for p in mpki_policies}}
        for workload, row in mpki.items()
    ]
    write(format_table(rows, headers=["workload"] + mpki_policies))
    write("\n```\n\n")

    write("## |preuse − reuse| distribution (Figure 4)\n\n```\n")
    fig4 = fig4_preuse_vs_reuse(eval_config, RL_TRAINING_BENCHMARKS)
    rows = [
        {
            "workload": name,
            "<10": f"{100 * buckets['<10']:.0f}%",
            "10-50": f"{100 * buckets['10-50']:.0f}%",
            ">50": f"{100 * buckets['>50']:.0f}%",
        }
        for name, buckets in fig4.items()
    ]
    write(format_table(rows, headers=["workload", "<10", "10-50", ">50"]))
    write("\n```\n\n")

    if include_multicore:
        write(f"## 4-core mixes ({num_mixes} random SPEC mixes)\n\n```\n")
        multicore = multicore_speedups(
            eval_config, num_mixes=num_mixes, policies=policies
        )
        write(format_speedup_series(multicore, policies))
        write("\n```\n\n")

    return out.getvalue()


def write_report(path, eval_config: EvalConfig, **kwargs) -> None:
    """Generate a report and write it to ``path``."""
    with open(path, "w") as handle:
        handle.write(generate_report(eval_config, **kwargs))
