"""Throughput micro-benchmarks (``repro bench``) seeding the perf history.

Two fixed, small, deterministic workloads — one per replay engine — timed
as best-of-N accesses/sec:

* **objcache**: the golden object-cache scenario shape (Zipfian trace,
  lognormal inverse-correlated sizes) replayed through each object policy;
* **replay**: a CPU workload prepared once (the warm prep-cache path, so
  pass 1 is excluded) and its recorded LLC stream replayed per policy.

The results are committed as ``BENCH_objcache.json`` / ``BENCH_replay.json``
at the repo root, one snapshot per PR, so accesses/sec regressions show up
in review diffs instead of being discovered months later.  Numbers are
machine-dependent by nature — the history tracks *relative* movement on the
CI machine class, not absolute truth.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

DEFAULT_REPEATS = 3

#: The fixed objcache benchmark shape (mirrors scenarios/objcache goldens).
OBJCACHE_BENCH = {
    "objects": 4000,
    "length": 20_000,
    "seed": 7,
    "alpha": 1.0,
    "capacity_bytes": 12_000_000,
    "policies": ("lru", "lru_size", "gdsf", "random_size", "rlr", "rlr_size"),
}

#: The fixed CPU replay benchmark shape.
REPLAY_BENCH = {
    "workload": "473.astar",
    "scale": 16,
    "trace_length": 20_000,
    "seed": 7,
    "policies": ("lru", "drrip", "ship++", "rlr"),
}


def _best_rate(run, units: int, repeats: int) -> float:
    """Best-of-N throughput in units/sec (min timing noise, not mean)."""
    best = 0.0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, units / elapsed)
    return best


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
    }


def bench_objcache(repeats: int = DEFAULT_REPEATS) -> dict:
    """Accesses/sec of ``ObjectCache.replay`` per object policy."""
    from repro.objcache import (
        ObjectCache,
        generate_object_trace,
        make_object_policy,
    )

    spec = OBJCACHE_BENCH
    trace = generate_object_trace(
        name="bench-zipf", kind="zipf", objects=spec["objects"],
        length=spec["length"], seed=spec["seed"], alpha=spec["alpha"],
        sizes={"dist": "lognormal", "min": 256, "max": 1 << 20,
               "correlate": "inverse"},
    )
    rates = {}
    for policy in spec["policies"]:
        def run(policy=policy):
            cache = ObjectCache(spec["capacity_bytes"],
                                make_object_policy(policy))
            cache.replay(trace.requests)

        rates[policy] = round(_best_rate(run, len(trace.requests), repeats), 1)
    return {
        "bench": "objcache",
        "unit": "accesses/sec",
        "repeats": repeats,
        "requests": len(trace.requests),
        "capacity_bytes": spec["capacity_bytes"],
        "environment": _environment(),
        "rates": rates,
    }


def bench_replay(repeats: int = DEFAULT_REPEATS) -> dict:
    """LLC accesses/sec of the pass-2 replay per CPU policy.

    ``prepare_workload`` runs once up front — the warm-prep-cache path — so
    the timing covers only the policy-dependent replay loop.
    """
    from repro.eval.runner import prepare_workload, replay
    from repro.eval.workloads import EvalConfig

    spec = REPLAY_BENCH
    config = EvalConfig(scale=spec["scale"],
                        trace_length=spec["trace_length"], seed=spec["seed"])
    trace = config.trace(spec["workload"])
    prepared = prepare_workload(config, trace)
    rates = {}
    for policy in spec["policies"]:
        def run(policy=policy):
            replay(prepared, policy)

        rates[policy] = round(
            _best_rate(run, len(prepared.llc_records), repeats), 1
        )
    return {
        "bench": "replay",
        "unit": "llc accesses/sec",
        "repeats": repeats,
        "workload": spec["workload"],
        "trace_length": spec["trace_length"],
        "llc_records": len(prepared.llc_records),
        "environment": _environment(),
        "rates": rates,
    }


BENCHES = {
    "objcache": (bench_objcache, "BENCH_objcache.json"),
    "replay": (bench_replay, "BENCH_replay.json"),
}


def write_bench(name: str, output_dir=".", repeats: int = DEFAULT_REPEATS):
    """Run one named benchmark and write its JSON snapshot; returns
    ``(payload, path)``."""
    from repro.runs.atomic import atomic_write_text

    run, filename = BENCHES[name]
    payload = run(repeats=repeats)
    path = Path(output_dir) / filename
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload, path
