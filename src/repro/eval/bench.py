"""Throughput micro-benchmarks (``repro bench``): the perf observatory.

A matrix of fixed, small, deterministic workloads, one family per engine:

* **replay**: a CPU workload prepared once (warm prep-cache path, so pass 1
  is excluded) and its recorded LLC stream replayed per policy;
* **objcache**: the golden object-cache scenario shape (Zipfian trace,
  lognormal inverse-correlated sizes) per object policy, plus
  admission-gated variants (``lru+size_threshold``, ``lru+freq_gate``);
* **serve**: round-trip decide latency against the threaded policy server
  (count-based nearest-rank percentiles, decides/sec);
* **train**: one Q-learning epoch over a recorded LLC stream (records/sec);
* **overhead**: the disabled-path budget guards (telemetry hooks, decision
  observer loops, sanitizer off-mode, profiler parity) as asserted checks.

Every payload is schema-versioned (:data:`BENCH_SCHEMA_VERSION`), stamps
the environment (python, machine, git SHA + dirty flag), and — where an
engine is profiled — carries the per-phase attribution breakdown from
:mod:`repro.telemetry.perf`, so a regression report can name the phase
that got slower, not just the number that moved.

Results are committed as ``BENCH_*.json`` at the repo root (one snapshot
per PR) and appended to ``BENCH_history.jsonl``
(:mod:`repro.eval.bench_history`) for the regression gate.  Numbers are
machine-dependent by nature — the history tracks *relative* movement on
the CI machine class, not absolute truth.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

#: Bumped whenever a payload's shape changes (satellite: snapshots must be
#: correlatable with history — see docs/observability.md).
#: v2: added schema/git stamps, phases, serve/train/overhead families.
BENCH_SCHEMA_VERSION = 2

DEFAULT_REPEATS = 3

#: The fixed objcache benchmark shape (mirrors scenarios/objcache goldens).
OBJCACHE_BENCH = {
    "objects": 4000,
    "length": 20_000,
    "seed": 7,
    "alpha": 1.0,
    "capacity_bytes": 12_000_000,
    "policies": ("lru", "lru_size", "gdsf", "random_size", "rlr", "rlr_size"),
    #: admission gates benched in front of an LRU cache (key "lru+<gate>").
    "admissions": ("size_threshold", "freq_gate"),
}

#: The fixed CPU replay benchmark shape.
REPLAY_BENCH = {
    "workload": "473.astar",
    "scale": 16,
    "trace_length": 20_000,
    "seed": 7,
    "policies": ("lru", "srrip", "drrip", "ship++", "rlr"),
}

#: The serve round-trip benchmark shape.
SERVE_BENCH = {
    "requests": 150,
    "policies": ("lru", "rlr"),
}

#: One training epoch over a small recorded LLC stream.
TRAIN_BENCH = {
    "workload": "429.mcf",
    "scale": 64,
    "trace_length": 3000,
    "seed": 7,
    "hidden_size": 32,
    "epochs": 1,
}

#: The overhead-budget suite (folds the ad-hoc <2% guards into the bench
#: history so they regress visibly, not silently).
OVERHEAD_BENCH = {
    "workload": "429.mcf",
    "scale": 64,
    "trace_length": 1500,
    "seed": 7,
    "budget": 0.02,
}


def _merged(default: dict, spec) -> dict:
    return dict(default) if spec is None else {**default, **spec}


def _best_rate(run, units: int, repeats: int) -> float:
    """Best-of-N throughput in units/sec (min timing noise, not mean)."""
    best = 0.0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, units / elapsed)
    return best


def _nearest_rank(sorted_values, percentile: float) -> float:
    """Count-based nearest-rank percentile (deterministic given the list)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * percentile // 100))  # ceil
    return sorted_values[int(rank) - 1]


def _git_state() -> dict:
    """Current commit SHA + dirty flag; ``None`` fields outside a repo."""
    import subprocess

    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}
    sha = head.stdout.strip() if head.returncode == 0 else None
    dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
    return {"sha": sha or None, "dirty": dirty}


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "git": _git_state(),
    }


def bench_objcache(repeats: int = DEFAULT_REPEATS, spec: dict = None) -> dict:
    """Accesses/sec of ``ObjectCache.replay`` per policy and admission gate.

    Rates come from unprofiled caches (best-of-N); one additional profiled
    replay per variant supplies the phase-attribution breakdown.
    """
    from repro.objcache import (
        ObjectCache,
        generate_object_trace,
        make_object_policy,
    )
    from repro.objcache.admission import make_admission
    from repro.telemetry.perf import PhaseProfile, make_profiled_object_cache

    spec = _merged(OBJCACHE_BENCH, spec)
    trace = generate_object_trace(
        name="bench-zipf", kind="zipf", objects=spec["objects"],
        length=spec["length"], seed=spec["seed"], alpha=spec["alpha"],
        sizes={"dist": "lognormal", "min": 256, "max": 1 << 20,
               "correlate": "inverse"},
    )
    variants = [(name, name, None) for name in spec["policies"]]
    variants += [(f"lru+{gate}", "lru", gate)
                 for gate in spec.get("admissions", ())]
    rates, phases = {}, {}
    for key, policy, gate in variants:
        def run(policy=policy, gate=gate):
            cache = ObjectCache(
                spec["capacity_bytes"], make_object_policy(policy),
                admission=make_admission(gate) if gate else None,
            )
            cache.replay(trace.requests)

        rates[key] = round(_best_rate(run, len(trace.requests), repeats), 1)
        profile = PhaseProfile("objcache")
        profiled_cache = make_profiled_object_cache(
            spec["capacity_bytes"], make_object_policy(policy), profile,
            admission=make_admission(gate) if gate else None,
        )
        profiled_cache.replay(trace.requests)
        phases[key] = profile.as_dict()
    return {
        "bench": "objcache",
        "schema": BENCH_SCHEMA_VERSION,
        "unit": "accesses/sec",
        "repeats": repeats,
        "requests": len(trace.requests),
        "capacity_bytes": spec["capacity_bytes"],
        "environment": _environment(),
        "rates": rates,
        "phases": phases,
    }


def bench_replay(repeats: int = DEFAULT_REPEATS, spec: dict = None) -> dict:
    """LLC accesses/sec of the pass-2 replay per CPU policy.

    ``prepare_workload`` runs once up front — the warm-prep-cache path — so
    the timing covers only the policy-dependent replay loop.  A profiled
    replay per policy (not timed for the rate) supplies phase attribution.
    """
    from repro.eval.runner import prepare_workload, replay
    from repro.eval.workloads import EvalConfig
    from repro.telemetry.perf import PhaseProfile

    spec = _merged(REPLAY_BENCH, spec)
    config = EvalConfig(scale=spec["scale"],
                        trace_length=spec["trace_length"], seed=spec["seed"])
    trace = config.trace(spec["workload"])
    prepared = prepare_workload(config, trace)
    rates, phases = {}, {}
    for policy in spec["policies"]:
        def run(policy=policy):
            replay(prepared, policy)

        rates[policy] = round(
            _best_rate(run, len(prepared.llc_records), repeats), 1
        )
        profile = PhaseProfile("replay")
        replay(prepared, policy, profile=profile)
        phases[policy] = profile.as_dict()
    return {
        "bench": "replay",
        "schema": BENCH_SCHEMA_VERSION,
        "unit": "llc accesses/sec",
        "repeats": repeats,
        "workload": spec["workload"],
        "trace_length": spec["trace_length"],
        "llc_records": len(prepared.llc_records),
        "environment": _environment(),
        "rates": rates,
        "phases": phases,
    }


def bench_serve(repeats: int = DEFAULT_REPEATS, spec: dict = None) -> dict:
    """Round-trip decide latency/throughput against the threaded server.

    Latency percentiles are count-based nearest-rank over the best repeat's
    per-request wall times (deterministic given the measurements); the
    phase split times ``policy.victim`` on the server side, with the
    remainder attributed to ``transport`` (framing, socket, micro-batch
    queueing, simulated deadline cost).
    """
    from repro.cache.cache_set import CacheSet
    from repro.cache.config import CacheConfig
    from repro.serve.client import PolicyClient
    from repro.serve.protocol import victim_request
    from repro.serve.server import ServeConfig, start_in_thread
    from repro.telemetry.perf import PhaseProfile
    from repro.traces.record import AccessType, TraceRecord

    spec = _merged(SERVE_BENCH, spec)
    requests = spec["requests"]
    record = TraceRecord(address=0x1000, pc=0x40,
                         access_type=AccessType.LOAD, core=0)
    config = CacheConfig("llc", 64 * 1024, 16, 30)
    cache_set = CacheSet(0, 16)
    for way, line in enumerate(cache_set.lines):
        line.fill(0x10 + way, 0x4000 + way, record)
        line.recency = way

    rates, latency_us, phases = {}, {}, {}
    with start_in_thread(ServeConfig()) as handle:
        for policy in spec["policies"]:
            tenant = f"bench-{policy}"
            client = PolicyClient(handle.host, handle.port)
            try:
                if client.bind(tenant, policy, config) is None:
                    raise RuntimeError(f"serve bench: bind({policy}) failed")
                shard = handle.server.shards[tenant]
                victim_box = [0.0, 0]  # seconds, calls (GIL-safe accum)
                original = shard.policy.victim

                def timed_victim(set_index, victim_set, access,
                                 original=original, box=victim_box):
                    started = time.perf_counter()
                    way = original(set_index, victim_set, access)
                    box[0] += time.perf_counter() - started
                    box[1] += 1
                    return way

                shard.policy.victim = timed_victim
                best_rate, best = 0.0, None
                for repeat in range(max(1, repeats)):
                    victim_box[0], victim_box[1] = 0.0, 0
                    latencies = []
                    started = time.perf_counter()
                    for index in range(requests):
                        frame = victim_request(
                            tenant, f"{policy}-{repeat}-{index}", 0,
                            cache_set, record,
                        )
                        sent = time.perf_counter()
                        reply = client.request(frame)
                        latencies.append(time.perf_counter() - sent)
                        if reply is None or not reply.get("ok"):
                            raise RuntimeError(
                                f"serve bench: victim({policy}) failed: "
                                f"{reply!r}"
                            )
                    elapsed = time.perf_counter() - started
                    rate = requests / elapsed if elapsed > 0 else 0.0
                    if rate >= best_rate:
                        best_rate = rate
                        best = (sorted(latencies), elapsed,
                                victim_box[0], victim_box[1])
                rates[policy] = round(best_rate, 1)
                latencies, elapsed, victim_seconds, victim_calls = best
                latency_us[policy] = {
                    f"p{pct}": round(
                        _nearest_rank(latencies, pct) * 1e6, 1
                    )
                    for pct in (50, 90, 99)
                }
                profile = PhaseProfile("serve")
                profile.accesses = requests
                profile.raw["victim"] = victim_seconds
                profile.count("victim_scoring", victim_calls)
                profile.finish(elapsed)
                phases[policy] = profile.as_dict()
            finally:
                client.close()
    return {
        "bench": "serve",
        "schema": BENCH_SCHEMA_VERSION,
        "unit": "decides/sec",
        "repeats": repeats,
        "requests": requests,
        "environment": _environment(),
        "rates": rates,
        "latency_us": latency_us,
        "phases": phases,
    }


def bench_train(repeats: int = DEFAULT_REPEATS, spec: dict = None) -> dict:
    """Records/sec of one Q-learning epoch over a recorded LLC stream."""
    from repro.eval.workloads import EvalConfig
    from repro.rl.trainer import (
        TrainerConfig,
        llc_stream_records,
        train_on_stream,
    )

    spec = _merged(TRAIN_BENCH, spec)
    config = EvalConfig(scale=spec["scale"],
                        trace_length=spec["trace_length"], seed=spec["seed"])
    records = llc_stream_records(config, spec["workload"])
    llc_config = config.hierarchy().llc
    trainer_config = TrainerConfig(hidden_size=spec["hidden_size"],
                                   epochs=spec["epochs"])

    def run():
        train_on_stream(llc_config, records, trainer_config)

    rate = _best_rate(run, len(records) * spec["epochs"], repeats)
    return {
        "bench": "train",
        "schema": BENCH_SCHEMA_VERSION,
        "unit": "records/sec",
        "repeats": repeats,
        "workload": spec["workload"],
        "llc_records": len(records),
        "hidden_size": spec["hidden_size"],
        "environment": _environment(),
        "rates": {"qlearner": round(rate, 1)},
        "phases": {},
    }


def bench_overhead(repeats: int = DEFAULT_REPEATS, spec: dict = None) -> dict:
    """The disabled-path budget guards as history-tracked checks.

    Each check carries ``value``/``budget``/``ok``; the regression gate
    fails on any ``ok: false`` regardless of baseline (these are absolute
    budgets, not relative movements).  Mirrors the structural guards in
    tests/test_telemetry_overhead.py so the same invariants appear in
    every bench report.
    """
    import timeit

    from repro import telemetry
    from repro.cache.replacement import make_policy
    from repro.eval.runner import prepare_workload, replay
    from repro.eval.workloads import EvalConfig
    from repro.sanitize import wrap_policy
    from repro.telemetry.perf import PhaseProfile
    from repro.telemetry.profiling import profiled
    from repro.telemetry.registry import NULL_REGISTRY
    from repro.telemetry.spans import NULL_SPAN

    spec = _merged(OVERHEAD_BENCH, spec)
    budget = spec["budget"]
    config = EvalConfig(scale=spec["scale"],
                        trace_length=spec["trace_length"], seed=spec["seed"])
    prepared = prepare_workload(config, config.trace(spec["workload"]))

    # Mean-of-N denominator (same as the tier-1 guard): the budget bounds
    # typical replay cost, and a min-of-N denominator would tighten the
    # ratio artificially under CI load.
    started = time.perf_counter()
    result = None
    for _ in range(max(1, repeats)):
        result = replay(prepared, "lru")
    replay_seconds = (time.perf_counter() - started) / max(1, repeats)

    checks = {}

    # Telemetry hooks with telemetry disabled: one span() + one profiled()
    # call per *loop*, bounded against the smallest replay the sweep
    # engine ever schedules.
    calls = 2000
    hook_seconds = timeit.timeit(
        lambda: (telemetry.span("replay", workload="w"),
                 profiled((), "replay")),
        number=calls,
    ) / calls
    ratio = hook_seconds / replay_seconds
    checks["telemetry_hooks_disabled"] = {
        "value": round(ratio, 6), "budget": budget, "ok": ratio < budget,
        "unit": "fraction of smallest replay",
    }

    # Decision log disabled: the only residue is one empty-list loop per
    # eviction.
    evictions = result.llc_stats["evictions"]
    empty = []
    loop_seconds = timeit.timeit(
        lambda: [None for _ in empty], number=max(int(evictions), 1)
    )
    ratio = loop_seconds / replay_seconds
    checks["decision_observer_loop"] = {
        "value": round(ratio, 6), "budget": budget, "ok": ratio < budget,
        "unit": "fraction of smallest replay",
    }

    # profiled()/span()/registry identity: the disabled path binds the
    # exact objects telemetry-free code would.
    items = [1, 2, 3]
    generator = (item for item in items)
    identity = (
        not telemetry.is_enabled()
        and profiled(items, "replay") is items
        and profiled(generator, "replay") is generator
        and telemetry.span("replay") is NULL_SPAN
        and telemetry.get_registry() is NULL_REGISTRY
    )
    checks["profiled_disabled_identity"] = {
        "value": 1.0 if identity else 0.0, "budget": None, "ok": identity,
        "unit": "identity",
    }

    # Sanitizer off-mode identity + idempotent re-wrap.
    policy = make_policy("lru")
    wrapped = wrap_policy(make_policy("lru"), mode="normal")
    identity = (
        wrap_policy(policy, mode="off") is policy
        and wrap_policy(wrapped, mode="normal") is wrapped
    )
    checks["sanitize_off_identity"] = {
        "value": 1.0 if identity else 0.0, "budget": None, "ok": identity,
        "unit": "identity",
    }

    # Attribution profiler: bit-identical results and phase sum within 1%
    # of the loop wall time.
    profile = PhaseProfile("replay")
    profiled_result = replay(prepared, "lru", profile=profile)
    error = profile.reconciliation()["relative_error"]
    parity = profiled_result == result and error <= 0.01
    checks["profiler_parity"] = {
        "value": round(error, 6), "budget": 0.01, "ok": parity,
        "unit": "phase-sum relative error",
    }

    return {
        "bench": "overhead",
        "schema": BENCH_SCHEMA_VERSION,
        "unit": "budget checks",
        "repeats": repeats,
        "workload": spec["workload"],
        "budget": budget,
        "environment": _environment(),
        "rates": {},
        "checks": checks,
    }


BENCHES = {
    "replay": (bench_replay, "BENCH_replay.json"),
    "objcache": (bench_objcache, "BENCH_objcache.json"),
    "serve": (bench_serve, "BENCH_serve.json"),
    "train": (bench_train, "BENCH_train.json"),
    "overhead": (bench_overhead, "BENCH_overhead.json"),
}


def write_bench(name: str, output_dir=".", repeats: int = DEFAULT_REPEATS,
                spec: dict = None):
    """Run one named benchmark and write its JSON snapshot; returns
    ``(payload, path)``."""
    from repro.runs.atomic import atomic_write_text

    run, filename = BENCHES[name]
    payload = run(repeats=repeats, spec=spec)
    path = Path(output_dir) / filename
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload, path


def capture_flamegraph(name: str, spec: dict = None) -> str:
    """One cProfile'd bench run folded into flamegraph lines.

    Opt-in (``repro bench --profile``): runs the bench once (repeats=1)
    under cProfile and returns collapsed-stack text any folded-format
    flamegraph renderer can draw.
    """
    from repro.telemetry.perf import capture_collapsed

    run, _ = BENCHES[name]
    _, folded = capture_collapsed(lambda: run(repeats=1, spec=spec))
    return folded
