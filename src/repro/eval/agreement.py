"""Belady-agreement measurement for any policy.

The paper's reward grades each eviction against Belady: +1 for evicting the
line with the farthest next use, −1 for evicting a line that would be
reused sooner than the inserted one, 0 otherwise.  This module applies the
same grading to *any* policy's decisions during a replay, yielding a
decision-quality profile — how often a policy picks the OPT victim, and how
often it makes an actively harmful choice.  RLR's profile can be compared
directly against the RL agent's and against Belady's (always-optimal).

:func:`belady_agreement` reads the grades off the shared decision stream
(:mod:`repro.eval.decision_stream`); :class:`OracleProbePolicy`, the
original proxy-policy implementation, is kept as an independent
cross-check — the equivalence test asserts both gradings agree count for
count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import Cache
from repro.cache.replacement.base import ReplacementPolicy
from repro.eval.decision_stream import trace_decisions
from repro.eval.runner import _instantiate, _prepared
from repro.rl.reward import (
    NEGATIVE_REWARD,
    POSITIVE_REWARD,
    FutureOracle,
    belady_reward,
)


@dataclass
class AgreementProfile:
    """Decision grades for one (workload, policy) replay."""

    decisions: int = 0
    optimal: int = 0
    harmful: int = 0
    neutral: int = 0

    @property
    def optimal_rate(self) -> float:
        return self.optimal / self.decisions if self.decisions else 0.0

    @property
    def harmful_rate(self) -> float:
        return self.harmful / self.decisions if self.decisions else 0.0

    @classmethod
    def from_decision_trace(cls, decisions) -> "AgreementProfile":
        """Profile from a graded :class:`DecisionTrace`'s counters."""
        return cls(
            decisions=decisions.graded,
            optimal=decisions.optimal,
            harmful=decisions.harmful,
            neutral=decisions.neutral,
        )


class OracleProbePolicy(ReplacementPolicy):
    """Wraps a policy, grading every victim decision against the oracle."""

    name = "oracle_probe"
    needs_line_metadata = True  # conservatively maintain full metadata

    def __init__(self, inner: ReplacementPolicy, oracle: FutureOracle) -> None:
        super().__init__()
        self.inner = inner
        self.oracle = oracle
        self.profile = AgreementProfile()

    def bind(self, config):
        super().bind(config)
        self.inner.bind(config)

    def on_hit(self, set_index, way, line, access):
        self.oracle.advance(access.line_address)
        self.inner.on_hit(set_index, way, line, access)

    def on_miss(self, set_index, access):
        self.oracle.advance(access.line_address)
        self.inner.on_miss(set_index, access)

    def on_fill(self, set_index, way, line, access):
        self.inner.on_fill(set_index, way, line, access)

    def on_evict(self, set_index, way, line, access):
        self.inner.on_evict(set_index, way, line, access)

    def victim(self, set_index, cache_set, access):
        way = self.inner.victim(set_index, cache_set, access)
        if 0 <= way < self.ways:
            grade = belady_reward(self.oracle, cache_set, way, access)
            self.profile.decisions += 1
            if grade == POSITIVE_REWARD:
                self.profile.optimal += 1
            elif grade == NEGATIVE_REWARD:
                self.profile.harmful += 1
            else:
                self.profile.neutral += 1
        return way


def belady_agreement(eval_config, workload_name: str, policy) -> AgreementProfile:
    """Grade every eviction of ``policy`` on one workload against OPT.

    Runs one decision-traced replay (sampling is irrelevant here — the
    grade counters cover every eviction regardless).  Unlike the probe
    implementation, which skips gradings when the wrapped policy returns
    an out-of-contract way, the decision stream grades every eviction
    that actually happens, including sanitizer LRU fallbacks; for a
    contract-abiding policy the two are identical.
    """
    decisions = trace_decisions(
        eval_config, workload_name, policy, graded=True, capacity=1
    )
    return AgreementProfile.from_decision_trace(decisions)


def compare_agreement(eval_config, workload_name: str, policies) -> dict:
    """Agreement profiles for several policies on one workload."""
    return {
        (policy if isinstance(policy, str) else policy.name): belady_agreement(
            eval_config, workload_name, policy
        )
        for policy in policies
    }
