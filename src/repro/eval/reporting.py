"""Plain-text table/series rendering for experiment outputs.

Every experiment in :mod:`repro.eval.experiments` returns plain data
structures; these helpers print them the way the paper's tables and figures
report them (rows of benchmarks, columns of policies, percentages).
"""

from __future__ import annotations


def format_table(rows, headers, title: str = None, precision: int = 2) -> str:
    """Render a list-of-dicts (or list-of-lists) as an aligned text table."""
    if rows and isinstance(rows[0], dict):
        rows = [[row.get(h, "") for h in headers] for row in rows]

    def fmt(value):
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent_matrix(matrix: dict, policies, title: str = None) -> str:
    """Render {workload: {policy: fraction}} as a percent table."""
    headers = ["workload"] + list(policies)
    rows = []
    for workload, values in matrix.items():
        row = [workload] + [
            f"{100 * values[p]:.1f}" if p in values else "-" for p in policies
        ]
        rows.append(row)
    return format_table(rows, headers, title=title)


def format_speedup_series(series: dict, policies, title: str = None) -> str:
    """Render {workload: {policy: speedup_fraction}} as +x.x% columns."""
    headers = ["workload"] + list(policies)
    rows = []
    for workload, values in series.items():
        row = [workload]
        for policy in policies:
            if policy in values:
                row.append(f"{(values[policy] - 1) * 100:+.2f}%")
            else:
                row.append("-")
        rows.append(row)
    return format_table(rows, headers, title=title)
