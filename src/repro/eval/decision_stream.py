"""One replay, one shared decision stream, many consumers.

Before this module existed, every decision-level analysis re-instrumented
its own replay: ``victim_analysis`` attached an eviction observer,
``agreement`` hand-built a cache around an oracle-probing proxy policy,
and ``experiments.agent_victim_statistics`` carried a third inline
observer.  :func:`trace_decisions` replaces all of that with a single
instrumented replay producing a
:class:`~repro.telemetry.decisions.DecisionTrace`, which every consumer
(Figure 5-7 profiles, Belady agreement, ``repro inspect``) reads.
"""

from __future__ import annotations

from typing import Optional

from repro.eval.runner import _prepared, replay
from repro.telemetry.decisions import DecisionTrace


def trace_decisions(
    eval_config,
    workload_name: str,
    policy,
    *,
    graded: bool = False,
    sample_rate: int = 1,
    capacity: Optional[int] = None,
    worst_n: int = None,
) -> DecisionTrace:
    """Replay ``workload_name`` under ``policy``, recording every decision.

    ``graded=True`` attaches a Belady :class:`~repro.rl.reward.FutureOracle`
    over the recorded LLC stream, so each eviction carries its +1/0/-1
    grade.  The default ``capacity=None`` keeps every sampled event
    (analysis consumers need the full stream; the bounded default of
    :class:`DecisionTrace` is for long sweeps).
    """
    trace = eval_config.trace(workload_name)
    prepared = _prepared(eval_config, trace, 1, None)
    oracle = None
    if graded:
        from repro.rl.reward import FutureOracle

        oracle = FutureOracle(prepared.llc_line_stream)
    kwargs = {} if worst_n is None else {"worst_n": worst_n}
    decisions = DecisionTrace(
        workload=workload_name,
        sample_rate=sample_rate,
        capacity=capacity,
        oracle=oracle,
        **kwargs,
    )
    replay(prepared, policy, decisions=decisions)
    return decisions
