"""One entry point per paper table/figure (the DESIGN.md §4 index).

Every function returns plain data (dicts/lists) that the corresponding
benchmark under ``benchmarks/`` prints in the paper's format;
EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cache.replacement.belady import BeladyPolicy
from repro.core.overhead import table1 as _table1_rows
from repro.core.priority import PriorityWeights
from repro.core.rlr import RLRPolicy
from repro.eval.metrics import geomean, mix_speedup
from repro.eval.parallel import parallel_sweep
from repro.eval.runner import _prepared, replay
from repro.eval.workloads import EvalConfig, spec_mixes, suite_names
from repro.rl.trainer import (
    TrainerConfig,
    llc_stream_records,
    train_on_stream,
    train_per_benchmark,
)
from repro.rl.policy_adapter import AgentReplacementPolicy

#: Policy lineup of Figures 10-13 (LRU is the baseline).  The checked-in
#: scenario files under ``scenarios/figures/`` are the canonical source for
#: benchmark configuration; this literal is only the fallback default when a
#: function is called without a scenario (``benchmarks/common.py`` reads the
#: lineup from the fig10 scenario).
FIGURE_POLICIES = (
    "drrip", "kpc_r", "ship", "rlr", "rlr_unopt", "rlr_tuned", "hawkeye", "ship++"
)


def _scenario_policies(scenario, exclude=("lru", "belady")) -> tuple:
    """A scenario's policy lineup minus the baselines experiments add."""
    return tuple(p for p in scenario.policies if p not in exclude)


def _scenario_eval_config(scenario, eval_config):
    """The explicit eval_config wins (benchmarks attach prep caches to it)."""
    return eval_config if eval_config is not None else scenario.eval_config()


# -- Table I ----------------------------------------------------------------


def table1_overhead(config=None):
    """Table I: storage overhead per policy (computed vs paper-reported)."""
    return _table1_rows(config)


# -- Figure 1: LLC hit rate comparison ---------------------------------------


def fig1_hit_rates(
    eval_config: EvalConfig = None,
    workloads=None,
    policies=None,
    include_rl: bool = False,
    rl_config: TrainerConfig = None,
    scenario=None,
) -> dict:
    """Overall LLC hit rate per workload per policy, plus Belady (and RL).

    Belady is the theoretical optimum for this metric (it maximizes total
    hits over all access types), exactly as in the paper's Figure 1.

    A :class:`repro.scenarios.Scenario` supplies workloads, policies, the
    evaluation config, and ``params.include_rl`` — explicit arguments
    override its values.
    """
    if scenario is not None:
        eval_config = _scenario_eval_config(scenario, eval_config)
        workloads = workloads or scenario.workload_names
        policies = policies or ("lru",) + _scenario_policies(scenario)
        include_rl = scenario.params.get("include_rl", include_rl)
    policies = policies or ("lru", "drrip", "ship", "ship++", "hawkeye", "rlr")
    workloads = workloads or suite_names("spec2006")
    results = {}
    for name in workloads:
        trace = eval_config.trace(name)
        prepared = _prepared(eval_config, trace, 1, None)
        row = {}
        for policy in policies:
            row[policy] = replay(prepared, policy).llc_hit_rate
        if include_rl:
            llc_config = prepared.llc_config
            trained = train_on_stream(
                llc_config, prepared.llc_records, rl_config or TrainerConfig()
            )
            adapter = AgentReplacementPolicy(
                trained.agent, trained.extractor, train=False
            )
            row["rl"] = replay(prepared, adapter).llc_hit_rate
        row["belady"] = replay(
            prepared, BeladyPolicy(prepared.llc_line_stream)
        ).llc_hit_rate
        results[name] = row
    return results


# -- Figure 3: weight heat map ------------------------------------------------


def fig3_heatmap(eval_config: EvalConfig, benchmarks, trainer_config=None):
    """Train one agent per benchmark, return the Figure 3 heat-map matrix."""
    from repro.rl.analysis import heatmap

    agents = train_per_benchmark(eval_config, benchmarks, trainer_config)
    return heatmap(agents)


# -- Figure 4: |preuse - reuse| distribution ---------------------------------


def fig4_preuse_vs_reuse(eval_config: EvalConfig, workloads) -> dict:
    """Per-workload distribution of |preuse − reuse| for reused lines.

    Computed directly on the LLC reference stream: for consecutive
    same-address gaps g1, g2 (in accesses to the line's set), the access in
    the middle has preuse g1 and reuse g2.  Buckets follow the paper:
    <10, 10–50, >50.
    """
    llc_config = eval_config.hierarchy(num_cores=1).llc
    results = {}
    for name in workloads:
        records = llc_stream_records(eval_config, name)
        set_accesses = defaultdict(int)
        last_seen = {}  # line -> (set_access_count at last access, prev gap)
        buckets = {"<10": 0, "10-50": 0, ">50": 0}
        for record in records:
            set_index = llc_config.set_index(record.line_address)
            set_accesses[set_index] += 1
            now = set_accesses[set_index]
            seen = last_seen.get(record.line_address)
            if seen is not None:
                then, prev_gap = seen
                gap = now - then
                if prev_gap is not None:
                    difference = abs(prev_gap - gap)
                    if difference < 10:
                        buckets["<10"] += 1
                    elif difference <= 50:
                        buckets["10-50"] += 1
                    else:
                        buckets[">50"] += 1
                last_seen[record.line_address] = (now, gap)
            else:
                last_seen[record.line_address] = (now, None)
        total = sum(buckets.values())
        results[name] = {
            key: (value / total if total else 0.0) for key, value in buckets.items()
        }
    return results


# -- Figures 5-7: RL-agent victim analysis -----------------------------------


def agent_victim_statistics(
    eval_config: EvalConfig, workloads, trainer_config=None
) -> dict:
    """Train an agent per workload, replay greedily, record victim features.

    Returns per workload:
      * ``avg_age_by_type`` — Figure 5 (victim age since last access, in set
        accesses, averaged per last-access type);
      * ``hits_histogram`` — Figure 6 (fraction of victims with 0/1/>1 hits);
      * ``recency_histogram`` — Figure 7 (fraction of victims per recency).
    """
    from repro.eval.victim_analysis import VictimStatistics
    from repro.telemetry.decisions import DecisionTrace

    trainer_config = trainer_config or TrainerConfig()
    results = {}
    for name in workloads:
        trace = eval_config.trace(name)
        prepared = _prepared(eval_config, trace, 1, None)
        llc_config = prepared.llc_config
        trained = train_on_stream(llc_config, prepared.llc_records, trainer_config)

        adapter = AgentReplacementPolicy(trained.agent, trained.extractor, train=False)
        # The shared decision stream replaces the bespoke eviction
        # observer this function used to carry (same events that feed
        # Figures 5-7 for hardware policies and `repro inspect`).
        decisions = DecisionTrace(workload=name, policy="agent", capacity=None)
        replay(prepared, adapter, decisions=decisions)
        stats = VictimStatistics.from_events(decisions.events())
        results[name] = {
            "avg_age_by_type": dict(stats.avg_age_by_type),
            "hits_histogram": dict(stats.hits_histogram),
            "recency_histogram": dict(stats.recency_histogram),
        }
    return results


# -- Figures 10/11: single-core speedups --------------------------------------


def single_core_speedups(
    eval_config: EvalConfig = None,
    suite: str = None,
    policies=None,
    jobs: int = 1,
    cache_dir=None,
    timeout=None,
    retries: int = 0,
    scenario=None,
) -> dict:
    """IPC speedup over LRU per workload (Figure 10 = spec2006, 11 = cloud).

    Routed through :func:`repro.eval.parallel.parallel_sweep`; ``jobs`` > 1
    fans the sweep out over worker processes, ``cache_dir`` enables the
    on-disk prepared-workload cache, and ``timeout``/``retries`` arm the
    per-cell watchdog and transient-failure retry.

    A scenario supplies the workload list (in place of ``suite``), the
    policy lineup, and the evaluation config.
    """
    if scenario is not None:
        eval_config = _scenario_eval_config(scenario, eval_config)
        policies = policies or _scenario_policies(scenario)
        names = scenario.workload_names
    else:
        names = suite_names(suite)
    policies = policies or FIGURE_POLICIES
    lineup = ["lru"] + [policy for policy in policies if policy != "lru"]
    report = parallel_sweep(
        eval_config, names, lineup, jobs=jobs, cache_dir=cache_dir,
        timeout=timeout, retries=retries,
    )
    table = report.table()
    results = {}
    for name in names:
        row = table.get(name, {})
        if "lru" not in row:
            continue
        baseline = row["lru"].single_ipc
        results[name] = {
            policy: row[policy].single_ipc / baseline
            for policy in policies
            if policy in row
        }
    return results


# -- Figure 12: demand MPKI ----------------------------------------------------


def mpki_comparison(
    eval_config: EvalConfig = None,
    policies=None,
    min_mpki: float = None,
    suite: str = "spec2006",
    jobs: int = 1,
    cache_dir=None,
    timeout=None,
    retries: int = 0,
    scenario=None,
) -> dict:
    """Demand MPKI per policy for workloads with LRU MPKI > ``min_mpki``.

    Two sweeps through the parallel engine: an LRU-only pass filters the
    suite, then the full policy lineup runs on the surviving workloads
    (prepared workloads are shared between the passes via the caches).

    A scenario supplies the workloads, policies, and ``params.min_mpki``.
    """
    if scenario is not None:
        eval_config = _scenario_eval_config(scenario, eval_config)
        policies = policies or _scenario_policies(scenario)
        if min_mpki is None:
            min_mpki = scenario.params.get("min_mpki")
        names = scenario.workload_names
    else:
        names = suite_names(suite)
    policies = policies or FIGURE_POLICIES
    min_mpki = 3.0 if min_mpki is None else min_mpki
    lru_report = parallel_sweep(
        eval_config, names, ["lru"], jobs=jobs, cache_dir=cache_dir,
        timeout=timeout, retries=retries,
    )
    lru_table = lru_report.table()
    kept = [
        name
        for name in names
        if "lru" in lru_table.get(name, {})
        and lru_table[name]["lru"].demand_mpki > min_mpki
    ]
    report = parallel_sweep(
        eval_config, kept, list(policies), jobs=jobs, cache_dir=cache_dir,
        timeout=timeout, retries=retries,
    )
    table = report.table()
    results = {}
    for name in kept:
        row = {"lru": lru_table[name]["lru"].demand_mpki}
        for policy in policies:
            if policy in table.get(name, {}):
                row[policy] = table[name][policy].demand_mpki
        results[name] = row
    return results


# -- Figure 13 / Table IV: multicore -------------------------------------------


def multicore_speedups(
    eval_config: EvalConfig = None,
    num_mixes: int = None,
    policies=None,
    suite: str = "spec2006",
    jobs: int = 1,
    cache_dir=None,
    timeout=None,
    retries: int = 0,
    scenario=None,
) -> dict:
    """4-core mix speedups over LRU (paper: 100 random SPEC mixes).

    Returns {mix_name: {policy: speedup}}; each speedup is the geometric
    mean of the four cores' IPC ratios.  Mix traces are built in the parent
    and swept through the parallel engine.

    A scenario supplies policies and mixes (``mixes: {random: N}`` sets the
    mix count; explicit mixes are used verbatim).
    """
    from repro.traces.mix import random_mixes

    mixes = None
    if scenario is not None:
        eval_config = _scenario_eval_config(scenario, eval_config)
        policies = policies or _scenario_policies(scenario)
        if scenario.mixes is not None and scenario.mixes.explicit:
            mixes = list(scenario.mixes.explicit)
        elif scenario.mixes is not None and num_mixes is None:
            num_mixes = scenario.mixes.random_count
        if mixes is None:
            mixes = random_mixes(
                scenario.workload_names, num_mixes or 10, mix_size=4,
                seed=eval_config.seed,
            )
    policies = policies or FIGURE_POLICIES
    num_mixes = 10 if num_mixes is None else num_mixes
    if mixes is None:
        if suite == "spec2006":
            mixes = spec_mixes(eval_config, num_mixes)
        else:
            names = suite_names(suite)
            mixes = [tuple(names[:4])]
    traces = [eval_config.mix_trace(mix) for mix in mixes]
    lineup = ["lru"] + [policy for policy in policies if policy != "lru"]
    report = parallel_sweep(
        eval_config, traces, lineup, jobs=jobs, num_cores=4,
        cache_dir=cache_dir, timeout=timeout, retries=retries,
    )
    table = report.table()
    results = {}
    for trace in traces:
        row_results = table.get(trace.name, {})
        if "lru" not in row_results:
            continue
        baseline = row_results["lru"].ipc
        results[trace.name] = {
            policy: mix_speedup(row_results[policy].ipc, baseline)
            for policy in policies
            if policy in row_results
        }
    return results


def table4_overall(
    eval_config_1core: EvalConfig = None,
    eval_config_4core: EvalConfig = None,
    policies=None,
    num_mixes: int = None,
    jobs: int = 1,
    scenario=None,
) -> dict:
    """Table IV: overall % speedup for 1-core/4-core, SPEC and CloudSuite.

    A scenario supplies the policy lineup and ``params.num_mixes``; both
    suites are always swept (the table's columns), so the scenario's
    workloads only document the configuration.
    """
    if scenario is not None:
        eval_config_1core = _scenario_eval_config(scenario, eval_config_1core)
        policies = policies or _scenario_policies(scenario)
        if num_mixes is None:
            num_mixes = scenario.params.get("num_mixes")
    policies = policies or FIGURE_POLICIES
    num_mixes = 10 if num_mixes is None else num_mixes
    table = {}
    for suite in ("spec2006", "cloudsuite"):
        single = single_core_speedups(eval_config_1core, suite, policies, jobs=jobs)
        for policy in policies:
            table.setdefault(policy, {})[f"1-core {suite}"] = (
                geomean(row[policy] for row in single.values()) - 1
            ) * 100
    if eval_config_4core is not None:
        for suite in ("spec2006", "cloudsuite"):
            multi = multicore_speedups(
                eval_config_4core, num_mixes=num_mixes, policies=policies,
                suite=suite, jobs=jobs,
            )
            for policy in policies:
                table[policy][f"4-core {suite}"] = (
                    geomean(row[policy] for row in multi.values()) - 1
                ) * 100
    return table


# -- §V-B ablations --------------------------------------------------------------


def ablation_priorities(eval_config: EvalConfig, workloads) -> dict:
    """RLR with hit/type priority disabled (paper §V-B).

    Returns overall speedup (%) over LRU for full RLR, RLR without the hit
    register, and RLR without the type register.
    """
    variants = {
        "rlr": PriorityWeights(),
        "rlr_no_hit": PriorityWeights(use_hit=False),
        "rlr_no_type": PriorityWeights(use_type=False),
        "rlr_age_only": PriorityWeights(use_hit=False, use_type=False),
    }
    speedups = {name: [] for name in variants}
    for workload in workloads:
        trace = eval_config.trace(workload)
        prepared = _prepared(eval_config, trace, 1, None)
        baseline = replay(prepared, "lru").single_ipc
        for name, weights in variants.items():
            result = replay(prepared, RLRPolicy(weights=weights))
            speedups[name].append(result.single_ipc / baseline)
    return {name: (geomean(values) - 1) * 100 for name, values in speedups.items()}


def ablation_age_bits(eval_config: EvalConfig, workloads, bit_widths=(2, 3, 4, 5, 6, 8)):
    """§IV-C: sweep the age-counter width (paper chose 5 bits unopt, 2 opt)."""
    from repro.core.rlr import RLRUnoptPolicy

    speedups = {bits: [] for bits in bit_widths}
    for workload in workloads:
        trace = eval_config.trace(workload)
        prepared = _prepared(eval_config, trace, 1, None)
        baseline = replay(prepared, "lru").single_ipc
        for bits in bit_widths:
            result = replay(prepared, RLRUnoptPolicy(age_bits=bits))
            speedups[bits].append(result.single_ipc / baseline)
    return {bits: (geomean(values) - 1) * 100 for bits, values in speedups.items()}
