"""On-disk cache for pass-1 :class:`~repro.eval.runner.PreparedWorkload`s.

Pass 1 of the record-once/replay-per-policy runner simulates the full
hierarchy and is by far the most expensive stage of a sweep — and its output
depends only on the trace and the policy-independent configuration.  This
module caches those artifacts on disk, keyed by a SHA-256 content hash of

* the trace's canonical byte encoding (:func:`repro.traces.trace_io.trace_to_bytes`),
* the derived hierarchy configuration (cache geometries, latencies,
  prefetchers — so e.g. changing the LLC associativity changes the key),
* the warm-up fraction, core count, L2 prefetcher override, and
  :class:`~repro.cache.config.CoreConfig` timing parameters.

Any perturbation of the simulated inputs therefore produces a different key
and a cache miss; identical inputs skip pass 1 entirely.  Entries are
pickles wrapped in the checksummed frame container
(:mod:`repro.store.frames`, family ``"prep-cache"``) written atomically, so
truncation, torn writes, and bit flips are *detected*, not unpickled.  A
corrupt entry is handled the self-healing way: the bad file is moved into a
``quarantine/`` subdirectory (never deleted silently, never re-read as a
perpetual warning), counted (``corrupt``/``quarantined``), surfaced as a
:class:`PrepCacheCorruptionWarning` naming the affected key — and the entry
is transparently rebuilt by the caller's ordinary miss path, so the next
access stores a fresh valid copy.  Version-mismatched entries (stale
``FORMAT_VERSION`` or pre-integrity-layer bare pickles) remain silent
misses: they are expected after upgrades, not damage.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from pathlib import Path
from typing import Optional

from repro.cache.config import CoreConfig
from repro.store.errors import ArtifactCorruptionError
from repro.store.frames import is_framed, read_artifact, write_artifact
from repro.testing.faults import maybe_fault
from repro.traces.record import Trace
from repro.traces.trace_io import trace_to_bytes

#: Bump to invalidate every existing cache entry (layout changes).
FORMAT_VERSION = 3  # v3: framed container (repro.store) around the pickle

#: Frame-container family tag for cache entries.
PREP_CACHE_FAMILY = "prep-cache"

#: Subdirectory corrupt entries are moved into (fsck reports its contents).
QUARANTINE_DIR = "quarantine"


class PrepCacheCorruptionWarning(UserWarning):
    """A cache entry was unreadable; it was quarantined for rebuild."""


class PrepCache:
    """A directory of content-addressed ``PreparedWorkload`` artifacts.

    ``load`` returns ``None`` on any miss *or* unreadable entry — callers
    always fall back to re-simulating, so a corrupt cache can degrade
    performance but never correctness.  An unreadable entry is moved to
    ``quarantine/`` so the rebuilt entry takes its place on the next
    ``store`` (self-healing); ``hits``/``misses``/``corrupt``/
    ``quarantined`` counters make cache behaviour observable in tests and
    reports, and every corrupt entry additionally raises a
    :class:`PrepCacheCorruptionWarning` naming the affected key.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantined = 0

    def path(self, key: str) -> Path:
        """Filesystem path of the entry for ``key``."""
        return self.directory / f"{key}.pkl"

    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIR

    def stats(self) -> dict:
        """Counter snapshot for telemetry and end-of-run summaries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
        }

    def _corrupt_entry(self, key: str, reason: str) -> None:
        """Quarantine, count, and surface one unreadable entry (still a miss)."""
        self.misses += 1
        self.corrupt += 1
        quarantined = self._quarantine(key)
        warnings.warn(
            f"prep cache entry {key} is corrupt ({reason}); "
            + ("quarantined and " if quarantined else "")
            + "rebuilding on this miss",
            PrepCacheCorruptionWarning,
            stacklevel=3,
        )

    def _quarantine(self, key: str) -> bool:
        """Move the bad entry aside (never silently delete); False on failure."""
        from repro.store.fsck import quarantine_file

        source = self.path(key)
        try:
            quarantine_file(source, self.quarantine_dir(), reason="corrupt")
        except OSError:
            return False  # cross-device or permission trouble: leave in place
        self.quarantined += 1
        return True

    def load(self, key: str):
        """The cached ``PreparedWorkload`` for ``key``, or ``None``."""
        path = self.path(key)
        maybe_fault("prep-cache", key=key, path=str(path))
        try:
            with open(path, "rb") as handle:
                head = handle.read(4)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            self._corrupt_entry(key, f"{error.__class__.__name__}: {error}")
            return None
        try:
            if is_framed(head):
                payload = pickle.loads(
                    read_artifact(path, family=PREP_CACHE_FAMILY)
                )
            else:
                # Pre-integrity-layer entry: a bare pickle.  If it decodes,
                # its stale FORMAT_VERSION makes it a silent miss below; if
                # it does not even decode, it is garbage, i.e. corruption.
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
        except ArtifactCorruptionError as error:
            self._corrupt_entry(key, f"{error.reason}{error.locate()}")
            return None
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as error:
            # Bad bytes inside a valid frame (missing class, pickle drift)
            # or an unpicklable legacy file.
            self._corrupt_entry(key, f"{error.__class__.__name__}: {error}")
            return None
        if not isinstance(payload, dict):
            self._corrupt_entry(key, "entry is not a cache payload")
            return None
        if payload.get("version") != FORMAT_VERSION:
            # Stale format after an upgrade: an expected, silent miss.
            self.misses += 1
            return None
        prepared = payload.get("prepared")
        if (
            payload.get("key") != key
            or prepared is None
            or not hasattr(prepared, "llc_records")
        ):
            self._corrupt_entry(key, "payload failed validation")
            return None
        self.hits += 1
        return prepared

    def store(self, key: str, prepared) -> None:
        """Persist ``prepared`` under ``key`` (atomic, durable write)."""
        payload = {"version": FORMAT_VERSION, "key": key, "prepared": prepared}
        try:
            write_artifact(
                self.path(key),
                PREP_CACHE_FAMILY,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                version=FORMAT_VERSION,
            )
        except OSError:
            # Caching is best-effort; a full disk must not fail the sweep.
            pass


def workload_cache_key(
    eval_config,
    trace: Trace,
    num_cores: int = 1,
    l2_prefetcher: Optional[str] = None,
    core_config: Optional[CoreConfig] = None,
) -> str:
    """Content hash of everything :func:`prepare_workload` depends on."""
    hierarchy = eval_config.hierarchy(num_cores=num_cores)
    hasher = hashlib.sha256()
    hasher.update(b"repro-prep-v%d\0" % FORMAT_VERSION)
    hasher.update(trace_to_bytes(trace))
    configuration = "\0".join(
        (
            f"warmup={eval_config.warmup_fraction!r}",
            f"hierarchy={hierarchy!r}",
            f"num_cores={num_cores!r}",
            f"l2_prefetcher={l2_prefetcher!r}",
            f"core={(core_config or CoreConfig())!r}",
        )
    )
    hasher.update(configuration.encode("utf-8"))
    return hasher.hexdigest()


def attach_prep_cache(eval_config, directory) -> PrepCache:
    """Attach a :class:`PrepCache` to ``eval_config``.

    Every runner entry point that goes through ``_prepared`` (and the
    parallel sweep engine) will consult and populate it.
    """
    cache = PrepCache(directory)
    eval_config.prep_cache = cache
    return cache
