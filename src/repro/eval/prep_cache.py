"""On-disk cache for pass-1 :class:`~repro.eval.runner.PreparedWorkload`s.

Pass 1 of the record-once/replay-per-policy runner simulates the full
hierarchy and is by far the most expensive stage of a sweep — and its output
depends only on the trace and the policy-independent configuration.  This
module caches those artifacts on disk, keyed by a SHA-256 content hash of

* the trace's canonical byte encoding (:func:`repro.traces.trace_io.trace_to_bytes`),
* the derived hierarchy configuration (cache geometries, latencies,
  prefetchers — so e.g. changing the LLC associativity changes the key),
* the warm-up fraction, core count, L2 prefetcher override, and
  :class:`~repro.cache.config.CoreConfig` timing parameters.

Any perturbation of the simulated inputs therefore produces a different key
and a cache miss; identical inputs skip pass 1 entirely.  Entries are
pickles written atomically (temp file + rename); corrupted, truncated, or
version-mismatched entries are treated as misses and silently re-simulated.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Optional

from repro.cache.config import CoreConfig
from repro.traces.record import Trace
from repro.traces.trace_io import trace_to_bytes

#: Bump to invalidate every existing cache entry (layout changes).
FORMAT_VERSION = 1


def workload_cache_key(
    eval_config,
    trace: Trace,
    num_cores: int = 1,
    l2_prefetcher: Optional[str] = None,
    core_config: Optional[CoreConfig] = None,
) -> str:
    """Content hash of everything :func:`prepare_workload` depends on."""
    hierarchy = eval_config.hierarchy(num_cores=num_cores)
    hasher = hashlib.sha256()
    hasher.update(b"repro-prep-v%d\0" % FORMAT_VERSION)
    hasher.update(trace_to_bytes(trace))
    configuration = "\0".join(
        (
            f"warmup={eval_config.warmup_fraction!r}",
            f"hierarchy={hierarchy!r}",
            f"num_cores={num_cores!r}",
            f"l2_prefetcher={l2_prefetcher!r}",
            f"core={(core_config or CoreConfig())!r}",
        )
    )
    hasher.update(configuration.encode("utf-8"))
    return hasher.hexdigest()


class PrepCache:
    """A directory of content-addressed ``PreparedWorkload`` pickles.

    ``load`` returns ``None`` on any miss *or* unreadable entry — callers
    always fall back to re-simulating, so a corrupt cache can degrade
    performance but never correctness.  ``hits``/``misses`` counters make
    cache behaviour observable in tests and reports.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        """Filesystem path of the entry for ``key``."""
        return self.directory / f"{key}.pkl"

    def load(self, key: str):
        """The cached ``PreparedWorkload`` for ``key``, or ``None``."""
        try:
            with open(self.path(key), "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated pickle, bad bytes, missing class, wrong permissions:
            # treat as a miss and let the caller re-simulate.
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != FORMAT_VERSION
            or payload.get("key") != key
        ):
            self.misses += 1
            return None
        prepared = payload.get("prepared")
        if prepared is None or not hasattr(prepared, "llc_records"):
            self.misses += 1
            return None
        self.hits += 1
        return prepared

    def store(self, key: str, prepared) -> None:
        """Persist ``prepared`` under ``key`` (atomic write)."""
        payload = {"version": FORMAT_VERSION, "key": key, "prepared": prepared}
        target = self.path(key)
        temporary = target.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(temporary, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, target)
        except OSError:
            # Caching is best-effort; a full disk must not fail the sweep.
            try:
                temporary.unlink(missing_ok=True)
            except OSError:
                pass


def attach_prep_cache(eval_config, directory) -> PrepCache:
    """Attach a :class:`PrepCache` to ``eval_config``.

    Every runner entry point that goes through ``_prepared`` (and the
    parallel sweep engine) will consult and populate it.
    """
    cache = PrepCache(directory)
    eval_config.prep_cache = cache
    return cache
