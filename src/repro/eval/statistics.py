"""Seed-robustness statistics for speedup measurements.

The paper stresses rigorous methodology ("the selection of instruction
traces used for evaluation can have significant impact on overall
results", §V-B, discussing EVA/PDP discrepancies).  Synthetic traces make
the analogous check cheap: re-generate each workload under several seeds
and report the speedup's mean and spread, so a result can be labeled
robust or trace-sensitive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.eval.runner import compare_policies
from repro.eval.workloads import EvalConfig


@dataclass
class SpeedupEstimate:
    """Mean and spread of a speedup across trace seeds."""

    policy: str
    workload: str
    samples: list

    @property
    def mean_percent(self) -> float:
        return (sum(self.samples) / len(self.samples) - 1) * 100

    @property
    def stdev_percent(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = sum(self.samples) / len(self.samples)
        variance = sum((s - mean) ** 2 for s in self.samples) / (
            len(self.samples) - 1
        )
        return math.sqrt(variance) * 100

    @property
    def min_percent(self) -> float:
        return (min(self.samples) - 1) * 100

    @property
    def max_percent(self) -> float:
        return (max(self.samples) - 1) * 100

    def sign_is_robust(self) -> bool:
        """True if every seed agrees on the speedup's sign (or is ~zero)."""
        return all(s >= 0.999 for s in self.samples) or all(
            s <= 1.001 for s in self.samples
        )


def seed_sweep(
    workload: str,
    policies,
    seeds=(7, 11, 13),
    scale: int = 32,
    trace_length: int = 10_000,
) -> dict:
    """Measure speedups over LRU for each policy across trace seeds.

    Returns {policy: SpeedupEstimate}.  Each seed regenerates the workload
    model (different RNG draws, same parameters) — the synthetic analogue
    of evaluating multiple SimPoints of one benchmark.
    """
    samples = {policy: [] for policy in policies}
    for seed in seeds:
        config = EvalConfig(scale=scale, trace_length=trace_length, seed=seed)
        trace = config.trace(workload)
        results = compare_policies(config, trace, ["lru"] + list(policies))
        baseline = results["lru"].single_ipc
        for policy in policies:
            samples[policy].append(results[policy].single_ipc / baseline)
    return {
        policy: SpeedupEstimate(policy, workload, values)
        for policy, values in samples.items()
    }
