"""``repro inspect``: render decision logs back into the paper's views.

Takes the per-eviction decision log written by ``repro sweep --decisions``
/ ``repro replay --decisions`` (see :mod:`repro.telemetry.decisions`) and
rebuilds, *without re-running any simulation*:

* Figure 5-7-style victim profiles (age per last-access type, hits since
  insertion, recency distribution) via
  :meth:`~repro.eval.victim_analysis.VictimStatistics.from_events` — at
  ``sample_rate=1`` these are bit-for-bit equal to a live
  :class:`~repro.eval.victim_analysis.VictimCollector` replay;
* a set-level eviction heatmap (which cache sets the policy churns);
* the Belady regret summary with its epoch-bucketed breakdown;
* the top-N worst-decisions drill-down with full feature snapshots.
"""

from __future__ import annotations

from pathlib import Path

from repro.eval.reporting import format_table
from repro.eval.timeline import render_sparkline
from repro.eval.victim_analysis import VictimStatistics
from repro.telemetry.decisions import (
    KIND_EVICT,
    event_from_json,
    read_decision_log,
)

#: Width of the per-set eviction heatmap sparkline.
HEATMAP_WIDTH = 64


def load_decision_cells(path, workload: str = None, policy: str = None) -> list:
    """Load a decision log, optionally filtered by workload/policy name."""
    cells = read_decision_log(path)
    if workload:
        cells = [cell for cell in cells if workload in str(cell.get("workload"))]
    if policy:
        cells = [cell for cell in cells if policy in str(cell.get("policy"))]
    if not cells:
        raise ValueError(
            f"no decision-log cells match workload={workload!r} "
            f"policy={policy!r} in {path}"
        )
    return cells


def _cell_summary(cell: dict) -> dict:
    """The cell's aggregate counters (derived from events when absent)."""
    summary = cell.get("summary")
    if summary is not None:
        return summary
    # Binary logs carry only the event stream; rebuild what we can.
    events = [event_from_json(entry) for entry in cell.get("events", ())]
    graded = [event.grade for event in events if event.grade != 127]
    optimal = sum(1 for grade in graded if grade == 1)
    harmful = sum(1 for grade in graded if grade == -1)
    neutral = len(graded) - optimal - harmful
    return {
        "evictions": len(events),
        "sampled": len(events),
        "dropped": 0,
        "graded": len(graded),
        "optimal": optimal,
        "neutral": neutral,
        "harmful": harmful,
        "regret_x2": neutral + 2 * harmful,
        "violations": len(cell.get("violations", ())),
    }


def regret_rows(cells) -> list:
    """One regret-summary row per cell (for the top-level table)."""
    rows = []
    for cell in cells:
        summary = _cell_summary(cell)
        graded = summary.get("graded", 0)
        row = {
            "workload": cell.get("workload"),
            "policy": cell.get("policy"),
            "evictions": summary.get("evictions", 0),
            "graded": graded,
        }
        if graded:
            row["optimal%"] = round(100 * summary["optimal"] / graded, 2)
            row["harmful%"] = round(100 * summary["harmful"] / graded, 2)
            row["regret"] = round(summary["regret_x2"] / (2 * graded), 4)
        else:
            row["optimal%"] = row["harmful%"] = row["regret"] = "-"
        rows.append(row)
    return rows


def _epoch_regret_series(cell: dict) -> list:
    epochs = cell.get("epochs", {})
    series = []
    for decisions, neutral, harmful in zip(
        epochs.get("decisions", ()),
        epochs.get("neutral", ()),
        epochs.get("harmful", ()),
    ):
        series.append(
            (neutral + 2 * harmful) / (2 * decisions) if decisions else 0.0
        )
    return series


def victim_profile_block(cell: dict) -> str:
    """Figures 5-7 for one cell, from its logged events."""
    events = [event_from_json(entry) for entry in cell.get("events", ())]
    stats = VictimStatistics.from_events(events)
    lines = []
    if not stats.victims:
        return "  (no eviction events logged)"
    ages = ", ".join(
        f"{name}={value:.1f}" for name, value in stats.avg_age_by_type.items()
    )
    lines.append(f"  victims: {stats.victims} (sampled)")
    lines.append(f"  avg age since last access by type (fig 5): {ages}")
    hits = stats.hits_histogram
    lines.append(
        "  hits since insertion (fig 6): "
        + ", ".join(f"{key}: {100 * hits.get(key, 0.0):.1f}%"
                    for key in ("0", "1", ">1"))
    )
    recency = stats.recency_histogram
    if recency:
        # The log does not carry the cache geometry; the highest way index
        # touched by an eviction recovers the associativity.
        ways = 1 + max(
            (event.way for event in events if event.kind == KIND_EVICT),
            default=max(recency),
        )
        ways = max(ways, max(recency) + 1)
        series = [recency.get(r, 0.0) for r in range(ways)]
        lines.append(
            f"  recency distribution (fig 7, 0=LRU..{ways - 1}=MRU): "
            + render_sparkline(series, width=32)
            + f"  upper-half share {stats.upper_half_recency_fraction(ways):.2f}"
        )
    return "\n".join(lines)


def heatmap_block(cell: dict) -> str:
    """Per-set eviction heatmap (from the full per-set counts)."""
    set_evictions = cell.get("set_evictions")
    if not set_evictions:
        return "  (no per-set counts in this log)"
    counts = {int(key): value for key, value in set_evictions.items()}
    num_sets = max(counts) + 1
    series = [counts.get(index, 0) for index in range(num_sets)]
    hottest = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:5]
    hot = ", ".join(f"set {index}: {count}" for index, count in hottest)
    return (
        f"  evictions across {num_sets} sets: "
        + render_sparkline(series, width=HEATMAP_WIDTH)
        + f"\n  hottest sets: {hot}"
    )


def worst_decisions_block(cell: dict, top: int = 10) -> str:
    """The top-N worst (most harmful) decisions with feature snapshots."""
    worst = cell.get("worst", ())[:top]
    if not worst:
        return "  (no harmful decisions recorded)"
    rows = []
    for entry in worst:
        rows.append({
            "severity": entry.get("severity"),
            "index": entry.get("index"),
            "set": entry.get("set"),
            "way": entry.get("way"),
            "victim": hex(entry.get("victim_line", 0)),
            "age": entry.get("victim_age_last"),
            "hits": entry.get("victim_hits"),
            "rec": entry.get("victim_recency"),
            "type": entry.get("victim_last_type"),
            "inserted pc": hex(entry.get("pc", 0)),
        })
    return format_table(
        rows,
        headers=["severity", "index", "set", "way", "victim", "age",
                 "hits", "rec", "type", "inserted pc"],
        title="worst decisions (severity = victim reuse brought forward)",
    )


def violations_block(cell: dict) -> str:
    violations = cell.get("violations", ())
    if not violations:
        return ""
    lines = [f"  {len(violations)} contract violation(s):"]
    for entry in violations[:5]:
        detail = entry.get("detail", "(binary log: no detail)")
        lines.append(f"    at access {entry.get('index')}: {detail}")
    if len(violations) > 5:
        lines.append(f"    ... and {len(violations) - 5} more")
    return "\n".join(lines)


def render_inspection(cells, top: int = 10) -> str:
    """The full ``repro inspect`` report for a list of log cells."""
    blocks = [format_table(
        regret_rows(cells),
        headers=["workload", "policy", "evictions", "graded",
                 "optimal%", "harmful%", "regret"],
        title=f"decision log: {len(cells)} cell(s)",
    )]
    for cell in cells:
        summary = _cell_summary(cell)
        title = (
            f"=== {cell.get('workload')} / {cell.get('policy')} "
            f"(sample rate {cell.get('sample_rate', 1)}, "
            f"{summary.get('sampled', 0)} of {summary.get('evictions', 0)} "
            f"evictions logged"
            + (f", {summary['dropped']} dropped" if summary.get("dropped") else "")
            + ") ==="
        )
        parts = [title, victim_profile_block(cell), heatmap_block(cell)]
        series = _epoch_regret_series(cell)
        if any(series) or summary.get("graded"):
            graded = summary.get("graded", 0)
            mean = summary.get("regret_x2", 0) / (2 * graded) if graded else 0.0
            parts.append(
                f"  regret per epoch: {render_sparkline(series, width=32)} "
                f"(mean {mean:.4f}; 0 = always OPT, 1 = always harmful)"
            )
        if cell.get("worst") or summary.get("graded"):
            parts.append(worst_decisions_block(cell, top=top))
        violations = violations_block(cell)
        if violations:
            parts.append(violations)
        blocks.append("\n".join(parts))
    return "\n\n".join(blocks)


def load_object_decision_cells(path, workload: str = None,
                               policy: str = None) -> list:
    """Load an object decision log, optionally filtered (same contract as
    :func:`load_decision_cells`)."""
    from repro.telemetry.object_decisions import read_object_decision_log

    cells = read_object_decision_log(path)
    if workload:
        cells = [cell for cell in cells if workload in str(cell.get("workload"))]
    if policy:
        cells = [cell for cell in cells if policy in str(cell.get("policy"))]
    if not cells:
        raise ValueError(
            f"no object decision-log cells match workload={workload!r} "
            f"policy={policy!r} in {path}"
        )
    return cells


def render_object_inspection(cells, top: int = 10) -> str:
    """The ``repro inspect`` report for object-cache decision logs:
    per-cell regret table, size-vs-victim profiles, and the largest graded
    victims (sampled events)."""
    from repro.telemetry.object_decisions import render_size_profile

    blocks = [format_table(
        regret_rows(cells),
        headers=["workload", "policy", "evictions", "graded",
                 "optimal%", "harmful%", "regret"],
        title=f"object decision log: {len(cells)} cell(s)",
    )]
    blocks.append(render_size_profile(cells))
    for cell in cells:
        events = sorted(
            cell.get("events", ()),
            key=lambda event: (-event.get("size", 0), event.get("index", 0)),
        )[:top]
        if not events:
            continue
        rows = [{
            "index": event.get("index"),
            "key": event.get("key"),
            "size": event.get("size"),
            "bucket": event.get("bucket"),
            "age": event.get("age"),
            "hits": event.get("hits"),
            "seen": event.get("seen_before"),
            "incoming": event.get("incoming_size"),
            "grade": event.get("grade") or "-",
        } for event in events]
        blocks.append(format_table(
            rows,
            headers=["index", "key", "size", "bucket", "age", "hits",
                     "seen", "incoming", "grade"],
            title=(f"{cell.get('workload')} / {cell.get('policy')}: "
                   f"largest sampled victims"),
        ))
    return "\n\n".join(blocks)


def resolve_decision_log(path, default_root=".repro-runs"):
    """Resolve a run id / run dir / log path to a decision-log file.

    Raises ``ValueError`` with a friendly message (listing known runs
    where that helps) instead of letting consumers hit a traceback.
    """
    from repro.runs.supervisor import (
        DECISIONS_BIN_NAME,
        DECISIONS_NAME,
        list_runs,
    )

    candidate = Path(path)
    if not candidate.exists():
        candidate = Path(default_root) / str(path)
    if not candidate.exists():
        known = ", ".join(list_runs(default_root)) or "none"
        raise ValueError(
            f"no run directory or decision log at {str(path)!r} "
            f"(known runs under {default_root}: {known})"
        )
    if candidate.is_file():
        return candidate
    for name in (DECISIONS_NAME, DECISIONS_BIN_NAME):
        log_path = candidate / name
        if log_path.is_file():
            return log_path
    raise ValueError(
        f"run directory {candidate} has no decision log "
        f"({DECISIONS_NAME} / {DECISIONS_BIN_NAME}) — was the run started "
        f"with --decisions?"
    )
