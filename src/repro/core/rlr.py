"""RLR — Reinforcement Learned Replacement (paper §IV).

RLR is the paper's contribution: a PC-free LLC replacement policy derived
from the insights of a trained RL agent.  Each line carries an Age Counter,
a Hit Register, and a Type Register; a periodically refreshed reuse-distance
estimate RD (see :mod:`repro.core.rd_estimator`) splits lines into protected
(age <= RD) and eviction candidates, and the victim is the line with the
lowest priority

    P_line = 8 * P_age + P_type + P_hit  (+ P_core on multicore, §IV-D)

with recency used to break ties (the MOST recently accessed line is evicted,
per the paper's Figure 7 insight).

Two hardware variants are provided:

* :class:`RLRUnoptPolicy` — §V "RLR(unopt)": 5-bit age counter counting set
  accesses, 2-bit hit counter, 1-bit type register, true recency tie-break.
  10 bits/line => 40KB for a 2MB 16-way LLC.
* :class:`RLRPolicy` — §IV-C optimized: 2-bit age counter advanced once per
  8 set *misses* (3-bit per-set miss counter), 1-bit hit register, 1-bit type
  register, recency approximated by the age counter (age 0 = most recent;
  remaining ties break to the lowest way index).  4 bits/line + 3 bits/set
  => 16.75KB for a 2MB 16-way LLC.
"""

from __future__ import annotations

from repro.cache.replacement.base import BYPASS, ReplacementPolicy, register_policy
from repro.core.priority import PriorityWeights, is_prefetch, line_priority
from repro.core.rd_estimator import ReuseDistanceEstimator
from repro.traces.record import AccessType


class _RLRBase(ReplacementPolicy):
    """Shared machinery for both RLR variants.

    Args:
        age_bits: Width of the per-line age counter.
        hit_bits: Width of the per-line hit counter/register.
        count_misses: If True, age counters advance on set misses (optimized
            variant); if False, on every set access (unoptimized variant).
        quantize_log2: Advance line age counters once per ``2**quantize_log2``
            counted events (optimized variant uses 3, i.e. every 8 misses).
        true_recency: Use the exact recency stack for tie-breaks; otherwise
            approximate recency with the age counter (optimized variant).
        weights: Ablation switches for the priority terms.
        enable_bypass: Bypass the fill when no line's age exceeds RD.
        num_cores: When > 1, enable the §IV-D multicore core-priority term.
        rd_multiplier_log2: log2 of the RD multiplier (paper: 1 => RD = 2 x
            average preuse distance).
    """

    rd_epoch_log2 = 5  # RD refresh every 32 demand hits (paper)
    core_update_interval = 2000  # LLC accesses between P_core updates (paper)
    core_counter_bits = 12

    def __init__(
        self,
        age_bits: int,
        hit_bits: int,
        count_misses: bool,
        quantize_log2: int,
        true_recency: bool,
        weights: PriorityWeights = PriorityWeights(),
        enable_bypass: bool = False,
        num_cores: int = 1,
        rd_multiplier_log2: int = 1,
    ) -> None:
        super().__init__()
        self.age_bits = age_bits
        self.hit_bits = hit_bits
        self.count_misses = count_misses
        self.quantize_log2 = quantize_log2
        self.true_recency = true_recency
        self.weights = weights
        self.enable_bypass = enable_bypass
        self.num_cores = num_cores
        self.age_max = (1 << age_bits) - 1
        self.hit_max = (1 << hit_bits) - 1
        self.estimator = ReuseDistanceEstimator(
            log2_hits=self.rd_epoch_log2,
            initial_rd=0,
            max_rd=self.age_max,
            multiplier_log2=rd_multiplier_log2,
        )

    def _post_bind(self):
        self._age = [[0] * self.ways for _ in range(self.num_sets)]
        self._hit = [[0] * self.ways for _ in range(self.num_sets)]
        self._prefetched = [[False] * self.ways for _ in range(self.num_sets)]
        self._line_core = [[0] * self.ways for _ in range(self.num_sets)]
        self._quantum = [0] * self.num_sets  # per-set event counter (3-bit)
        self._core_hits = [0] * self.num_cores
        self._core_priority = [0] * self.num_cores
        self._llc_accesses = 0

    @property
    def reuse_distance(self) -> int:
        """The current RD estimate (in age-counter units)."""
        return self.estimator.rd

    # -- counter maintenance ---------------------------------------------

    def _advance_ages(self, set_index: int) -> None:
        """Advance the set's line age counters by one quantum event."""
        quantum_mask = (1 << self.quantize_log2) - 1
        self._quantum[set_index] = (self._quantum[set_index] + 1) & quantum_mask
        if self._quantum[set_index] != 0:
            return
        ages = self._age[set_index]
        for way in range(self.ways):
            if ages[way] < self.age_max:
                ages[way] += 1

    def _tick_access(self, set_index: int) -> None:
        if not self.count_misses:
            self._advance_ages(set_index)

    def _tick_miss(self, set_index: int) -> None:
        if self.count_misses:
            self._advance_ages(set_index)

    def _tick_core(self, access) -> None:
        if self.num_cores <= 1:
            return
        self._llc_accesses += 1
        if self._llc_accesses % self.core_update_interval == 0:
            self._update_core_priorities()

    def _update_core_priorities(self) -> None:
        # Rank cores by demand hits; more hits => higher priority (0..3).
        order = sorted(range(self.num_cores), key=lambda c: self._core_hits[c])
        for rank, core in enumerate(order):
            self._core_priority[core] = min(rank, 3)
        counter_max = (1 << self.core_counter_bits) - 1
        self._core_hits = [0] * self.num_cores
        del counter_max  # counters reset each interval; saturation unused

    # -- policy hooks -------------------------------------------------------

    def on_hit(self, set_index, way, line, access):
        self._tick_access(set_index)
        self._tick_core(access)
        if access.access_type.is_demand:
            # The age counter value on a demand hit IS the (quantized)
            # preuse distance; it feeds the RD accumulator (Figure 9).
            self.estimator.record_demand_hit(self._age[set_index][way])
            if self.num_cores > 1:
                core = self._line_core[set_index][way]
                self._core_hits[core] = min(
                    self._core_hits[core] + 1, (1 << self.core_counter_bits) - 1
                )
        self._age[set_index][way] = 0
        if self._hit[set_index][way] < self.hit_max:
            self._hit[set_index][way] += 1
        self._prefetched[set_index][way] = is_prefetch(access.access_type)

    def on_miss(self, set_index, access):
        self._tick_access(set_index)
        self._tick_miss(set_index)
        self._tick_core(access)

    def on_fill(self, set_index, way, line, access):
        self._age[set_index][way] = 0
        self._hit[set_index][way] = 0
        self._prefetched[set_index][way] = is_prefetch(access.access_type)
        self._line_core[set_index][way] = access.core

    # -- victim selection ---------------------------------------------------

    def _priority(self, set_index: int, way: int) -> int:
        core_priority = 0
        if self.num_cores > 1:
            core_priority = self._core_priority[self._line_core[set_index][way]]
        return line_priority(
            age=self._age[set_index][way],
            reuse_distance=self.estimator.rd,
            last_access_was_prefetch=self._prefetched[set_index][way],
            hit_register=self._hit[set_index][way],
            core_priority=core_priority,
            weights=self.weights,
        )

    def victim(self, set_index, cache_set, access):
        # Hot path: inline the Figure 8 priority computation (the reference
        # implementation lives in repro.core.priority; unit tests check the
        # two agree).  Tie-breaks are folded into a single-pass min key:
        # unopt = (priority, -recency) [evict MOST recent among lowest],
        # opt   = (priority, age, way) [age approximates recency; then
        # lowest way index].
        ages = self._age[set_index]
        hits = self._hit[set_index]
        prefetched = self._prefetched[set_index]
        rd = self.estimator.rd
        lines = cache_set.lines
        weights = self.weights
        use_age, use_type, use_hit = weights.use_age, weights.use_type, weights.use_hit
        multicore = self.num_cores > 1
        best_way = -1
        best_key = None
        any_age_beyond_rd = False
        for way in range(self.ways):
            line = lines[way]
            if not line.valid:
                continue
            age = ages[way]
            if age > rd:
                any_age_beyond_rd = True
            priority = 0
            if use_age and age <= rd:
                priority += 8
            if use_type and not prefetched[way]:
                priority += 1
            if use_hit and hits[way]:
                priority += 1
            if multicore:
                priority += self._core_priority[self._line_core[set_index][way]]
            if self.true_recency:
                key = (priority, -line.recency)
            else:
                key = (priority, age, way)
            if best_key is None or key < best_key:
                best_key = key
                best_way = way
        if self.enable_bypass and not any_age_beyond_rd:
            return BYPASS
        return best_way


@register_policy
class RLRPolicy(_RLRBase):
    """Optimized RLR (§IV-C): 16.75KB for a 2MB 16-way LLC."""

    name = "rlr"

    def __init__(
        self,
        weights: PriorityWeights = PriorityWeights(),
        enable_bypass: bool = False,
        num_cores: int = 1,
        age_bits: int = 2,
    ) -> None:
        super().__init__(
            age_bits=age_bits,
            hit_bits=1,
            count_misses=True,
            quantize_log2=3,
            true_recency=False,
            weights=weights,
            enable_bypass=enable_bypass,
            num_cores=num_cores,
        )

    @classmethod
    def overhead_bits(cls, config, num_cores: int = 1):
        per_line = 2 + 1 + 1  # age + hit + type
        per_set = 3  # quantum (set-miss) counter
        per_core = cls.core_counter_bits if num_cores > 1 else 0
        return (
            config.num_lines * per_line
            + config.num_sets * per_set
            + num_cores * per_core
        )


@register_policy
class RLRUnoptPolicy(_RLRBase):
    """Unoptimized RLR (§V "RLR(unopt)"): 40KB for a 2MB 16-way LLC."""

    name = "rlr_unopt"

    def __init__(
        self,
        weights: PriorityWeights = PriorityWeights(),
        enable_bypass: bool = False,
        num_cores: int = 1,
        age_bits: int = 5,
        hit_bits: int = 2,
        rd_multiplier_log2: int = 1,
    ) -> None:
        super().__init__(
            age_bits=age_bits,
            hit_bits=hit_bits,
            count_misses=False,
            quantize_log2=0,
            true_recency=True,
            weights=weights,
            enable_bypass=enable_bypass,
            num_cores=num_cores,
            rd_multiplier_log2=rd_multiplier_log2,
        )

    @classmethod
    def overhead_bits(cls, config, num_cores: int = 1):
        # The paper counts 10 bits/line (5b age + 2b hit + 1b type + recency
        # share) => 40KB at 2MB/16-way.
        per_core = cls.core_counter_bits if num_cores > 1 else 0
        return config.num_lines * 10 + num_cores * per_core


def make_rlr_for_cores(num_cores: int, optimized: bool = True) -> _RLRBase:
    """Convenience constructor for the §IV-D multicore configuration."""
    if optimized:
        return RLRPolicy(num_cores=num_cores)
    return RLRUnoptPolicy(num_cores=num_cores)


def _make_rlr_tuned(**kwargs) -> RLRUnoptPolicy:
    """RLR re-tuned for this repository's traffic mix ("rlr_tuned").

    The paper's 5-bit age counter and RD = 2 x average-preuse were chosen
    empirically for their ChampSim traffic (§IV-C).  Our synthetic streams
    carry a larger non-demand share, inflating per-set distances, so the
    same §IV-C tuning procedure lands at a 7-bit counter and a 4x RD
    multiplier (still a single shift in hardware; ~12 bits/line => 48KB at
    2MB).  See EXPERIMENTS.md for the sensitivity data.
    """
    kwargs.setdefault("age_bits", 7)
    kwargs.setdefault("rd_multiplier_log2", 2)
    return RLRUnoptPolicy(**kwargs)


register_policy(_make_rlr_tuned, name="rlr_tuned")
