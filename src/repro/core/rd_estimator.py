"""Reuse-distance (RD) estimation for RLR (paper §IV-A/§IV-B).

On every demand hit, the hitting line's age counter value (its preuse
distance) is sent to an accumulator.  Every ``2**log2_hits`` demand hits, the
estimate is refreshed as

    RD = 2 x (accumulated preuse / number of hits)

which hardware implements as a single right shift of the accumulator by
``log2_hits - 1`` (average = shift right by log2_hits, double = shift left
by 1).  This module models exactly that arithmetic.
"""

from __future__ import annotations


class ReuseDistanceEstimator:
    """Hardware-faithful RD computation: accumulate, then shift.

    Args:
        log2_hits: log2 of the demand-hit epoch length (paper: 5, i.e. 32).
        initial_rd: RD used before the first epoch completes.
        max_rd: Saturation bound for RD (bounded by the age-counter range).
        multiplier_log2: log2 of the RD multiplier applied to the average
            preuse distance (paper: 1, i.e. RD = 2 x average).  Still a
            single shift in hardware; exposed because the best multiplier
            depends on the traffic mix (see EXPERIMENTS.md's "rlr_tuned").
    """

    def __init__(
        self,
        log2_hits: int = 5,
        initial_rd: int = 0,
        max_rd: int = None,
        multiplier_log2: int = 1,
    ):
        if log2_hits < 1:
            raise ValueError("log2_hits must be >= 1 (epoch of at least 2 hits)")
        if not 0 <= multiplier_log2 <= log2_hits:
            raise ValueError("multiplier_log2 must be in [0, log2_hits]")
        self.log2_hits = log2_hits
        self.epoch_hits = 1 << log2_hits
        self.max_rd = max_rd
        self.multiplier_log2 = multiplier_log2
        self.rd = initial_rd
        self._accumulator = 0
        self._hits = 0
        self.epochs_completed = 0

    def record_demand_hit(self, age_value: int) -> None:
        """Feed one demand hit's age-counter value into the accumulator."""
        self._accumulator += age_value
        self._hits += 1
        if self._hits == self.epoch_hits:
            self._refresh()

    def _refresh(self) -> None:
        # average (>> log2_hits) then multiply (<< multiplier_log2): a
        # single right shift by (log2_hits - multiplier_log2).
        new_rd = self._accumulator >> (self.log2_hits - self.multiplier_log2)
        if self.max_rd is not None:
            new_rd = min(new_rd, self.max_rd)
        self.rd = new_rd
        self._accumulator = 0
        self._hits = 0
        self.epochs_completed += 1
