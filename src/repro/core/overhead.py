"""Hardware storage-overhead accounting (reproduces Table I).

For every implemented policy the overhead is *computed* from its state
(bits/line, bits/set, tables) via the policy's ``overhead_bits`` classmethod.
The MPPPB implementation in this repository is a reduced 6-perspective build
(17KB); its Table I row reports the full publication design's 28KB so the
table matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.cache.replacement.glider import GliderPolicy
from repro.cache.replacement.hawkeye import HawkeyePolicy
from repro.cache.replacement.kpc import KPCRPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import DRRIPPolicy
from repro.cache.replacement.ship import SHiPPolicy, SHiPPPPolicy
from repro.core.rlr import RLRPolicy, RLRUnoptPolicy


@dataclass(frozen=True)
class OverheadRow:
    """One row of Table I."""

    policy: str
    uses_pc: bool
    kib: float
    paper_kib: float  #: value reported in the paper, for comparison


def _scale(paper_kib_at_2mb: float, config: CacheConfig) -> float:
    """Scale a published 2MB/16-way overhead to another cache size.

    Used only for policies we do not implement; per-line state dominates all
    of them, so linear scaling in line count is the right model.
    """
    lines_at_2mb = 2 * 1024 * 1024 // 64
    return paper_kib_at_2mb * config.num_lines / lines_at_2mb


#: Paper-reported overheads for a 16-way 2MB cache (Table I).
PAPER_OVERHEAD_KIB = {
    "lru": 16.0,
    "drrip": 8.0,
    "kpc_r": 8.57,
    "mpppb": 28.0,
    "ship": 14.0,
    "ship++": 20.0,
    "hawkeye": 28.0,
    "glider": 61.6,
    "rlr": 16.75,
    "rlr_unopt": 40.0,
}


def table1(config: CacheConfig = None) -> list:
    """Compute Table I for ``config`` (default: the paper's 2MB 16-way LLC).

    Returns :class:`OverheadRow` entries in the paper's row order, with RLR
    (unopt) appended.
    """
    if config is None:
        config = CacheConfig("LLC", 2 * 1024 * 1024, 16, latency=26)
    rows = [
        OverheadRow("lru", False, LRUPolicy.overhead_kib(config), 16.0),
        OverheadRow("drrip", False, DRRIPPolicy.overhead_kib(config), 8.0),
        OverheadRow("kpc_r", False, KPCRPolicy.overhead_kib(config), 8.57),
        OverheadRow("mpppb", True, _scale(28.0, config), 28.0),
        OverheadRow("ship", True, SHiPPolicy.overhead_kib(config), 14.0),
        OverheadRow("ship++", True, SHiPPPPolicy.overhead_kib(config), 20.0),
        OverheadRow("hawkeye", True, HawkeyePolicy.overhead_kib(config), 28.0),
        OverheadRow("glider", True, GliderPolicy.overhead_kib(config), 61.6),
        OverheadRow(
            "rlr", False, RLRPolicy.overhead_bits(config) / 8 / 1024, 16.75
        ),
        OverheadRow(
            "rlr_unopt",
            False,
            RLRUnoptPolicy.overhead_bits(config) / 8 / 1024,
            40.0,
        ),
    ]
    return rows


def rlr_overhead_kib(llc_size_bytes: int, num_cores: int = 1) -> float:
    """RLR storage overhead for a given LLC size (paper: 16.75KB @ 2MB,
    67KB @ 8MB)."""
    config = CacheConfig("LLC", llc_size_bytes, 16, latency=26)
    return RLRPolicy.overhead_bits(config, num_cores=num_cores) / 8 / 1024
