"""The paper's contribution: RLR and its hardware accounting."""

from repro.core.overhead import OverheadRow, rlr_overhead_kib, table1
from repro.core.priority import (
    AGE_WEIGHT,
    PriorityWeights,
    age_priority,
    hit_priority,
    line_priority,
    type_priority,
)
from repro.core.rd_estimator import ReuseDistanceEstimator
from repro.core.rlr import RLRPolicy, RLRUnoptPolicy, make_rlr_for_cores

__all__ = [
    "AGE_WEIGHT",
    "OverheadRow",
    "PriorityWeights",
    "ReuseDistanceEstimator",
    "RLRPolicy",
    "RLRUnoptPolicy",
    "age_priority",
    "hit_priority",
    "line_priority",
    "make_rlr_for_cores",
    "rlr_overhead_kib",
    "table1",
    "type_priority",
]
