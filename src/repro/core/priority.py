"""RLR priority computation (paper §IV-A, Figure 8).

Each line's priority is a weighted sum

    P_line = 8 * P_age + P_type + P_hit        (+ P_core on multicore)

with P_age in {0, 1} (1 while the line's age is below the estimated reuse
distance RD), P_type in {0, 1} (0 if the last access was a prefetch), and
P_hit in {0, 1} (1 once the line has been hit).  The weight 8 comes from the
paper's hill-climbing analysis (preuse distance dominates; 8 = one 3-bit left
shift in hardware).  The line with the LOWEST priority is evicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces.record import AccessType

#: Hardware weight of the age priority (left shift by 3).
AGE_WEIGHT = 8


@dataclass(frozen=True)
class PriorityWeights:
    """Ablation switches for the priority terms (§V-B ablation study)."""

    use_age: bool = True
    use_type: bool = True
    use_hit: bool = True


def age_priority(age: int, reuse_distance: int) -> int:
    """P_age: 1 if the line has not yet reached the estimated RD, else 0."""
    return 1 if age <= reuse_distance else 0


def type_priority(last_access_was_prefetch: bool) -> int:
    """P_type: 0 for non-reused prefetched lines, 1 otherwise."""
    return 0 if last_access_was_prefetch else 1


def hit_priority(hit_register: int) -> int:
    """P_hit: 1 once the line has received at least one hit."""
    return 1 if hit_register > 0 else 0


def line_priority(
    age: int,
    reuse_distance: int,
    last_access_was_prefetch: bool,
    hit_register: int,
    core_priority: int = 0,
    weights: PriorityWeights = PriorityWeights(),
) -> int:
    """Compute P_line for one cache line (Figure 8 flowchart)."""
    priority = core_priority
    if weights.use_age:
        priority += AGE_WEIGHT * age_priority(age, reuse_distance)
    if weights.use_type:
        priority += type_priority(last_access_was_prefetch)
    if weights.use_hit:
        priority += hit_priority(hit_register)
    return priority


def is_prefetch(access_type: AccessType) -> bool:
    """Whether an access type sets the RLR type register to 'prefetch'."""
    return access_type == AccessType.PREFETCH
