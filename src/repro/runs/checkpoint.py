"""Epoch-level training checkpoints (resumable ``repro train``).

A checkpoint captures *everything* that evolves across training epochs so a
resumed run is bit-identical to an uninterrupted one:

* the agent's mutable state (network weights + Adam moments + step counter,
  target network, replay buffer contents and cursor, exploration and
  sampling RNG states, decision/train counters) via
  :meth:`repro.rl.agent.DQNAgent.state_dict`;
* the feature extractor's running-max normalization state (it persists
  across epochs and changes every state vector it emits);
* the completed-epoch counter and last training hit rate.

A **fingerprint** of the hyper-parameters and feature layout guards against
resuming with a different configuration — a mismatch raises
:class:`CheckpointError` instead of silently training a chimera.  Files are
pickles wrapped in the checksummed frame container
(:mod:`repro.store.frames`, family ``"training-checkpoint"``) written
atomically (temp + fsync + rename), so a crash mid-save leaves the previous
epoch's checkpoint intact and any torn write, truncation, or bit flip is a
typed :class:`CheckpointError` (chaining the underlying
:class:`~repro.store.errors.ArtifactCorruptionError`) rather than a pickle
explosion.  Legacy bare-pickle checkpoints written before the integrity
layer still load.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.store.errors import ArtifactCorruptionError
from repro.store.frames import is_framed, read_artifact, write_artifact

#: Bump on layout changes to invalidate old checkpoints.
CHECKPOINT_VERSION = 1

#: Frame-container family tag for training checkpoints.
CHECKPOINT_FAMILY = "training-checkpoint"


class CheckpointError(RuntimeError):
    """Unreadable, version-incompatible, or mismatched checkpoint."""


@dataclass
class TrainingCheckpoint:
    """State captured after each completed training epoch."""

    epoch: int  #: completed epochs (resume starts at this index)
    agent_state: dict
    norm_maxima: dict  #: FeatureExtractor running-max state
    fingerprint: dict  #: hyper-parameters + feature layout guard
    train_hit_rate: float = 0.0


def save_training_checkpoint(path, checkpoint: TrainingCheckpoint) -> None:
    """Atomically persist a checkpoint (crash-safe against SIGKILL)."""
    payload = {
        "version": CHECKPOINT_VERSION,
        "epoch": checkpoint.epoch,
        "agent_state": checkpoint.agent_state,
        "norm_maxima": checkpoint.norm_maxima,
        "fingerprint": checkpoint.fingerprint,
        "train_hit_rate": checkpoint.train_hit_rate,
    }
    write_artifact(
        path,
        CHECKPOINT_FAMILY,
        pickle.dumps(payload, pickle.HIGHEST_PROTOCOL),
        version=CHECKPOINT_VERSION,
    )


def load_training_checkpoint(path, fingerprint=None) -> TrainingCheckpoint:
    """Load and validate a checkpoint written by :func:`save_training_checkpoint`.

    ``fingerprint`` (when given) must match the stored one exactly; the
    error message names every differing key to make mismatches debuggable.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            head = handle.read(4)
        if is_framed(head):
            raw = read_artifact(path, family=CHECKPOINT_FAMILY)
            payload = pickle.loads(raw)
        else:
            # Legacy bare-pickle checkpoint (pre-integrity-layer).
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
    except FileNotFoundError:
        raise
    except ArtifactCorruptionError as error:
        raise CheckpointError(
            f"checkpoint {path} failed its integrity check "
            f"({error.reason}{error.locate()}): {error}"
        ) from error
    except Exception as error:
        raise CheckpointError(
            f"checkpoint {path} is unreadable ({error.__class__.__name__}: "
            f"{error})"
        ) from error
    if not isinstance(payload, dict) or "agent_state" not in payload:
        raise CheckpointError(f"checkpoint {path} has an unexpected layout")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {payload.get('version')!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    stored = payload.get("fingerprint", {})
    if fingerprint is not None and stored != fingerprint:
        keys = sorted(
            key
            for key in set(stored) | set(fingerprint)
            if stored.get(key) != fingerprint.get(key)
        )
        raise CheckpointError(
            f"checkpoint {path} was written with a different configuration "
            f"(mismatched: {', '.join(keys) or 'layout'})"
        )
    return TrainingCheckpoint(
        epoch=int(payload.get("epoch", 0)),
        agent_state=payload["agent_state"],
        norm_maxima=dict(payload.get("norm_maxima", {})),
        fingerprint=stored,
        train_hit_rate=float(payload.get("train_hit_rate", 0.0)),
    )
