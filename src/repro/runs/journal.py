"""Append-only JSONL run journal (the sweep's crash-safe progress record).

A :class:`RunJournal` is a list of JSON entries, one per line, persisted
under a run directory.  Appends are atomic (the whole file is rewritten via
write-temp/fsync/rename — entries are few and small, so the rewrite is
cheap) which means a reader never observes a torn line: after a SIGKILL the
journal holds exactly the entries whose appends completed.

The journal itself is schema-agnostic; the sweep engine
(:mod:`repro.eval.parallel`) defines the ``{"type": "cell", ...}`` entries
it stores and reloads to skip finished (workload, policy) cells on
``--resume``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.runs.atomic import atomic_write_text


class RunJournal:
    """Crash-safe JSONL entry log under a run directory."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lines = None  # raw lines, loaded lazily

    def __len__(self) -> int:
        return len(self._raw_lines())

    def _raw_lines(self) -> list:
        if self._lines is None:
            try:
                content = self.path.read_text(encoding="utf-8")
            except FileNotFoundError:
                content = ""
            self._lines = [line for line in content.splitlines() if line.strip()]
        return self._lines

    def entries(self) -> list:
        """All parseable entries, in append order (bad lines are skipped)."""
        entries = []
        for line in self._raw_lines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn or hand-damaged line: ignore, don't crash
            if isinstance(entry, dict):
                entries.append(entry)
        return entries

    def append(self, entry: dict) -> None:
        """Durably append one entry (atomic rewrite of the whole journal)."""
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        lines = self._raw_lines()
        lines.append(line)
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    def reload(self) -> None:
        """Drop the in-memory cache (re-read the file on next access)."""
        self._lines = None
