"""Append-only JSONL run journal (the sweep's crash-safe progress record).

A :class:`RunJournal` is a list of JSON entries, one per line, persisted
under a run directory.  Appends are atomic (the whole file is rewritten via
write-temp/fsync/rename — entries are few and small, so the rewrite is
cheap) which means a reader never observes a torn line: after a SIGKILL the
journal holds exactly the entries whose appends completed.

Since the artifact-integrity layer (:mod:`repro.store`), every line is a
*checksummed text frame*: the entry rides inside an envelope ::

    {"crc": "<crc32 of the canonical entry JSON>", "entry": {...}, "v": 1}

so damage that plain JSON parsing cannot see — a bit flip inside a string
value, a hand edit — fails the CRC and is counted, located, and (via
``repro fsck``) repaired by truncating to the last valid line.  Lines
written before the envelope existed (bare entry objects) are still read.

The journal itself is schema-agnostic; the sweep engine
(:mod:`repro.eval.parallel`) defines the ``{"type": "cell", ...}`` entries
it stores and reloads to skip finished (workload, policy) cells on
``--resume``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.runs.atomic import atomic_write_text

#: Envelope version (bumped on any envelope-layout change).
ENTRY_VERSION = 1


def _canonical(entry: dict) -> str:
    return json.dumps(entry, separators=(",", ":"), sort_keys=True)


def encode_journal_line(entry: dict) -> str:
    """One checksummed journal line for ``entry``."""
    body = _canonical(entry)
    crc = zlib.crc32(body.encode("utf-8"))
    return _canonical({"crc": format(crc, "08x"), "entry": entry,
                       "v": ENTRY_VERSION})


def decode_journal_line(line: str):
    """Decode one line; returns ``(entry, problem)`` (exactly one is None).

    Accepts both enveloped lines (CRC verified) and legacy bare-entry
    lines (no checksum to verify).  ``problem`` is a short reason string:
    ``"torn line (not valid JSON)"`` / ``"checksum mismatch"`` / ...
    """
    try:
        payload = json.loads(line)
    except ValueError:
        return None, "torn line (not valid JSON)"
    if not isinstance(payload, dict):
        return None, "line is not a JSON object"
    if "crc" in payload and "entry" in payload:
        entry = payload["entry"]
        if not isinstance(entry, dict):
            return None, "envelope entry is not an object"
        expected = format(
            zlib.crc32(_canonical(entry).encode("utf-8")), "08x"
        )
        if payload["crc"] != expected:
            return None, "checksum mismatch (bit rot or hand edit)"
        return entry, None
    return payload, None  # legacy bare entry (pre-integrity-layer)


@dataclass
class JournalScan:
    """Integrity scan of one journal file (what fsck consumes)."""

    entries: List[dict] = field(default_factory=list)
    #: ``(line_number, problem)`` pairs, 1-based line numbers.
    damage: List[tuple] = field(default_factory=list)
    #: number of leading lines before the first damaged one
    valid_prefix_lines: int = 0

    @property
    def ok(self) -> bool:
        return not self.damage


class RunJournal:
    """Crash-safe JSONL entry log under a run directory."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lines = None  # raw lines, loaded lazily
        self.damaged = 0  #: lines skipped by the last entries() call

    def __len__(self) -> int:
        return len(self.entries())

    def _raw_lines(self) -> list:
        if self._lines is None:
            try:
                content = self.path.read_text(encoding="utf-8")
            except FileNotFoundError:
                content = ""
            self._lines = [line for line in content.splitlines() if line.strip()]
        return self._lines

    def scan(self) -> JournalScan:
        """Full integrity scan: entries, located damage, valid prefix."""
        scan = JournalScan()
        first_damage = None
        for number, line in enumerate(self._raw_lines(), start=1):
            entry, problem = decode_journal_line(line)
            if problem is not None:
                scan.damage.append((number, problem))
                if first_damage is None:
                    first_damage = number
                continue
            scan.entries.append(entry)
        total = len(self._raw_lines())
        scan.valid_prefix_lines = (
            total if first_damage is None else first_damage - 1
        )
        return scan

    def entries(self) -> list:
        """All verified entries, in append order (bad lines are skipped).

        Damaged lines (torn, bit-flipped, hand-edited) are skipped — never
        fatal on the read path — but counted in :attr:`damaged` so callers
        can surface the loss (``repro fsck`` repairs it).
        """
        scan = self.scan()
        self.damaged = len(scan.damage)
        return scan.entries

    def append(self, entry: dict) -> None:
        """Durably append one entry (atomic rewrite of the whole journal)."""
        lines = self._raw_lines()
        lines.append(encode_journal_line(entry))
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    def truncate_to_valid_prefix(self) -> Optional[int]:
        """Repair: keep only the leading undamaged lines (fsck's tool).

        Returns the number of lines dropped, or ``None`` when the journal
        is already clean.  The damaged tail is the *caller's* job to
        quarantine first — this method only rewrites the file.
        """
        scan = self.scan()
        if scan.ok:
            return None
        lines = self._raw_lines()
        kept = lines[: scan.valid_prefix_lines]
        atomic_write_text(self.path, "\n".join(kept) + "\n" if kept else "")
        dropped = len(lines) - len(kept)
        self.reload()
        return dropped

    def reload(self) -> None:
        """Drop the in-memory cache (re-read the file on next access)."""
        self._lines = None
