"""Atomic, durable file writes (the crash-safety primitive).

Every persistent artifact in the fault-tolerance layer — run journals,
manifests, training checkpoints, prepared-workload cache entries, saved
agents — goes through :func:`atomic_write`: the content is written to a
temporary file in the *same directory* as the target, flushed and fsynced,
and then :func:`os.replace`\\ d over the target.  A crash (including SIGKILL)
at any point leaves either the complete old file or the complete new file,
never a truncated hybrid; stray ``*.tmp`` files from an interrupted write
are cleaned up on the next successful write of the same target.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write(path, writer, text: bool = False) -> None:
    """Write a file atomically: temp file + flush + fsync + rename.

    ``writer`` is called with the open temporary file handle (binary by
    default, text when ``text=True``).  If it raises, the temporary file is
    removed and the target is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temporary = tempfile.mkstemp(
        dir=path.parent, prefix=f"{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w" if text else "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise


def atomic_write_bytes(path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    atomic_write(path, lambda handle: handle.write(data))


def atomic_write_text(path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))
