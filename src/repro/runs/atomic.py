"""Atomic, durable file writes (the crash-safety primitive).

Every persistent artifact in the fault-tolerance layer — run journals,
manifests, training checkpoints, prepared-workload cache entries, saved
agents, framed :mod:`repro.store` artifacts — goes through
:func:`atomic_write`: the content is written to a temporary file in the
*same directory* as the target, flushed and fsynced, and then
:func:`os.replace`\\ d over the target.  A crash (including SIGKILL)
at any point leaves either the complete old file or the complete new file,
never a truncated hybrid; stray ``*.tmp`` files from an interrupted write
are cleaned up on the next successful write of the same target.

This is also the storage layer's fault-injection plane (site
``"atomic-write"``): :func:`repro.testing.faults.maybe_fault` can arm

* ``torn_write:<n>`` — simulate a filesystem without rename atomicity:
  only the first ``n`` bytes of the new content land in the target, and
  the caller is *not* told (silent corruption, for fsck to catch);
* ``bit_flip:<offset>`` — complete the write, then flip one bit of the
  final file (deterministic bit rot);
* ``crash_at_byte:<n>`` — die (raise
  :class:`~repro.testing.faults.SimulatedCrash`) after ``n`` bytes of the
  temp file are written — before the rename when ``n`` is short of the
  content (old file survives, temp debris remains), after it otherwise
  (new file fully landed).

The faulted path buffers the content in memory first; the no-fault path
is byte-for-byte the original streaming write.
"""

from __future__ import annotations

import io
import os
import tempfile
from pathlib import Path

from repro.testing.faults import (
    BYTE_FAULT_ACTIONS,
    SimulatedCrash,
    maybe_fault,
    parse_action,
)


def atomic_write(path, writer, text: bool = False) -> None:
    """Write a file atomically: temp file + flush + fsync + rename.

    ``writer`` is called with the open temporary file handle (binary by
    default, text when ``text=True``).  If it raises, the temporary file is
    removed and the target is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    action = maybe_fault("atomic-write", path=str(path))
    if action is not None:
        kind, value = parse_action(action)
        if kind in BYTE_FAULT_ACTIONS:
            _faulted_write(path, writer, text, kind, value)
            return
    fd, temporary = tempfile.mkstemp(
        dir=path.parent, prefix=f"{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w" if text else "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise
    _sweep_stale_temporaries(path)


def _sweep_stale_temporaries(path: Path) -> None:
    """Remove ``<name>.*.tmp`` debris an interrupted earlier write left.

    Runs only after a successful replace, so every surviving sibling that
    matches the pattern is an orphan from a crash (mkstemp always picks a
    fresh name; our own temporary was just renamed away).  Best-effort: a
    racing unlink or permission error must never fail the write itself.
    """
    prefix = f"{path.name}."
    try:
        for debris in path.parent.iterdir():
            if debris.name.startswith(prefix) and debris.name.endswith(".tmp"):
                try:
                    debris.unlink()
                except OSError:
                    pass
    except OSError:
        pass


def _faulted_write(path: Path, writer, text: bool, kind: str, value: int) -> None:
    """Apply one armed byte-fault action to this write (see module doc)."""
    buffer = io.StringIO() if text else io.BytesIO()
    writer(buffer)
    data = buffer.getvalue()
    if text:
        data = data.encode("utf-8")

    if kind == "torn_write":
        # The n-byte prefix lands in the target; the caller learns nothing.
        with open(path, "wb") as handle:
            handle.write(data[: value])
        return

    if kind == "bit_flip":
        with open(path, "wb") as handle:
            handle.write(data)
        if data:
            position = value % len(data)
            with open(path, "r+b") as handle:
                handle.seek(position)
                byte = handle.read(1)[0]
                handle.seek(position)
                handle.write(bytes([byte ^ 0x01]))
        return

    # crash_at_byte: die mid-temp-write (old file survives, debris stays)
    # or just after the rename (new file fully landed).
    fd, temporary = tempfile.mkstemp(
        dir=path.parent, prefix=f"{path.name}.", suffix=".tmp"
    )
    with os.fdopen(fd, "wb") as handle:
        handle.write(data[: value])
        handle.flush()
        os.fsync(handle.fileno())
    if value >= len(data):
        os.replace(temporary, path)
    raise SimulatedCrash(
        f"simulated crash after byte {value} of atomic write to {path}"
    )


def atomic_write_bytes(path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    atomic_write(path, lambda handle: handle.write(data))


def atomic_write_text(path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))