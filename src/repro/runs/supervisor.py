"""Run directories: durable state for resumable long-running commands.

A *run* is one invocation of a long-running entry point (today: ``repro
sweep``).  Its directory holds everything needed to resume after a crash:

.. code-block:: text

    <root>/<run-id>/
        manifest.json   # the command's arguments + status (atomic JSON)
        journal.jsonl   # completed cells (repro.runs.journal.RunJournal)
        report.csv      # final deterministic report (written on completion)
        metrics.json    # telemetry payload (with --metrics; see
                        # docs/observability.md)
        spans.jsonl     # span trace events (with --metrics)
        decisions.jsonl # per-eviction decision log (with --decisions;
        decisions.bin   # rendered by `repro inspect` — see
                        # repro.telemetry.decisions)
        artifacts.json  # cross-artifact integrity manifest (size + sha256
                        # per artifact; verified by `repro fsck`)

Run ids are allocated sequentially (``run-0001``, ``run-0002``, ...) with a
collision-safe exclusive ``mkdir``, so a freshly created root always starts
at ``run-0001`` — convenient for scripts and CI.  The manifest records the
originating arguments so ``--resume <run-id>`` can rebuild the exact same
sweep grid (identical EvalConfig, workloads, and policy lineup) and produce
a byte-identical report.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.runs.atomic import atomic_write_text
from repro.runs.journal import RunJournal
from repro.store.manifest import ArtifactManifest

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
REPORT_NAME = "report.csv"
METRICS_NAME = "metrics.json"
SPANS_NAME = "spans.jsonl"
DECISIONS_NAME = "decisions.jsonl"
DECISIONS_BIN_NAME = "decisions.bin"

#: artifact name -> integrity family recorded in ``artifacts.json``.
ARTIFACT_FAMILIES = {
    JOURNAL_NAME: "run-journal",
    REPORT_NAME: "report",
    METRICS_NAME: "metrics",
    SPANS_NAME: "spans",
    DECISIONS_NAME: "decision-log",
    DECISIONS_BIN_NAME: "decision-log-binary",
}


class SweepInterrupted(RuntimeError):
    """A journaled sweep was stopped by SIGINT/SIGTERM after a clean flush.

    Raised *after* worker processes have been reaped and every completed
    cell has been journaled, so the run can be resumed with ``--resume``.
    """

    def __init__(self, message: str, completed: int = 0) -> None:
        super().__init__(message)
        self.completed = completed  #: cells finished before the interrupt


class RunDirectory:
    """Handle on one run's on-disk state."""

    def __init__(self, path, manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest

    @property
    def run_id(self) -> str:
        return self.path.name

    @property
    def journal_path(self) -> Path:
        return self.path / JOURNAL_NAME

    @property
    def report_path(self) -> Path:
        return self.path / REPORT_NAME

    @property
    def metrics_path(self) -> Path:
        return self.path / METRICS_NAME

    @property
    def spans_path(self) -> Path:
        return self.path / SPANS_NAME

    @property
    def decisions_path(self) -> Path:
        return self.path / DECISIONS_NAME

    @property
    def decisions_bin_path(self) -> Path:
        return self.path / DECISIONS_BIN_NAME

    def journal(self) -> RunJournal:
        return RunJournal(self.journal_path)

    def _save_manifest(self) -> None:
        atomic_write_text(
            self.path / MANIFEST_NAME,
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n",
        )

    def mark(self, status: str) -> None:
        """Durably update the run's status (running/interrupted/complete)."""
        self.manifest["status"] = status
        self._save_manifest()
        if status in ("complete", "interrupted", "failed"):
            self.record_artifacts()

    def write_report(self, text: str) -> None:
        """Atomically persist the final report next to the journal."""
        atomic_write_text(self.report_path, text)
        self.record_artifacts()

    def artifact_manifest(self) -> ArtifactManifest:
        return ArtifactManifest(self.path)

    def record_artifacts(self) -> None:
        """Refresh ``artifacts.json`` for every known artifact on disk.

        Best-effort: a full disk or permission error must not fail the run
        — integrity recording guards against *silent* corruption, it is
        not itself load-bearing for the sweep.
        """
        try:
            manifest = self.artifact_manifest()
            for name, family in sorted(ARTIFACT_FAMILIES.items()):
                if (self.path / name).is_file():
                    manifest.record(name, family)
        except OSError:
            pass


def create_run(root, manifest: dict) -> RunDirectory:
    """Allocate the next run directory under ``root`` and persist a manifest."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    for attempt in range(1, 10_000):
        path = root / f"run-{attempt:04d}"
        try:
            path.mkdir()
        except FileExistsError:
            continue
        run = RunDirectory(path, dict(manifest))
        run.manifest.setdefault("status", "running")
        run._save_manifest()
        return run
    raise RuntimeError(f"run directory space exhausted under {root}")


def load_run(root, run_id: str) -> RunDirectory:
    """Open an existing run (for ``--resume``)."""
    path = Path(root) / run_id
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        known = ", ".join(list_runs(root)) or "none"
        raise ValueError(
            f"no run {run_id!r} under {root} (known runs: {known})"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    return RunDirectory(path, manifest)


def list_runs(root) -> list:
    """Run ids under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(
        entry.name
        for entry in root.iterdir()
        if entry.is_dir() and (entry / MANIFEST_NAME).is_file()
    )
