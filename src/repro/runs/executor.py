"""Process-per-task pool with watchdog timeouts and bounded retries.

:class:`concurrent.futures.ProcessPoolExecutor` cannot reap a *hung* worker
(``future.result(timeout=...)`` abandons the future but the process keeps
occupying its slot forever) and an externally killed worker breaks the whole
pool (``BrokenProcessPool`` fails every pending future).  This pool trades
worker reuse for per-task process isolation:

* every task runs in its own ``multiprocessing.Process`` with a dedicated
  pipe for the result;
* a **watchdog** kills any task that exceeds its wall-clock ``timeout`` and
  frees the slot immediately — one hung cell can never stall the pool;
* a worker that dies without reporting (SIGKILL, ``os._exit``, segfault) is
  detected via pipe EOF and surfaces as a ``crash`` outcome instead of
  poisoning other tasks;
* crashes and timeouts are retried up to ``retries`` times with exponential
  backoff plus deterministic jitter (seeded, so tests are reproducible);
  exceptions *raised inside* the task are deterministic failures and are
  never retried;
* the pool is a context manager whose exit terminates every live worker, so
  an exception (including ``KeyboardInterrupt``) in the parent leaves no
  orphan processes.

Simulation tasks dominate process start-up cost by orders of magnitude, so
the per-task fork is noise; in exchange every task is fully isolated.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Optional


class WorkerCrash(RuntimeError):
    """A worker process died without reporting a result."""


class WatchdogTimeout(RuntimeError):
    """A worker exceeded its wall-clock budget and was killed."""


def _child_main(connection, fn, args, kwargs) -> None:
    """Worker entry point: run the task, ship the outcome, exit."""
    try:
        result = fn(*args, **kwargs)
        payload = ("ok", result)
    except BaseException:
        payload = ("error", traceback.format_exc())
    try:
        connection.send(payload)
    except Exception:
        # Unpicklable result/traceback: report what we can.
        try:
            connection.send(("error", "worker result could not be pickled"))
        except Exception:
            pass
    finally:
        try:
            connection.close()
        except Exception:
            pass


@dataclass
class TaskOutcome:
    """Terminal outcome of one submitted task (after any retries)."""

    tag: object
    ok: bool
    value: object = None
    error: str = ""
    kind: str = "ok"  #: "ok" | "error" | "crash" | "timeout"
    attempts: int = 1


@dataclass
class _Task:
    fn: object
    args: tuple
    kwargs: dict
    tag: object
    attempts: int = 0
    process: object = None
    connection: object = None
    deadline: Optional[float] = None
    not_before: float = 0.0  #: retry backoff gate (monotonic time)


@dataclass
class PoolStats:
    """Observable reliability counters (surfaced on the sweep report)."""

    timeouts: int = 0
    crashes: int = 0
    retries: int = 0

    def as_dict(self) -> dict:
        return {
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "retries": self.retries,
        }


class ProcessTaskPool:
    """Bounded pool running each task in a fresh, killable process.

    Args:
        max_workers: Concurrent worker processes.
        timeout: Per-task wall-clock watchdog in seconds (None = no limit).
        retries: Extra attempts for transient failures (crash/timeout).
        backoff: Base retry delay; attempt ``n`` waits
            ``min(cap, backoff * 2**(n-1)) * uniform(1, 2)`` seconds.
        backoff_cap: Upper bound on the un-jittered delay.
        seed: Jitter RNG seed (deterministic retry schedules in tests).
        poll_interval: Parent event-loop tick in seconds.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.25,
        backoff_cap: float = 30.0,
        seed: int = 0,
        poll_interval: float = 0.05,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.poll_interval = poll_interval
        self.stats = PoolStats()
        self._rng = random.Random(seed)
        self._queue = deque()
        self._running = []

    # -- submission ---------------------------------------------------------

    def submit(self, fn, *args, tag=None, **kwargs) -> None:
        """Queue a task; results arrive via :meth:`completed`."""
        self._queue.append(_Task(fn=fn, args=args, kwargs=kwargs, tag=tag))

    def pending(self) -> int:
        return len(self._queue) + len(self._running)

    # -- lifecycle ----------------------------------------------------------

    def _start(self, task: _Task) -> None:
        parent_end, child_end = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_child_main,
            args=(child_end, task.fn, task.args, task.kwargs),
            daemon=True,
        )
        process.start()
        child_end.close()
        task.process = process
        task.connection = parent_end
        task.attempts += 1
        task.deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        self._running.append(task)

    def _finish(self, task: _Task) -> None:
        """Join a worker that reported (or died) and release its pipe."""
        if task.process is not None:
            task.process.join()
        if task.connection is not None:
            try:
                task.connection.close()
            except Exception:
                pass
        task.process = None
        task.connection = None

    def _kill(self, task: _Task) -> None:
        """Forcibly reap a worker (watchdog expiry or pool shutdown)."""
        process = task.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(0.5)
            if process.is_alive():
                process.kill()
                process.join()
        self._finish(task)

    def _retry_or_fail(self, task: _Task, kind: str, error: str):
        """Requeue a transiently failed task, or emit its terminal outcome."""
        if task.attempts <= self.retries:
            delay = min(self.backoff_cap, self.backoff * 2 ** (task.attempts - 1))
            delay *= 1.0 + self._rng.random()  # jitter in [1, 2)
            task.not_before = time.monotonic() + delay
            task.deadline = None
            self.stats.retries += 1
            self._queue.append(task)
            return None
        return TaskOutcome(
            tag=task.tag, ok=False, error=error, kind=kind, attempts=task.attempts
        )

    # -- event loop ---------------------------------------------------------

    def _launch_eligible(self) -> None:
        now = time.monotonic()
        scanned = 0
        limit = len(self._queue)
        while self._queue and len(self._running) < self.max_workers:
            if scanned >= limit:
                break
            task = self._queue.popleft()
            scanned += 1
            if task.not_before > now:
                self._queue.append(task)  # still backing off: rotate
                continue
            self._start(task)

    def completed(self):
        """Yield a :class:`TaskOutcome` per task until the pool drains.

        Tasks may be submitted while iterating (e.g. replays scheduled as
        their workload's prepare finishes).
        """
        while self._queue or self._running:
            self._launch_eligible()
            if not self._running:
                # Everything is waiting out a retry backoff.
                soonest = min(task.not_before for task in self._queue)
                time.sleep(max(0.0, soonest - time.monotonic()))
                continue
            connections = [task.connection for task in self._running]
            ready = _wait_connections(connections, timeout=self.poll_interval)
            now = time.monotonic()
            for task in list(self._running):
                if task.connection in ready:
                    self._running.remove(task)
                    try:
                        kind, payload = task.connection.recv()
                    except (EOFError, OSError):
                        process = task.process
                        self._finish(task)  # joins, making exitcode valid
                        exit_code = process.exitcode if process else None
                        self.stats.crashes += 1
                        outcome = self._retry_or_fail(
                            task,
                            "crash",
                            f"{WorkerCrash.__name__}: worker process died "
                            f"without a result (exit code {exit_code})",
                        )
                        if outcome is not None:
                            yield outcome
                        continue
                    self._finish(task)
                    if kind == "ok":
                        yield TaskOutcome(
                            tag=task.tag, ok=True, value=payload,
                            attempts=task.attempts,
                        )
                    else:
                        # Deterministic in-task exception: never retried.
                        yield TaskOutcome(
                            tag=task.tag, ok=False, error=payload,
                            kind="error", attempts=task.attempts,
                        )
                elif task.deadline is not None and now >= task.deadline:
                    self._running.remove(task)
                    self._kill(task)
                    self.stats.timeouts += 1
                    outcome = self._retry_or_fail(
                        task,
                        "timeout",
                        f"{WatchdogTimeout.__name__}: worker exceeded the "
                        f"{self.timeout:g}s watchdog and was killed",
                    )
                    if outcome is not None:
                        yield outcome

    # -- shutdown -----------------------------------------------------------

    def shutdown(self) -> None:
        """Kill every live worker and drop queued tasks (no orphans)."""
        self._queue.clear()
        for task in list(self._running):
            self._kill(task)
        self._running.clear()

    def __enter__(self) -> "ProcessTaskPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
