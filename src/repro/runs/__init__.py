"""Fault-tolerance layer: crash-safe, resumable long-running runs.

The package provides the reliability contract shared by every long-running
entry point (sweeps, RL training):

* :mod:`repro.runs.atomic` — write-temp/fsync/rename file writes;
* :mod:`repro.runs.journal` — append-only JSONL journal of completed work;
* :mod:`repro.runs.executor` — process-per-task pool with watchdog
  timeouts and bounded, jittered retries;
* :mod:`repro.runs.supervisor` — run directories (manifest + journal +
  report) behind ``repro sweep --run-dir/--resume``;
* :mod:`repro.runs.checkpoint` — epoch-level training checkpoints behind
  ``repro train --checkpoint/--resume``.

See ``docs/reliability.md`` for the operational guide.
"""

from repro.runs.atomic import atomic_write, atomic_write_bytes, atomic_write_text
from repro.runs.checkpoint import (
    CheckpointError,
    TrainingCheckpoint,
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.runs.executor import (
    PoolStats,
    ProcessTaskPool,
    TaskOutcome,
    WatchdogTimeout,
    WorkerCrash,
)
from repro.runs.journal import RunJournal
from repro.runs.supervisor import (
    RunDirectory,
    SweepInterrupted,
    create_run,
    list_runs,
    load_run,
)

__all__ = [
    "CheckpointError",
    "PoolStats",
    "ProcessTaskPool",
    "RunDirectory",
    "RunJournal",
    "SweepInterrupted",
    "TaskOutcome",
    "TrainingCheckpoint",
    "WatchdogTimeout",
    "WorkerCrash",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "create_run",
    "list_runs",
    "load_run",
    "load_training_checkpoint",
    "save_training_checkpoint",
]
