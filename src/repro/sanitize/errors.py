"""Typed error taxonomy for the validation subsystem.

Every defensive check in :mod:`repro.sanitize` fails through one of these
exception types, so callers (the sweep engine, the CLI, CI jobs) can tell a
*data/logic* violation apart from an ordinary bug:

* :class:`PolicyContractError` — a replacement policy broke the
  :class:`~repro.cache.replacement.base.ReplacementPolicy` contract
  (out-of-range victim, unauthorized bypass, unbalanced hook lifecycle);
* :class:`TraceFormatError` — a trace file failed validation (bad magic,
  truncated tail, out-of-range field), with the byte offset / line number
  and record index in the message;
* :class:`TrainingDivergedError` — DQN training produced non-finite
  losses/weights and could not be recovered by checkpoint rollback.

``TraceFormatError`` subclasses :class:`ValueError` so pre-existing
``except ValueError`` handlers (notably the CLI's user-input handler) keep
printing a clean message instead of a traceback.
"""

from __future__ import annotations


class SanitizeError(RuntimeError):
    """Base class for validation-subsystem failures."""


class PolicyContractError(SanitizeError):
    """A replacement policy violated the victim/hook contract.

    Attributes:
        policy: Registry name of the offending policy.
        set_index: Cache set where the violation occurred (-1 if n/a).
        detail: Human-readable description of the violated rule.
    """

    def __init__(self, policy: str, detail: str, set_index: int = -1) -> None:
        self.policy = policy
        self.set_index = set_index
        self.detail = detail
        where = f" (set {set_index})" if set_index >= 0 else ""
        super().__init__(f"policy {policy!r}{where}: {detail}")


class TraceFormatError(ValueError):
    """A trace file (CSV or binary) failed format validation.

    Attributes:
        source: File path or description of the byte source.
        line: 1-based CSV line number (None for binary traces).
        offset: Byte offset of the problem (None for CSV traces).
        record: 0-based index of the offending record (None if the header
            itself is bad).
    """

    def __init__(
        self,
        source: str,
        detail: str,
        line: int = None,
        offset: int = None,
        record: int = None,
    ) -> None:
        self.source = source
        self.line = line
        self.offset = offset
        self.record = record
        where = [str(source)]
        if line is not None:
            where.append(f"line {line}")
        if offset is not None:
            where.append(f"byte offset {offset}")
        if record is not None:
            where.append(f"record {record}")
        super().__init__(f"{', '.join(where)}: {detail}")


class TrainingDivergedError(SanitizeError):
    """Training diverged (NaN/Inf loss or weights) beyond recovery.

    Attributes:
        epoch: Epoch index that kept diverging.
        strikes: How many times the epoch diverged (rollbacks + final).
        detail: Description of the last divergence signal.
    """

    def __init__(self, epoch: int, strikes: int, detail: str) -> None:
        self.epoch = epoch
        self.strikes = strikes
        self.detail = detail
        super().__init__(
            f"training diverged at epoch {epoch} "
            f"({strikes} strike(s)): {detail}"
        )
