"""The policy contract sanitizer: :class:`CheckedPolicy`.

Wraps a :class:`~repro.cache.replacement.base.ReplacementPolicy` and
enforces its contract on every decision:

* ``victim`` must return a way index in ``range(ways)``, or
  :data:`~repro.cache.replacement.base.BYPASS` only when the cache honours
  bypass; the returned way must hold a valid line when the set is full;
* every ``on_evict`` must be paired with a following ``on_fill`` before the
  next eviction in flight;
* ``bind`` must be called exactly once.

In **strict** mode a violation raises a typed
:class:`~repro.sanitize.errors.PolicyContractError` naming the policy and
set.  In **normal** mode the wrapper records the violation and degrades the
policy to LRU for the rest of the run — ``victim`` switches to
``cache_set.lru_way()`` (recency metadata is maintained by the cache
itself, so LRU needs no policy state) and the offending policy's hooks are
disconnected so corrupt internal state can no longer raise.  The first
violation per run is also counted into telemetry
(``sanitize.policy_violations``), which is free when telemetry is off.

Cost model: ``on_hit`` / ``on_miss`` are not wrapped at all — the wrapper
rebinds the inner policy's bound methods as its own instance attributes, so
the per-access hot path calls the same objects unwrapped code would.  Only
the per-miss surface (``victim`` / ``on_evict`` / ``on_fill``) pays a few
integer comparisons.  In **off** mode :func:`wrap_policy` returns the
policy itself — structurally zero cost.
"""

from __future__ import annotations

import threading

from repro.cache.replacement.base import BYPASS
from repro.telemetry import get_registry

from repro.sanitize.errors import PolicyContractError


def _noop(*args, **kwargs) -> None:
    """Replacement hook for a degraded policy (never raises)."""


class CheckedPolicy:
    """Contract-enforcing proxy around a replacement policy.

    Not a :class:`ReplacementPolicy` subclass on purpose: attribute lookups
    that the wrapper does not intercept (``name``, ``uses_pc``,
    ``needs_line_metadata``, policy-specific state) must fall through to
    the wrapped instance via ``__getattr__``, which only fires for
    *missing* attributes.

    Args:
        policy: The policy to guard.
        strict: Raise :class:`PolicyContractError` on violation instead of
            degrading to LRU.
        allow_bypass: Whether the owning cache honours ``BYPASS`` (a bypass
            from the policy is a violation otherwise).
    """

    def __init__(self, policy, strict: bool = False, allow_bypass: bool = False):
        self._inner = policy
        self._strict = strict
        self._allow_bypass = allow_bypass
        self._degraded = False
        #: True once the wrapper has observed a ``bind`` (a pre-bound
        #: policy arrives with geometry already set; that first bind
        #: happened outside the wrapper and is not double-counted).
        self._bound = getattr(policy, "num_sets", 0) > 0
        self._pending_evictions = 0
        self.violations = []  #: recorded contract-violation descriptions
        #: Serializes the degrade transition: concurrent callers (the
        #: policy server shares one wrapper across connection handlers)
        #: must record the first violation exactly once.
        self._degrade_lock = threading.Lock()
        # Per-access hooks are rebound directly: zero wrapper overhead on
        # the hit path (see module docstring).
        self.on_hit = policy.on_hit
        self.on_miss = policy.on_miss

    # -- delegation --------------------------------------------------------

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    @property
    def wrapped(self):
        """The guarded policy instance."""
        return self._inner

    @property
    def degraded(self) -> bool:
        """True once a violation has demoted the policy to LRU."""
        return self._degraded

    # -- violation handling ------------------------------------------------

    def _record(self, name, detail: str, set_index: int) -> None:
        self.violations.append(
            f"policy {name!r}"
            + (f" (set {set_index})" if set_index >= 0 else "")
            + f": {detail}"
        )
        get_registry().counter(
            "sanitize.policy_violations", policy=str(name)
        ).inc()
        # A replay with decision tracing active also logs the violation as
        # a decision-log event (violations are decisions too — the wrong
        # kind).  Imported lazily: violations are rare, and the sanitizer
        # must not depend on the tracing module at import time.
        from repro.telemetry.decisions import active_trace

        trace = active_trace()
        if trace is not None:
            trace.record_violation(str(name), detail, set_index)

    def _violate(self, detail: str, set_index: int = -1) -> None:
        name = getattr(self._inner, "name", self._inner.__class__.__name__)
        if self._strict:
            self._record(name, detail, set_index)
            raise PolicyContractError(str(name), detail, set_index=set_index)
        # Normal mode degrades to LRU; the transition (and its recording)
        # happens exactly once even when concurrent callers race past the
        # ``self._degraded`` fast checks on the contract surface.
        with self._degrade_lock:
            if self._degraded:
                return
            self._degraded = True
            # Disconnect the offending policy entirely: corrupt internal
            # state must not be able to raise from later hook calls.
            self.on_hit = _noop
            self.on_miss = _noop
            self._record(name, detail, set_index)

    # -- guarded contract surface ------------------------------------------

    def bind(self, config) -> None:
        if self._bound:
            self._violate("bind called more than once")
            if self._degraded:
                return
        self._bound = True
        self._inner.bind(config)

    def on_evict(self, set_index, way, line, access) -> None:
        if self._degraded:
            return
        if self._pending_evictions:
            self._violate(
                "on_evict while a previous eviction awaits its on_fill",
                set_index,
            )
            if self._degraded:
                return
        self._pending_evictions += 1
        self._inner.on_evict(set_index, way, line, access)

    def on_fill(self, set_index, way, line, access) -> None:
        if self._degraded:
            return
        if self._pending_evictions:
            self._pending_evictions -= 1
        self._inner.on_fill(set_index, way, line, access)

    def victim(self, set_index, cache_set, access):
        if self._degraded:
            return cache_set.lru_way()
        way = self._inner.victim(set_index, cache_set, access)
        if way == BYPASS:
            if self._allow_bypass:
                return BYPASS
            self._violate(
                "returned BYPASS but the cache does not allow bypass",
                set_index,
            )
            return cache_set.lru_way()
        valid = False
        try:
            valid = 0 <= way < cache_set.ways
        except TypeError:
            pass
        if not valid:
            self._violate(
                f"victim way {way!r} outside range(ways={cache_set.ways})",
                set_index,
            )
            return cache_set.lru_way()
        if not cache_set.lines[way].valid:
            self._violate(
                f"victim way {way} holds no valid line", set_index
            )
            return cache_set.lru_way()
        return way

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        # Locks and bound methods do not pickle; carry the inner policy and
        # the plain state, and rebuild the rest on restore.
        state = self.__dict__.copy()
        del state["_degrade_lock"]
        for hook in ("on_hit", "on_miss"):
            state[hook] = None if state[hook] is not _noop else _noop
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._degrade_lock = threading.Lock()
        for hook in ("on_hit", "on_miss"):
            if self.__dict__[hook] is None:
                self.__dict__[hook] = getattr(self._inner, hook)

    # -- introspection ------------------------------------------------------

    def assert_lifecycle_balanced(self) -> None:
        """Raise if an ``on_evict`` was never paired with an ``on_fill``.

        An end-of-run check for tests: the cache fills immediately after
        every eviction, so a non-zero balance means the driving cache (or a
        hand-written harness) broke the hook protocol.
        """
        if self._pending_evictions:
            name = getattr(self._inner, "name", "policy")
            raise PolicyContractError(
                str(name),
                f"{self._pending_evictions} on_evict call(s) without a "
                f"matching on_fill",
            )

    def __repr__(self) -> str:
        mode = "strict" if self._strict else "normal"
        return f"CheckedPolicy({self._inner!r}, mode={mode})"
