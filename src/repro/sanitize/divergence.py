"""Training divergence guard: NaN/Inf detection, rollback, backoff.

DQN training on Belady rewards can diverge — a bad learning rate, a
degenerate feature scale, or an unlucky replay batch can drive losses and
weights to NaN/Inf, after which every later epoch trains a corpse.  The
guard checks each finished epoch:

* every loss produced by the epoch must be finite;
* every network parameter (online and target) must be finite;
* the parameter magnitude must stay below an explosion threshold.

On a failed check the trainer rolls the agent back to the **last good
checkpoint** (the on-disk :mod:`repro.runs.checkpoint` file when training
with one, otherwise an in-memory snapshot taken before the epoch) and
re-runs the epoch.  The first retry is exact — bit-identical state, so a
transient cause (e.g. an injected fault) replays cleanly; later retries
apply an epsilon/learning-rate backoff to escape deterministic divergence.
After ``max_strikes`` consecutive divergences of the same epoch the guard
re-raises as :class:`~repro.sanitize.errors.TrainingDivergedError`.
"""

from __future__ import annotations

import math
import pickle

from repro.sanitize.errors import TrainingDivergedError

#: Any parameter with |value| above this counts as an exploded network.
WEIGHT_EXPLOSION_LIMIT = 1.0e6


def training_divergence(agent, epoch_losses) -> str:
    """Describe a divergence in ``agent`` after one epoch, or ``None``.

    ``epoch_losses`` is the slice of ``agent.losses`` produced by the
    epoch under inspection.
    """
    for index, loss in enumerate(epoch_losses):
        if not math.isfinite(loss):
            return f"non-finite loss {loss!r} at train step {index}"
    import numpy as np

    for network_name, network in (
        ("network", agent.network),
        ("target", getattr(agent, "_target", None)),
    ):
        if network is None:
            continue
        for parameter_name, parameter in network._parameters().items():
            bad = int(np.size(parameter) - np.isfinite(parameter).sum())
            if bad:
                return (
                    f"{bad} non-finite value(s) in {network_name}."
                    f"{parameter_name}"
                )
            peak = float(np.abs(parameter).max()) if np.size(parameter) else 0.0
            if peak > WEIGHT_EXPLOSION_LIMIT:
                return (
                    f"{network_name}.{parameter_name} exploded "
                    f"(max |w| = {peak:.3g} > {WEIGHT_EXPLOSION_LIMIT:.0e})"
                )
    return None


class DivergenceGuard:
    """Per-run strike counter + rollback/backoff bookkeeping.

    Args:
        max_strikes: Consecutive divergences of one epoch before
            :class:`TrainingDivergedError` is raised (the paper-practical
            "3 strikes" default: two rollbacks, then give up).
        backoff: Multiplier applied to epsilon and the learning rate from
            the second rollback of an epoch onward (the first retry is
            bit-exact so transient causes replay cleanly).
    """

    def __init__(self, max_strikes: int = 3, backoff: float = 0.5) -> None:
        self.max_strikes = max_strikes
        self.backoff = backoff
        self.strikes = 0
        self.rollbacks = 0  #: total rollbacks across the run (telemetry)

    def snapshot(self, agent, extractor) -> bytes:
        """Deep-copy the resumable training state (pre-epoch)."""
        return pickle.dumps(
            (agent.state_dict(), extractor.norm_state()),
            pickle.HIGHEST_PROTOCOL,
        )

    def restore(self, agent, extractor, snapshot: bytes) -> None:
        """Restore a :meth:`snapshot` into live objects."""
        agent_state, norm_maxima = pickle.loads(snapshot)
        agent.load_state_dict(agent_state)
        extractor.restore_norm_state(norm_maxima)

    def strike(self, epoch: int, detail: str) -> None:
        """Count one divergence; raise once the strikes are exhausted."""
        self.strikes += 1
        if self.strikes >= self.max_strikes:
            raise TrainingDivergedError(epoch, self.strikes, detail)
        self.rollbacks += 1

    def apply_backoff(self, agent) -> None:
        """Shrink exploration and step size (second rollback onward)."""
        if self.strikes < 2:
            return
        agent.epsilon *= self.backoff
        agent.network.learning_rate *= self.backoff
        target = getattr(agent, "_target", None)
        if target is not None:
            target.learning_rate *= self.backoff

    def clear(self) -> None:
        """An epoch finished cleanly: forget its strikes."""
        self.strikes = 0


def poison_agent(agent) -> None:
    """Corrupt an agent the way real divergence does (fault injection).

    Used by the reliability test suite via
    :func:`repro.testing.faults.poisoned`: overwrites the online network's
    first weight matrix and the latest loss with NaN, exactly the state
    the guard must detect and roll back.
    """
    nan = float("nan")
    agent.network.w1 *= nan
    agent.losses.append(nan)
