"""Contract sanitizer for the object-cache eviction/admission surface.

The object-world counterpart of :mod:`repro.sanitize.policy_guard`: a
:class:`CheckedObjectPolicy` proxy enforces the eviction contract on every
decision, and :func:`check_byte_accounting` asserts the cache's byte ledger
balances (in strict mode the scenario runner turns a drifted ledger into a
raised :class:`~repro.sanitize.errors.SanitizeError`).

The eviction contract:

* ``victim`` must return the key of a **resident** object, never the
  incoming request's key, and never from an empty cache;
* an admission hook's ``admit`` must return a bool.

Strict mode raises :class:`PolicyContractError`; normal mode records the
violation and degrades — eviction falls back to true LRU driven by the
wrapper's own recency bookkeeping (immune to the inner policy's corrupt
state), admission falls back to always-admit.  ``off`` returns the
policy/hook unwrapped.
"""

from __future__ import annotations

from repro.sanitize.errors import PolicyContractError


def _noop(*args, **kwargs) -> None:
    """Hook replacement for a degraded object policy (never raises)."""


class CheckedObjectPolicy:
    """Contract-enforcing proxy around an ``ObjectEvictionPolicy``.

    Keeps its own insertion-ordered recency map so a degraded policy can
    serve exact LRU victims without trusting the inner policy's state.
    """

    def __init__(self, policy, strict: bool = False):
        self._inner = policy
        self._strict = strict
        self._degraded = False
        self._order = {}  # key -> None, LRU -> MRU (wrapper-owned)
        self.violations = []

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    @property
    def wrapped(self):
        return self._inner

    @property
    def degraded(self) -> bool:
        return self._degraded

    def _violate(self, detail: str) -> None:
        name = getattr(self._inner, "name", self._inner.__class__.__name__)
        self.violations.append(f"object policy {name!r}: {detail}")
        if self._strict:
            raise PolicyContractError(str(name), detail)
        if not self._degraded:
            self._degraded = True
            # Disconnect the offending policy: its hooks must not raise
            # from corrupt state after the downgrade.
            self._inner.on_admit = _noop
            self._inner.on_hit = _noop
            self._inner.on_evict = _noop

    # -- lifecycle (wrapper bookkeeping + delegation) ----------------------

    def on_admit(self, obj, now):
        self._order[obj.key] = None
        if not self._degraded:
            self._inner.on_admit(obj, now)

    def on_hit(self, obj, now):
        del self._order[obj.key]
        self._order[obj.key] = None
        if not self._degraded:
            self._inner.on_hit(obj, now)

    def on_evict(self, obj, now):
        self._order.pop(obj.key, None)
        if not self._degraded:
            self._inner.on_evict(obj, now)

    # -- guarded decision surface ------------------------------------------

    def victim(self, residents, incoming, now):
        if not residents:
            self._violate("victim requested from an empty cache")
            return next(iter(self._order), None)
        if self._degraded:
            return next(iter(self._order))
        try:
            key = self._inner.victim(residents, incoming, now)
        except PolicyContractError:
            raise
        except Exception as error:  # noqa: BLE001 - the contract surface
            self._violate(f"victim raised {error.__class__.__name__}: {error}")
            return next(iter(self._order))
        if key not in residents:
            self._violate(f"victim chose non-resident key {key!r}")
            return next(iter(self._order))
        if incoming is not None and key == incoming.key:
            self._violate("victim chose the incoming request's key")
            return next(iter(self._order))
        return key


class CheckedAdmission:
    """Bool-enforcing proxy around an :class:`AdmissionHook`."""

    def __init__(self, hook, strict: bool = False):
        self._inner = hook
        self._strict = strict
        self._degraded = False
        self.violations = []

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    @property
    def degraded(self) -> bool:
        return self._degraded

    def _violate(self, detail: str) -> None:
        name = getattr(self._inner, "name", self._inner.__class__.__name__)
        self.violations.append(f"admission hook {name!r}: {detail}")
        if self._strict:
            raise PolicyContractError(str(name), detail)
        self._degraded = True

    def record(self, request, now):
        if self._degraded:
            return
        try:
            self._inner.record(request, now)
        except Exception as error:  # noqa: BLE001
            self._violate(f"record raised {error.__class__.__name__}: {error}")

    def admit(self, request, now):
        if self._degraded:
            return True
        try:
            decision = self._inner.admit(request, now)
        except PolicyContractError:
            raise
        except Exception as error:  # noqa: BLE001
            self._violate(f"admit raised {error.__class__.__name__}: {error}")
            return True
        if not isinstance(decision, bool):
            self._violate(
                f"admit returned {type(decision).__name__}, expected bool"
            )
            return True
        return decision


def wrap_object_policy(policy, mode: str = "normal"):
    """Mode-aware wrapping; ``off`` returns the policy unwrapped."""
    if mode == "off":
        return policy
    return CheckedObjectPolicy(policy, strict=(mode == "strict"))


def wrap_admission(hook, mode: str = "normal"):
    if mode == "off":
        return hook
    return CheckedAdmission(hook, strict=(mode == "strict"))


def check_byte_accounting(cache) -> list:
    """The balanced admit/evict byte invariant, one problem per line.

    Thin alias over ``ObjectCache.check_conservation`` so sanitizer callers
    (replay in strict mode, the fuzzer) have a single import point.
    """
    return cache.check_conservation()
