"""``repro.sanitize`` — validation and graceful degradation.

The defensive layer between untrusted *data and logic* (replacement
policies, trace files, training dynamics) and the simulation core.  Three
guards, one mode switch:

* **policy contract sanitizer** (:mod:`repro.sanitize.policy_guard`):
  :func:`wrap_policy` puts a :class:`CheckedPolicy` proxy in front of every
  replacement policy, enforcing victim-range/bypass/hook-lifecycle rules;
* **trace ingestion hardening** (:mod:`repro.traces.trace_io` raises the
  typed :class:`TraceFormatError` with byte offsets / line numbers, and
  supports quarantining bad records);
* **training divergence guard** (:mod:`repro.sanitize.divergence`):
  NaN/Inf detection with checkpoint rollback, surfacing
  :class:`TrainingDivergedError` after repeated strikes.

Modes (per run, via the ``REPRO_SANITIZE`` environment variable or
explicit ``sanitize=`` arguments; see docs/validation.md):

``strict``
    Violations raise typed errors immediately (CI, debugging).
``normal`` (default)
    Violations are recorded and degraded gracefully: a misbehaving policy
    falls back to LRU for the rest of its cell, bad trace records can be
    quarantined, training rolls back to the last good checkpoint.  The
    sweep engine marks affected cells ``degraded`` instead of killing the
    sweep.
``off``
    No wrapping at all — :func:`wrap_policy` returns its argument, so the
    per-access hot path is structurally identical to pre-sanitizer code
    (mirroring the telemetry ``profiled()`` guarantee).
"""

from __future__ import annotations

import os

from repro.sanitize.errors import (
    PolicyContractError,
    SanitizeError,
    TraceFormatError,
    TrainingDivergedError,
)
from repro.sanitize.policy_guard import CheckedPolicy

__all__ = [
    "CheckedPolicy",
    "DEFAULT_MODE",
    "ENV_MODE",
    "MODES",
    "PolicyContractError",
    "SanitizeError",
    "TraceFormatError",
    "TrainingDivergedError",
    "resolve_mode",
    "wrap_policy",
]

#: Environment override for the process-wide default mode.
ENV_MODE = "REPRO_SANITIZE"
#: Recognized sanitizer modes.
MODES = ("off", "normal", "strict")
#: Mode used when neither an explicit argument nor the environment says.
DEFAULT_MODE = "normal"


def resolve_mode(mode: str = None) -> str:
    """Normalize a sanitizer mode: explicit arg > environment > default.

    Raises :class:`ValueError` on an unknown mode name so typos in
    ``REPRO_SANITIZE`` or ``--sanitize`` fail loudly, not silently-off.
    """
    if mode is None:
        mode = os.environ.get(ENV_MODE) or DEFAULT_MODE
    mode = mode.strip().lower()
    if mode not in MODES:
        raise ValueError(
            f"unknown sanitize mode {mode!r}; expected one of {MODES}"
        )
    return mode


def wrap_policy(policy, mode: str = None, allow_bypass: bool = False):
    """Apply the contract sanitizer to ``policy`` according to ``mode``.

    Identity in ``off`` mode and for already-wrapped policies (idempotent,
    so the eval runner and :class:`~repro.cache.cache.Cache` can both call
    it without double-wrapping).
    """
    mode = resolve_mode(mode)
    if mode == "off" or isinstance(policy, CheckedPolicy):
        return policy
    return CheckedPolicy(
        policy, strict=(mode == "strict"), allow_bypass=allow_bypass
    )
