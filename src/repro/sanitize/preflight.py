"""Preflight validation for run inputs (``repro validate``).

Cheap, read-only checks run *before* committing a sweep or evaluation to
hours of simulation: a trace file that fails here would have failed
mid-sweep (or worse, been silently mis-parsed), and an agent ``.npz``
with NaN weights would have produced garbage hit rates.  Each validator
returns a :class:`ValidationReport`; nothing here mutates the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.sanitize.errors import TraceFormatError


@dataclass
class ValidationReport:
    """Outcome of one preflight check."""

    target: str  #: the file that was checked
    kind: str  #: "trace" | "agent"
    ok: bool = True
    errors: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    summary: str = ""  #: one human line about what was validated

    def fail(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def format(self) -> str:
        lines = [f"{'PASS' if self.ok else 'FAIL'}  {self.kind}  {self.target}"]
        if self.summary:
            lines.append(f"  {self.summary}")
        lines.extend(f"  error: {message}" for message in self.errors)
        lines.extend(f"  warning: {message}" for message in self.warnings)
        return "\n".join(lines)


def validate_trace_file(path, quarantine: bool = False) -> ValidationReport:
    """Fully parse a trace file (CSV or binary) without simulating it.

    With ``quarantine=True`` bad records are reported as warnings (the way
    a ``--quarantine`` sweep would treat them) instead of failing the
    check.
    """
    import warnings as warnings_module

    from repro.traces.trace_io import (
        TraceQuarantineWarning,
        load_trace,
        load_trace_binary,
    )

    path = Path(path)
    report = ValidationReport(target=str(path), kind="trace")
    if not path.is_file():
        report.fail("file does not exist")
        return report
    binary = path.suffix not in (".csv", ".gz", ".txt")
    if binary:
        with open(path, "rb") as handle:
            binary = handle.read(4) == b"RPTR"
    loader = load_trace_binary if binary else load_trace
    try:
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always", TraceQuarantineWarning)
            trace = loader(path, quarantine=quarantine)
        for warning in caught:
            if issubclass(warning.category, TraceQuarantineWarning):
                report.warn(str(warning.message))
    except TraceFormatError as error:
        report.fail(str(error))
        return report
    if not trace.records:
        report.fail("trace parsed but contains zero records")
        return report
    report.summary = (
        f"{'binary' if binary else 'csv'} trace {trace.name!r}: "
        f"{len(trace.records)} records, "
        f"{trace.footprint_lines()} distinct lines, "
        f"{trace.instruction_count} instructions"
    )
    return report


def validate_object_trace_file(path) -> ValidationReport:
    """Fully parse an object trace (``.objtrace``/``.objcsv``) file.

    Wraps :func:`repro.objcache.trace_io.validate_object_trace_file` (which
    keeps scanning past the first bad record) into the standard report: one
    error line per problem, with line numbers.
    """
    from repro.objcache.trace_io import load_object_trace
    from repro.objcache.trace_io import (
        validate_object_trace_file as scan_object_trace,
    )

    path = Path(path)
    report = ValidationReport(target=str(path), kind="objtrace")
    if not path.is_file():
        report.fail("file does not exist")
        return report
    for problem in scan_object_trace(path):
        report.fail(problem)
    if report.ok:
        trace = load_object_trace(path)
        report.summary = (
            f"object trace {trace.name!r}: {len(trace.requests)} requests, "
            f"{trace.unique_objects()} distinct objects, "
            f"{trace.total_bytes} bytes requested"
        )
    return report


def validate_agent_file(path) -> ValidationReport:
    """Check a trained-agent ``.npz`` (see :func:`repro.rl.trainer.save_agent`).

    Verifies the archive loads, carries every required key, that the weight
    matrices are finite and mutually consistent with the declared
    ``meta`` geometry, and that the recorded feature layout reproduces the
    declared input width on this code base.
    """
    import numpy as np

    report = ValidationReport(target=str(path), kind="agent")
    if not Path(path).is_file():
        report.fail("file does not exist")
        return report
    try:
        data = np.load(path)
    except Exception as error:  # numpy raises several unrelated types here
        report.fail(f"not a loadable .npz archive ({error})")
        return report
    required = ("w1", "b1", "w2", "b2", "meta", "features", "geometry")
    missing = [key for key in required if key not in data]
    if missing:
        report.fail(f"missing key(s): {', '.join(missing)}")
        return report
    input_size, hidden_size, output_size = (int(v) for v in data["meta"])
    shapes = {
        "w1": (input_size, hidden_size),
        "b1": (hidden_size,),
        "w2": (hidden_size, output_size),
        "b2": (output_size,),
    }
    for key, expected in shapes.items():
        array = data[key]
        if array.shape != expected:
            report.fail(
                f"{key} shape {array.shape} does not match meta-declared "
                f"{expected}"
            )
            continue
        bad = int(array.size - np.isfinite(array).sum())
        if bad:
            report.fail(f"{key} holds {bad} non-finite value(s)")
    ways, num_sets = (int(v) for v in data["geometry"])
    if ways != output_size:
        report.fail(
            f"geometry ways={ways} disagrees with network output "
            f"size {output_size}"
        )
    if report.ok:
        from repro.rl.features import FeatureExtractor

        features = [str(name) for name in data["features"]]
        try:
            extractor = FeatureExtractor(
                ways=ways, num_sets=num_sets, enabled=features
            )
        except (KeyError, ValueError) as error:
            report.fail(f"feature layout not reconstructible: {error}")
        else:
            if extractor.size != input_size:
                report.fail(
                    f"feature layout yields {extractor.size} inputs but the "
                    f"network expects {input_size}"
                )
    if report.ok:
        report.summary = (
            f"{input_size}-{hidden_size}-{output_size} network, "
            f"{len(data['features'])} features, {ways}-way x {num_sets} sets"
        )
    return report


def validate_scenario_file(path) -> ValidationReport:
    """Schema-validate a scenario file (YAML/JSON) without running it.

    Every problem the scenario loader collects — unknown keys, unknown
    policy or workload names, out-of-range geometry — becomes one error
    line, so a hand-edited scenario fails with a complete fix list.
    """
    from repro.scenarios.loader import load_scenario
    from repro.scenarios.schema import ScenarioError

    path = Path(path)
    report = ValidationReport(target=str(path), kind="scenario")
    try:
        scenario = load_scenario(path)
    except ScenarioError as error:
        for problem in error.problems:
            report.fail(problem)
        return report
    cells = (
        len(scenario.workload_names) * len(scenario.policies)
        * len(scenario.run_seeds)
    )
    kind = getattr(scenario, "scenario_kind", "cpu_cache")
    report.summary = (
        f"{kind} scenario {scenario.name!r}: "
        f"{len(scenario.workloads)} workload(s), "
        f"{len(scenario.policies)} policy(ies), {len(scenario.run_seeds)} "
        f"seed(s) -> {cells} cell(s), sanitize={scenario.sanitize}"
        + (", golden" if scenario.golden else "")
    )
    return report


def validate_bench_file(path) -> ValidationReport:
    """Preflight a ``BENCH_*.json`` snapshot or ``BENCH_history.jsonl`` log.

    Snapshots are schema-checked (bench name, schema version, numeric
    rates, environment with a git stamp, phase-sum reconciliation within
    1%); history logs are CRC-scanned with the journal framing, reporting
    damaged lines as errors (``repro fsck`` repairs them by tail
    truncation).
    """
    import json

    path = Path(path)
    report = ValidationReport(target=str(path), kind="bench")
    if path.suffix == ".jsonl":
        from repro.eval.bench_history import load_history

        try:
            payloads, damage = load_history(path)
        except OSError as error:
            report.fail(f"cannot read history: {error}")
            return report
        for number, problem in damage:
            report.fail(f"history line {number}: {problem}")
        problems = 0
        for index, payload in enumerate(payloads, start=1):
            for problem in _bench_payload_problems(payload):
                report.warn(f"entry {index}: {problem}")
                problems += 1
        report.summary = (
            f"bench history: {len(payloads)} valid entr(ies), "
            f"{len(damage)} damaged line(s), {problems} schema warning(s)"
        )
        return report
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        report.fail(f"cannot read: {error}")
        return report
    except ValueError as error:
        report.fail(f"does not parse as JSON: {error}")
        return report
    if not isinstance(payload, dict):
        report.fail("top level is not a JSON object")
        return report
    for problem in _bench_payload_problems(payload):
        report.fail(problem)
    if report.ok:
        git = payload.get("environment", {}).get("git", {}) or {}
        sha = (git.get("sha") or "untracked")[:10]
        quantities = len(payload.get("rates", {})) + len(
            payload.get("checks", {})
        )
        report.summary = (
            f"bench {payload.get('bench')!r} schema "
            f"{payload.get('schema')}: {quantities} gated quantit(ies), "
            f"git {sha}"
        )
    return report


def _bench_payload_problems(payload: dict) -> list:
    """Schema problems with one bench payload (shared snapshot/history)."""
    from repro.eval.bench import BENCH_SCHEMA_VERSION, BENCHES

    problems = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    name = payload.get("bench")
    if name not in BENCHES:
        problems.append(
            f"unknown bench name {name!r} (expected one of "
            f"{tuple(BENCHES)})"
        )
    schema = payload.get("schema")
    if not isinstance(schema, int) or schema < 1:
        problems.append(
            f"missing/invalid schema version {schema!r} "
            f"(current is {BENCH_SCHEMA_VERSION})"
        )
    elif schema > BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema {schema} is newer than this tree understands "
            f"({BENCH_SCHEMA_VERSION})"
        )
    environment = payload.get("environment")
    if not isinstance(environment, dict) or "python" not in environment:
        problems.append("environment block missing (python/machine/git)")
    elif not isinstance(environment.get("git"), dict):
        problems.append(
            "environment.git stamp missing (sha + dirty; schema >= 2)"
        )
    rates = payload.get("rates")
    if not isinstance(rates, dict):
        problems.append("rates must be an object")
    else:
        for key, rate in sorted(rates.items()):
            if not isinstance(rate, (int, float)) or rate < 0:
                problems.append(f"rate {key!r} is not a number >= 0: {rate!r}")
    for key, check in sorted((payload.get("checks") or {}).items()):
        if not isinstance(check, dict) or "ok" not in check:
            problems.append(f"check {key!r} has no ok verdict")
    for key, profile in sorted((payload.get("phases") or {}).items()):
        reconciliation = (
            profile.get("reconciliation") if isinstance(profile, dict)
            else None
        )
        if not isinstance(reconciliation, dict):
            problems.append(f"phases[{key!r}] has no reconciliation block")
            continue
        error = reconciliation.get("relative_error")
        if not isinstance(error, (int, float)) or error > 0.01:
            problems.append(
                f"phases[{key!r}] phase sum does not reconcile with loop "
                f"wall time (relative error {error!r} > 1%)"
            )
    return problems
