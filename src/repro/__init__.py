"""repro — reproduction of "Designing a Cost-Effective Cache Replacement
Policy using Machine Learning" (Sethumurugan, Yin, Sartori; HPCA 2021).

Public API highlights:

* :class:`repro.core.RLRPolicy` / :class:`repro.core.RLRUnoptPolicy` — the
  paper's contribution.
* :mod:`repro.cache` — the simulated memory hierarchy substrate.
* :mod:`repro.cache.replacement` — LRU/DRRIP/SHiP/SHiP++/Hawkeye/KPC-R/PDP/
  EVA/Belady baselines and the policy registry.
* :mod:`repro.rl` — the offline RL design pipeline (DQN agent, feature
  analysis, hill climbing).
* :mod:`repro.eval` — the experiment harness regenerating every table and
  figure (see DESIGN.md section 4).
"""

from repro.cache import CacheConfig, CacheHierarchy, HierarchyConfig
from repro.cache.replacement import POLICY_REGISTRY, make_policy
from repro.core import RLRPolicy, RLRUnoptPolicy, table1
from repro.traces import AccessType, Trace, TraceRecord

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyConfig",
    "POLICY_REGISTRY",
    "RLRPolicy",
    "RLRUnoptPolicy",
    "Trace",
    "TraceRecord",
    "make_policy",
    "table1",
    "__version__",
]
