"""Admission control for the object cache.

Eviction asks "who leaves"; admission asks the prior question CPU caches
never face: "is this object worth caching at all?".  One-hit wonders —
objects requested exactly once — waste capacity and force evictions of
objects that would have hit, so a cheap gate in front of the cache is often
worth more than a smarter eviction policy (DEAP Cache, TinyLFU).

Hooks follow the registry idiom; ``record`` sees every request (hit or
miss) so frequency gates can learn popularity even for objects they reject.
"""

from __future__ import annotations

from .core import ObjectCacheError

OBJECT_ADMISSION_REGISTRY = {}


def register_admission(cls=None, *, name=None):
    def wrap(target):
        key = name or getattr(target, "name", None)
        if not key:
            raise ValueError("admission hook needs a registry name")
        if key in OBJECT_ADMISSION_REGISTRY:
            raise ValueError(f"duplicate admission hook name: {key!r}")
        OBJECT_ADMISSION_REGISTRY[key] = target
        return target

    return wrap(cls) if cls is not None else wrap


def admission_names() -> list:
    return sorted(OBJECT_ADMISSION_REGISTRY)


def make_admission(name: str, **params):
    try:
        factory = OBJECT_ADMISSION_REGISTRY[name]
    except KeyError:
        known = ", ".join(admission_names())
        raise ObjectCacheError(
            f"unknown admission hook {name!r} (known: {known})"
        ) from None
    return factory(**params)


class AdmissionHook:
    """``admit(request, now) -> bool`` plus a per-request ``record`` tap."""

    name = "abstract"

    def record(self, request, now: int) -> None:
        """Called for every request before the hit/miss is resolved."""

    def admit(self, request, now: int) -> bool:
        raise NotImplementedError


@register_admission
class AlwaysAdmit(AdmissionHook):
    """Admit everything (the implicit policy of every CPU cache)."""

    name = "always"

    def admit(self, request, now):
        return True


@register_admission
class SizeThresholdAdmission(AdmissionHook):
    """Reject objects larger than ``max_size`` bytes.

    The crudest one-hit-wonder filter: in heavy-tailed size distributions
    the largest objects displace the most residents per admission, so a
    static ceiling already recovers much of the admission win.
    """

    name = "size_threshold"

    def __init__(self, max_size: int = 1 << 20):
        if max_size <= 0:
            raise ObjectCacheError(
                f"size_threshold max_size must be positive, got {max_size}"
            )
        self.max_size = max_size

    def admit(self, request, now):
        return request.size <= self.max_size


@register_admission
class FrequencyGateAdmission(AdmissionHook):
    """TinyLFU-style frequency gate: admit on the ``threshold``-th sighting.

    A count-min sketch (``depth`` rows of ``width`` 4-bit-style counters)
    estimates each key's request frequency; an object is admitted only once
    its estimate reaches ``threshold`` (default 2: the second request —
    i.e. never cache a never-before-seen object).  Counters halve every
    ``reset_interval`` requests so the sketch tracks the *recent* popularity
    the cache can still exploit, not all of history.

    Hash rows use fixed odd multipliers (splitmix-style avalanche), so the
    gate is deterministic across processes — no PYTHONHASHSEED dependence.
    """

    name = "freq_gate"

    _MULTIPLIERS = (
        0x9E3779B97F4A7C15,
        0xBF58476D1CE4E5B9,
        0x94D049BB133111EB,
        0xD6E8FEB86659FD93,
    )
    _MASK = (1 << 64) - 1
    _COUNTER_MAX = 15

    def __init__(self, width: int = 4096, depth: int = 4,
                 threshold: int = 2, reset_interval: int = 65536):
        if width <= 0 or not 1 <= depth <= len(self._MULTIPLIERS):
            raise ObjectCacheError(
                f"freq_gate needs width > 0 and 1 <= depth <= 4, "
                f"got width={width} depth={depth}"
            )
        if threshold < 1:
            raise ObjectCacheError(
                f"freq_gate threshold must be >= 1, got {threshold}"
            )
        self.width = width
        self.depth = depth
        self.threshold = threshold
        self.reset_interval = reset_interval
        self._rows = [[0] * width for _ in range(depth)]
        self._since_reset = 0

    def _slots(self, key: int):
        for row in range(self.depth):
            mixed = (key * self._MULTIPLIERS[row]) & self._MASK
            mixed ^= mixed >> 29
            yield row, mixed % self.width

    def estimate(self, key: int) -> int:
        return min(self._rows[row][slot] for row, slot in self._slots(key))

    def record(self, request, now):
        for row, slot in self._slots(request.key):
            if self._rows[row][slot] < self._COUNTER_MAX:
                self._rows[row][slot] += 1
        self._since_reset += 1
        if self._since_reset >= self.reset_interval:
            for row in self._rows:
                for slot in range(self.width):
                    row[slot] >>= 1
            self._since_reset = 0

    def admit(self, request, now):
        return self.estimate(request.key) >= self.threshold
