"""ObjectRLR: the paper's RLR policy transplanted to variable-size objects.

RLR (§IV) scores each candidate with ``P = 8*P_age + P_type + P_hit`` and
evicts the lowest-priority line, where ``P_age`` protects lines younger
than the reuse-distance estimate ``RD = 2 x average preuse``.  The object
transplant keeps that structure — including the hardware-faithful
:class:`repro.core.rd_estimator.ReuseDistanceEstimator` — and maps the
components to the object world:

* ``P_age``: 8 when the object's age (requests since last access) is
  within the RD estimate — it is expected back soon;
* ``P_type``: 1 when the object had been requested *before* its admission
  (a re-admitted object is unlikely to be a one-hit wonder — the object
  analogue of RLR's demand-vs-prefetch access-type bit);
* ``P_hit``: 1 when the object has hit since admission.

The size-aware variant subtracts a trained **size-bucket term**: priorities
are scaled by 16 and ``size_weight * size_bucket`` (log2 of the object
size) is subtracted, so among otherwise-equal candidates the largest
objects go first — they buy back the most bytes per eviction and, in
traces where big objects are cold (inverse size-popularity correlation,
scan pollution), they are also the least likely to hit again.

``size_weight = 0`` is exactly the size-agnostic transplant, which is how
the trainer (`repro.objcache.train`) searches the weight: sweep the scale,
keep what wins byte-hit-rate.

Like production samplers (and unlike the 16-way CPU cache where scanning
the whole set is free), the victim scan examines the ``sample`` least
recently used residents rather than the full store.
"""

from __future__ import annotations

from repro.core.rd_estimator import ReuseDistanceEstimator

from .core import MAX_SIZE_BUCKET, size_bucket
from .policies import ObjectEvictionPolicy, register_object_policy

#: Size-bucket weight the bundled trainer settles on for the golden Zipfian
#: scenarios (see tests/test_objcache_train.py, which re-derives it).
DEFAULT_SIZE_WEIGHT = 16

PRIORITY_SCALE = 16


class ObjectRLRPolicy(ObjectEvictionPolicy):
    """RLR priorities over object metadata, with an optional size term.

    Args:
        size_weight: units of priority subtracted per size bucket
            (0 = size-agnostic RLR).
        sample: how many LRU-end candidates each eviction scores.
        log2_hits: RD epoch length (paper default 5 -> 32 hits).
    """

    name = "rlr"

    def __init__(self, size_weight: int = 0, sample: int = 256,
                 log2_hits: int = 5):
        if sample < 1:
            raise ValueError(f"rlr sample must be >= 1, got {sample}")
        self.size_weight = size_weight
        self.sample = sample
        self.name = "rlr_size" if size_weight else "rlr"
        self.rd = ReuseDistanceEstimator(log2_hits=log2_hits, initial_rd=0)
        self._order = {}  # key -> None, LRU -> MRU
        self._last_seen = {}  # key -> position of its previous access

    def on_admit(self, obj, now):
        self._order[obj.key] = None
        self._last_seen[obj.key] = now

    def on_hit(self, obj, now):
        # The cache updates obj.last_access before calling on_hit, so the
        # preuse distance (gap between consecutive accesses) comes from the
        # policy's own last-seen table, exactly like the age counters RLR
        # samples in hardware.
        previous = self._last_seen.get(obj.key)
        if previous is not None:
            self.rd.record_demand_hit(now - previous)
        self._last_seen[obj.key] = now
        del self._order[obj.key]
        self._order[obj.key] = None

    def on_evict(self, obj, now):
        self._order.pop(obj.key, None)
        self._last_seen.pop(obj.key, None)

    def priority(self, obj, now: int) -> int:
        score = 0
        if obj.age(now) <= self.rd.rd:
            score += 8  # P_age: inside the reuse window — protect
        if obj.seen_before:
            score += 1  # P_type: re-admitted, not a one-hit wonder
        if obj.hits > 0:
            score += 1  # P_hit
        return score * PRIORITY_SCALE - self.size_weight * size_bucket(
            obj.size
        )

    def victim(self, residents, incoming, now):
        best_key = None
        best_rank = None
        for index, key in enumerate(self._order):
            if index >= self.sample:
                break
            obj = residents[key]
            # Lowest priority first; ties evict the *most recent* candidate
            # (paper Fig. 7: RLR skews victims toward recent lines), which
            # the scan order makes the highest index.
            rank = (self.priority(obj, now), -obj.last_access, key)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_key = key
        return best_key


@register_object_policy(name="rlr")
def _rlr_factory(**params):
    params.setdefault("size_weight", 0)
    return ObjectRLRPolicy(**params)


@register_object_policy(name="rlr_size")
def _rlr_size_factory(**params):
    params.setdefault("size_weight", DEFAULT_SIZE_WEIGHT)
    return ObjectRLRPolicy(**params)
