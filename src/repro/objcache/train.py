"""Training the size-aware RLR variant's size-bucket weight.

ObjectRLR keeps the paper's priority structure and adds one learned knob:
``size_weight``, the priority units subtracted per log2 size bucket
(:mod:`repro.objcache.rlr`).  This module searches that knob the way the
CPU side's hill-climbing analysis (§III-B) searches feature switches —
deterministic candidate evaluation on a training trace, best
byte-hit-rate wins, ties break toward the smaller weight (prefer the
least size-aggressive policy that achieves the score).

Every evaluation also runs the object feature extractor over the victims
the candidate chose, so the training history records *what* each weight
evicts (mean victim size/age/hits) — the diagnostics that make a chosen
weight explainable rather than a bare argmax.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import ObjectCache
from .features import ObjectFeatureExtractor
from .rlr import ObjectRLRPolicy

DEFAULT_WEIGHT_GRID = tuple(range(0, 25, 4))


@dataclass
class WeightEvaluation:
    weight: int
    byte_hit_rate: float
    object_hit_rate: float
    evictions: int
    victim_feature_means: dict = field(default_factory=dict)


@dataclass
class TrainResult:
    best_weight: int
    best_byte_hit_rate: float
    baseline_byte_hit_rate: float  #: weight 0 — the size-agnostic variant
    history: list = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.best_byte_hit_rate > self.baseline_byte_hit_rate

    def as_dict(self) -> dict:
        return {
            "best_weight": self.best_weight,
            "best_byte_hit_rate": self.best_byte_hit_rate,
            "baseline_byte_hit_rate": self.baseline_byte_hit_rate,
            "history": [
                {
                    "weight": entry.weight,
                    "byte_hit_rate": entry.byte_hit_rate,
                    "object_hit_rate": entry.object_hit_rate,
                    "evictions": entry.evictions,
                    "victim_feature_means": entry.victim_feature_means,
                }
                for entry in self.history
            ],
        }


def evaluate_weight(trace, capacity_bytes: int, weight: int,
                    sample: int = 64) -> WeightEvaluation:
    """Replay the training trace with one candidate weight."""
    policy = ObjectRLRPolicy(size_weight=weight, sample=sample)
    cache = ObjectCache(capacity_bytes, policy)
    extractor = ObjectFeatureExtractor(
        enabled=("obj_size", "obj_log2_size", "obj_age", "obj_hits")
    )
    sums = [0.0] * extractor.size
    count = 0

    def observe(victim, incoming, now):
        nonlocal count
        vector = extractor.vector(victim, incoming, now)
        for index in range(extractor.size):
            sums[index] += float(vector[index])
        count += 1

    cache.add_decision_observer(observe)
    stats = cache.replay(trace.requests)
    means = {
        name: (sums[index] / count if count else 0.0)
        for index, name in enumerate(extractor.feature_order)
    }
    return WeightEvaluation(
        weight=weight,
        byte_hit_rate=stats.byte_hit_rate,
        object_hit_rate=stats.object_hit_rate,
        evictions=stats.evictions,
        victim_feature_means=means,
    )


def train_size_weight(trace, capacity_bytes: int,
                      weights=DEFAULT_WEIGHT_GRID,
                      sample: int = 64) -> TrainResult:
    """Grid-search ``size_weight`` on a training trace (deterministic)."""
    history = []
    baseline = None
    best = None
    grid = sorted(set(int(weight) for weight in weights))
    if 0 not in grid:
        grid.insert(0, 0)  # the size-agnostic baseline is always measured
    for weight in grid:
        evaluation = evaluate_weight(trace, capacity_bytes, weight,
                                     sample=sample)
        history.append(evaluation)
        if weight == 0:
            baseline = evaluation
        # Strict > keeps the smallest weight on ties.
        if best is None or evaluation.byte_hit_rate > best.byte_hit_rate:
            best = evaluation
    return TrainResult(
        best_weight=best.weight,
        best_byte_hit_rate=best.byte_hit_rate,
        baseline_byte_hit_rate=baseline.byte_hit_rate,
        history=history,
    )
