"""Object-cache substrate primitives (variable-size web objects).

The CPU-cache side of the repo (`repro.cache`) models fixed-size lines in
set-associative ways; this package models the production regime the ROADMAP
points at — variable-size objects in a bytes-capacity cache, where one
admission may require several evictions and where *byte* hit rate and
*object* hit rate diverge (Cold-RL, DEAP Cache in PAPERS.md).

Everything here is integer/bytes arithmetic over plain dataclasses so that
replay results are byte-identical across process fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ObjectCacheError(ValueError):
    """Malformed request or configuration on the object-cache surface."""


#: Clamp for log2 size buckets (2**20 = 1 MiB+ is the top bucket).
MAX_SIZE_BUCKET = 20


def size_bucket(size: int, max_bucket: int = MAX_SIZE_BUCKET) -> int:
    """log2 size bucket, clamped — the discrete size axis shared by the
    size-aware RLR term, the feature extractor, and victim profiles."""
    return min(max_bucket, max(0, size.bit_length() - 1))


@dataclass(frozen=True)
class ObjectRequest:
    """One request in an object trace: a key and the object's size in bytes.

    Sizes are per-key stable in the bundled generators (a real CDN object
    does not change size between requests unless revalidated); the cache
    itself tolerates size changes by treating them as a miss + replace.
    """

    key: int
    size: int

    def validate(self) -> None:
        if self.key < 0:
            raise ObjectCacheError(f"object key must be >= 0, got {self.key}")
        if self.size <= 0:
            raise ObjectCacheError(
                f"object size must be positive bytes, got {self.size}"
            )


@dataclass
class CachedObject:
    """Resident-object metadata the eviction policies score.

    ``hits`` counts hits since admission; ``seen_before`` records whether the
    key had been requested before this admission (a re-admission — the
    object-world analogue of RLR's access-type bit: previously-seen objects
    are less likely to be one-hit wonders).
    """

    key: int
    size: int
    inserted_at: int
    last_access: int
    hits: int = 0
    seen_before: bool = False

    def age(self, now: int) -> int:
        return now - self.last_access


@dataclass
class ObjectCacheStats:
    """Counters for one replay; byte counters enable byte-hit-rate.

    The conservation invariant (checked by the sanitizer and the scenario
    runner) is::

        admitted == evictions + residents
        admitted_bytes == evicted_bytes + bytes_in_cache
        hits + misses == accesses
        hit_bytes + miss_bytes == requested_bytes
        misses == admitted + rejected
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    requested_bytes: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0
    admitted: int = 0
    admitted_bytes: int = 0
    rejected: int = 0
    rejected_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    residents: int = 0
    bytes_in_cache: int = 0

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "requested_bytes": self.requested_bytes,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "admitted": self.admitted,
            "admitted_bytes": self.admitted_bytes,
            "rejected": self.rejected,
            "rejected_bytes": self.rejected_bytes,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "residents": self.residents,
            "bytes_in_cache": self.bytes_in_cache,
        }

    @property
    def byte_hit_rate(self) -> float:
        if self.requested_bytes == 0:
            return 0.0
        return self.hit_bytes / self.requested_bytes

    @property
    def object_hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


OBJECT_STAT_KEYS = tuple(ObjectCacheStats().as_dict())


def conservation_problems(stats: dict, capacity_bytes: int = None) -> list:
    """Byte/object conservation violations in a stats dict (one line each).

    Mirrors ``repro.scenarios.runner.conservation_problems`` for the CPU
    side: returns ``[]`` when the books balance.
    """

    problems = []

    def check(label, left, right):
        if left != right:
            problems.append(f"{label}: {left} != {right}")

    check("hits + misses == accesses",
          stats["hits"] + stats["misses"], stats["accesses"])
    check("hit_bytes + miss_bytes == requested_bytes",
          stats["hit_bytes"] + stats["miss_bytes"], stats["requested_bytes"])
    check("admitted + rejected == misses",
          stats["admitted"] + stats["rejected"], stats["misses"])
    check("admitted == evictions + residents",
          stats["admitted"], stats["evictions"] + stats["residents"])
    check("admitted_bytes == evicted_bytes + bytes_in_cache",
          stats["admitted_bytes"],
          stats["evicted_bytes"] + stats["bytes_in_cache"])
    for key in OBJECT_STAT_KEYS:
        if stats.get(key, 0) < 0:
            problems.append(f"negative counter: {key} = {stats[key]}")
    if capacity_bytes is not None and stats["bytes_in_cache"] > capacity_bytes:
        problems.append(
            "bytes_in_cache exceeds capacity: "
            f"{stats['bytes_in_cache']} > {capacity_bytes}"
        )
    return problems
