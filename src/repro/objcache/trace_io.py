"""Object-trace persistence: the ``#objtrace v1`` text format.

A deliberately boring format — one request per line — so traces can be cut
from real CDN/proxy logs with awk:

    #objtrace v1
    key,size
    17,20480
    3,512

Ingestion is hardened the same way CPU traces are: every defect raises the
typed :class:`~repro.sanitize.errors.TraceFormatError` with the source and
1-based line number, and `repro validate` reports one line per problem.
"""

from __future__ import annotations

from pathlib import Path

from repro.runs.atomic import atomic_write_text
from repro.sanitize.errors import TraceFormatError

from .core import ObjectRequest
from .workloads import ObjectTrace

MAGIC_LINE = "#objtrace v1"
HEADER_LINE = "key,size"
SUFFIXES = (".objtrace", ".objcsv")


def save_object_trace(trace: ObjectTrace, path) -> Path:
    path = Path(path)
    lines = [MAGIC_LINE, HEADER_LINE]
    lines.extend(
        f"{request.key},{request.size}" for request in trace.requests
    )
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def load_object_trace(path, name: str = None) -> ObjectTrace:
    """Parse an object trace; raises :class:`TraceFormatError` on defects."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as error:
        raise TraceFormatError(
            str(path), f"not valid UTF-8 text: {error}"
        ) from None
    requests = []
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC_LINE:
        raise TraceFormatError(
            str(path),
            f"missing magic line {MAGIC_LINE!r} (is this an object trace?)",
            line=1,
        )
    if len(lines) < 2 or lines[1].strip() != HEADER_LINE:
        raise TraceFormatError(
            str(path), f"missing column header {HEADER_LINE!r}", line=2
        )
    for number, raw in enumerate(lines[2:], start=3):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split(",")
        if len(parts) != 2:
            raise TraceFormatError(
                str(path),
                f"expected 'key,size', got {stripped!r}",
                line=number,
                record=len(requests),
            )
        try:
            key, size = int(parts[0]), int(parts[1])
        except ValueError:
            raise TraceFormatError(
                str(path),
                f"non-integer field in {stripped!r}",
                line=number,
                record=len(requests),
            ) from None
        if key < 0:
            raise TraceFormatError(
                str(path), f"negative key {key}", line=number,
                record=len(requests),
            )
        if size <= 0:
            raise TraceFormatError(
                str(path), f"non-positive size {size}", line=number,
                record=len(requests),
            )
        requests.append(ObjectRequest(key=key, size=size))
    return ObjectTrace(
        name=name or path.stem, requests=tuple(requests)
    )


def validate_object_trace_file(path) -> list:
    """All problems, one line each (keeps scanning past the first defect)."""
    path = Path(path)
    problems = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        return [f"unreadable: {error}"]
    except UnicodeDecodeError as error:
        return [f"not valid UTF-8 text: {error}"]
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC_LINE:
        problems.append(f"line 1: missing magic line {MAGIC_LINE!r}")
        return problems
    if len(lines) < 2 or lines[1].strip() != HEADER_LINE:
        problems.append(f"line 2: missing column header {HEADER_LINE!r}")
        return problems
    records = 0
    for number, raw in enumerate(lines[2:], start=3):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split(",")
        if len(parts) != 2:
            problems.append(
                f"line {number}: expected 'key,size', got {stripped!r}"
            )
            continue
        try:
            key, size = int(parts[0]), int(parts[1])
        except ValueError:
            problems.append(
                f"line {number}: non-integer field in {stripped!r}"
            )
            continue
        if key < 0:
            problems.append(f"line {number}: negative key {key}")
        if size <= 0:
            problems.append(f"line {number}: non-positive size {size}")
        records += 1
    if records == 0 and not problems:
        problems.append("trace has a header but zero request records")
    return problems
