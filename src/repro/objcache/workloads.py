"""Deterministic, seedable object-request workload generators.

Four request-pattern families (the taxonomy capsa's static/dynamic/
oscillating generators and the cxl-fabric-sim snippet sketch, extended with
the two patterns that make admission interesting):

* ``zipf``         — stationary Zipfian popularity over a fixed catalogue;
* ``hotspot_shift``— Zipfian popularity whose hot set rotates each phase
                     (tests how fast policies re-learn);
* ``flash_crowd``  — Zipfian baseline plus a burst window in which a small
                     set of *previously unseen* objects takes over a large
                     request share (tests admission + recency);
* ``scan_mix``     — Zipfian foreground polluted by a one-shot sequential
                     scan of fresh objects (the classic one-hit-wonder
                     stress; scan objects can be scaled larger).

Sizes come from a configurable distribution (fixed/uniform/lognormal/
pareto), stable per key, optionally **inversely correlated** with
popularity (``correlate: inverse`` — hot objects small, as CDN traces
show), which is precisely the regime where size-aware eviction pays off in
byte-hit-rate.

Everything derives from ``random.Random(seed)`` — identical traces across
processes and platforms, no numpy dependence on this path.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from random import Random

from .core import ObjectCacheError, ObjectRequest

WORKLOAD_KINDS = ("zipf", "hotspot_shift", "flash_crowd", "scan_mix")
SIZE_DISTS = ("fixed", "uniform", "lognormal", "pareto")
SIZE_CORRELATIONS = ("none", "inverse")

_DEFAULT_SIZES = {
    "dist": "lognormal", "min": 256, "max": 1 << 20, "correlate": "none",
}


@dataclass(frozen=True)
class ObjectTrace:
    """A named, fully materialised request stream."""

    name: str
    requests: tuple
    catalogue_objects: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(request.size for request in self.requests)

    def unique_objects(self) -> int:
        return len({request.key for request in self.requests})


def validate_size_spec(spec: dict) -> list:
    """One problem string per defect; [] when the size clause is usable."""
    problems = []
    if not isinstance(spec, dict):
        return [f"sizes must be a mapping, got {type(spec).__name__}"]
    dist = spec.get("dist", "lognormal")
    if dist not in SIZE_DISTS:
        problems.append(
            f"sizes.dist must be one of {', '.join(SIZE_DISTS)}, got {dist!r}"
        )
    for key in ("min", "max"):
        value = spec.get(key, _DEFAULT_SIZES[key])
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            problems.append(f"sizes.{key} must be a positive integer")
    min_size = spec.get("min", _DEFAULT_SIZES["min"])
    max_size = spec.get("max", _DEFAULT_SIZES["max"])
    if isinstance(min_size, int) and isinstance(max_size, int) \
            and 0 < max_size < min_size:
        problems.append(f"sizes.min ({min_size}) exceeds sizes.max ({max_size})")
    correlate = spec.get("correlate", "none")
    if correlate not in SIZE_CORRELATIONS:
        problems.append(
            "sizes.correlate must be one of "
            f"{', '.join(SIZE_CORRELATIONS)}, got {correlate!r}"
        )
    for key in spec:
        if key not in ("dist", "min", "max", "correlate", "sigma", "alpha"):
            problems.append(f"sizes.{key}: unknown size field")
    return problems


def _draw_size(spec: dict, rng: Random) -> int:
    dist = spec.get("dist", "lognormal")
    lo = spec.get("min", _DEFAULT_SIZES["min"])
    hi = spec.get("max", _DEFAULT_SIZES["max"])
    if dist == "fixed":
        return lo
    if dist == "uniform":
        return rng.randint(lo, hi)
    if dist == "lognormal":
        # mu centred so the median sits at the geometric mean of [lo, hi].
        import math

        mu = (math.log(lo) + math.log(hi)) / 2.0
        sigma = spec.get("sigma", 1.5)
        value = int(rng.lognormvariate(mu, sigma))
    elif dist == "pareto":
        value = int(lo * rng.paretovariate(spec.get("alpha", 1.2)))
    else:  # pragma: no cover - guarded by validate_size_spec
        raise ObjectCacheError(f"unknown size distribution {dist!r}")
    return max(lo, min(hi, value))


class _SizeTable:
    """Per-key stable sizes; catalogue keys drawn up-front so ``inverse``
    correlation can sort them against popularity rank, dynamic keys (scan,
    flash-crowd) drawn lazily from a per-key RNG."""

    def __init__(self, spec: dict, objects: int, seed: int,
                 dynamic_scale: float = 1.0):
        self._spec = dict(_DEFAULT_SIZES, **(spec or {}))
        self._seed = seed
        self._dynamic_scale = dynamic_scale
        rng = Random((seed * 2654435761) % (1 << 63))
        drawn = [_draw_size(self._spec, rng) for _ in range(objects)]
        if self._spec.get("correlate", "none") == "inverse":
            # Rank 0 is the hottest key: give it the smallest size.
            drawn.sort()
        self._catalogue = drawn
        self._dynamic = {}

    def size_of(self, key: int) -> int:
        if key < len(self._catalogue):
            return self._catalogue[key]
        cached = self._dynamic.get(key)
        if cached is None:
            rng = Random((self._seed << 20) ^ (key * 0x9E3779B1))
            cached = max(1, int(_draw_size(self._spec, rng)
                                * self._dynamic_scale))
            self._dynamic[key] = cached
        return cached


class _ZipfSampler:
    """Rank sampler over ``1/(rank+1)**alpha`` via CDF + bisect."""

    def __init__(self, objects: int, alpha: float):
        weights = [1.0 / (rank + 1) ** alpha for rank in range(objects)]
        total = 0.0
        self._cumulative = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: Random) -> int:
        return bisect.bisect_left(
            self._cumulative, rng.random() * self._total
        )


def generate_object_trace(name: str, kind: str, objects: int, length: int,
                          seed: int = 0, alpha: float = 0.9,
                          sizes: dict = None, **params) -> ObjectTrace:
    """Materialise one deterministic trace.

    ``params`` are kind-specific knobs (all optional):

    * hotspot_shift: ``phases`` (default 4);
    * flash_crowd:  ``burst_start``/``burst_length`` (trace fractions,
      default 0.5/0.25), ``burst_fraction`` (request share, default 0.6),
      ``crowd_objects`` (default max(8, objects // 20));
    * scan_mix:     ``scan_fraction`` (default 0.25), ``scan_size_scale``
      (default 4.0 — scans drag in *large* one-hit wonders).
    """
    if kind not in WORKLOAD_KINDS:
        raise ObjectCacheError(
            f"unknown workload kind {kind!r} "
            f"(known: {', '.join(WORKLOAD_KINDS)})"
        )
    if objects <= 0 or length <= 0:
        raise ObjectCacheError(
            f"workload {name!r} needs objects > 0 and length > 0"
        )
    builder = _BUILDERS[kind]
    scale = params.get("scan_size_scale", 4.0) if kind == "scan_mix" else 1.0
    table = _SizeTable(sizes or {}, objects, seed, dynamic_scale=scale)
    rng = Random(seed)
    keys = builder(rng, objects, length, alpha, params)
    requests = tuple(
        ObjectRequest(key=key, size=table.size_of(key)) for key in keys
    )
    return ObjectTrace(name=name, requests=requests,
                       catalogue_objects=objects)


def _zipf_keys(rng, objects, length, alpha, params):
    sampler = _ZipfSampler(objects, alpha)
    return [sampler.sample(rng) for _ in range(length)]


def _hotspot_keys(rng, objects, length, alpha, params):
    phases = max(1, int(params.get("phases", 4)))
    sampler = _ZipfSampler(objects, alpha)
    stride = max(1, objects // phases)
    keys = []
    for index in range(length):
        phase = index * phases // length
        rank = sampler.sample(rng)
        keys.append((rank + phase * stride) % objects)
    return keys


def _flash_crowd_keys(rng, objects, length, alpha, params):
    burst_start = float(params.get("burst_start", 0.5))
    burst_length = float(params.get("burst_length", 0.25))
    burst_fraction = float(params.get("burst_fraction", 0.6))
    crowd_objects = int(params.get("crowd_objects", max(8, objects // 20)))
    base = _ZipfSampler(objects, alpha)
    crowd = _ZipfSampler(crowd_objects, max(alpha, 1.1))
    lo = int(length * burst_start)
    hi = min(length, lo + int(length * burst_length))
    keys = []
    for index in range(length):
        if lo <= index < hi and rng.random() < burst_fraction:
            # Crowd keys live above the catalogue: unseen before the burst.
            keys.append(objects + crowd.sample(rng))
        else:
            keys.append(base.sample(rng))
    return keys


def _scan_mix_keys(rng, objects, length, alpha, params):
    scan_fraction = float(params.get("scan_fraction", 0.25))
    sampler = _ZipfSampler(objects, alpha)
    keys = []
    next_scan_key = objects  # fresh ids, each requested exactly once
    for _ in range(length):
        if rng.random() < scan_fraction:
            keys.append(next_scan_key)
            next_scan_key += 1
        else:
            keys.append(sampler.sample(rng))
    return keys


_BUILDERS = {
    "zipf": _zipf_keys,
    "hotspot_shift": _hotspot_keys,
    "flash_crowd": _flash_crowd_keys,
    "scan_mix": _scan_mix_keys,
}
