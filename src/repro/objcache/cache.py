"""Bytes-capacity object cache: evict-until-fits + pluggable admission.

The request loop is the object-world counterpart of ``Cache.access`` on the
CPU side, with the two structural differences that motivate this subsystem:

* capacity is **bytes**, so admitting one large object may evict several
  victims (the eviction policy is consulted repeatedly until the incoming
  object fits);
* a miss is not automatically a fill — the admission hook may refuse the
  object, and refusing is often the right call (one-hit wonders).

Observers registered via ``add_decision_observer`` see every eviction with
the victim's full metadata *and the incoming request*, which is what the
decision tracer needs to grade choices against the size-aware oracle.
"""

from __future__ import annotations

from .admission import AdmissionHook, AlwaysAdmit
from .core import (
    CachedObject,
    ObjectCacheError,
    ObjectCacheStats,
    ObjectRequest,
    conservation_problems,
)
from .policies import ObjectEvictionPolicy


class ObjectCache:
    """A single-tier object cache with byte accounting.

    Args:
        capacity_bytes: total budget; an object larger than this can never
            be admitted and is counted as rejected.
        policy: an :class:`ObjectEvictionPolicy` (owned by this cache).
        admission: optional :class:`AdmissionHook`; defaults to always-admit.
    """

    def __init__(self, capacity_bytes: int, policy: ObjectEvictionPolicy,
                 admission: AdmissionHook = None):
        if capacity_bytes <= 0:
            raise ObjectCacheError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.admission = admission if admission is not None else AlwaysAdmit()
        self.stats = ObjectCacheStats()
        self.now = 0  # request index; drives ages and decision positions
        self._store = {}  # key -> CachedObject, insertion-ordered
        self._bytes = 0
        self._ever_seen = set()
        self._decision_observers = []

    # -- introspection -----------------------------------------------------

    @property
    def bytes_used(self) -> int:
        return self._bytes

    @property
    def residents(self) -> dict:
        """Key -> CachedObject view (treat as read-only)."""
        return self._store

    def __contains__(self, key: int) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def add_decision_observer(self, observer) -> None:
        """``observer(victim: CachedObject, incoming: ObjectRequest, now)``."""
        self._decision_observers.append(observer)

    # -- request path ------------------------------------------------------

    def access(self, request: ObjectRequest) -> bool:
        """Serve one request; returns True on hit.

        Order of operations is part of the determinism contract: admission
        ``record`` taps the request first (frequency gates learn from every
        request), then hit/miss resolution, then admission, then
        evict-until-fits, then insertion.
        """
        request.validate()
        self.admission.record(request, self.now)
        self.stats.accesses += 1
        self.stats.requested_bytes += request.size

        obj = self._store.get(request.key)
        if obj is not None and obj.size == request.size:
            self.stats.hits += 1
            self.stats.hit_bytes += request.size
            obj.hits += 1
            obj.last_access = self.now
            self.policy.on_hit(obj, self.now)
            self.now += 1
            return True

        if obj is not None:
            # Same key, new size: the cached copy is stale.  Drop it (an
            # eviction for the books) and treat the request as a miss.
            self._remove(obj, notify=False)

        self.stats.misses += 1
        self.stats.miss_bytes += request.size

        if request.size > self.capacity_bytes or not self.admission.admit(
            request, self.now
        ):
            self.stats.rejected += 1
            self.stats.rejected_bytes += request.size
            self._ever_seen.add(request.key)
            self.now += 1
            return False

        while self._bytes + request.size > self.capacity_bytes:
            victim_key = self.policy.victim(self._store, request, self.now)
            victim = self._store.get(victim_key)
            if victim is None:
                raise ObjectCacheError(
                    f"policy {self.policy.name!r} chose non-resident victim "
                    f"{victim_key!r}"
                )
            self._remove(victim, notify=True, incoming=request)

        self._insert(request)
        self.now += 1
        return False

    def replay(self, requests) -> ObjectCacheStats:
        for request in requests:
            self.access(request)
        return self.stats

    # -- internals ---------------------------------------------------------

    def _insert(self, request: ObjectRequest) -> None:
        obj = CachedObject(
            key=request.key,
            size=request.size,
            inserted_at=self.now,
            last_access=self.now,
            seen_before=request.key in self._ever_seen,
        )
        self._store[request.key] = obj
        self._bytes += request.size
        self._ever_seen.add(request.key)
        self.stats.admitted += 1
        self.stats.admitted_bytes += request.size
        self.stats.residents += 1
        self.stats.bytes_in_cache += request.size
        self.policy.on_admit(obj, self.now)

    def _remove(self, obj: CachedObject, notify: bool,
                incoming: ObjectRequest = None) -> None:
        del self._store[obj.key]
        self._bytes -= obj.size
        self.stats.evictions += 1
        self.stats.evicted_bytes += obj.size
        self.stats.residents -= 1
        self.stats.bytes_in_cache -= obj.size
        self.policy.on_evict(obj, self.now)
        if notify:
            for observer in self._decision_observers:
                observer(obj, incoming, self.now)

    # -- invariants --------------------------------------------------------

    def check_conservation(self) -> list:
        """Byte-accounting problems (one line each); [] when balanced."""
        problems = conservation_problems(
            self.stats.as_dict(), self.capacity_bytes
        )
        actual_bytes = sum(obj.size for obj in self._store.values())
        if actual_bytes != self._bytes:
            problems.append(
                f"resident byte ledger drifted: {self._bytes} tracked != "
                f"{actual_bytes} actual"
            )
        if self.stats.bytes_in_cache != self._bytes:
            problems.append(
                "stats.bytes_in_cache out of step with ledger: "
                f"{self.stats.bytes_in_cache} != {self._bytes}"
            )
        if self.stats.residents != len(self._store):
            problems.append(
                f"stats.residents out of step: {self.stats.residents} != "
                f"{len(self._store)}"
            )
        return problems
