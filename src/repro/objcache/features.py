"""Object-cache feature extraction — the RL state surface for objects.

Extends the Table II machinery in :mod:`repro.rl.features` to variable-size
objects: the per-line features RLR's analysis found predictive (age, hits,
recency, access type) carry over, and **object size** joins them — the one
feature fixed-size CPU lines cannot express, and the one Cold-RL/DEAP show
matters most in the web regime.

Numeric features reuse the same running-max normalization class
(`_RunningMax`) so object agents checkpoint/restore norm state exactly the
way CPU agents do.
"""

from __future__ import annotations

import numpy as np

from repro.rl.features import _RunningMax

from .core import size_bucket

#: Per-candidate-object features, in canonical order.
OBJECT_FEATURE_NAMES = (
    "obj_size",        # bytes, running-max normalized
    "obj_log2_size",   # size bucket (log2), running-max normalized
    "obj_age",         # requests since last access
    "obj_preuse",      # last observed inter-access gap
    "obj_hits",        # hits since admission
    "obj_recency",     # rank among candidates, most-recent = 1.0
    "obj_seen_before", # 1.0 if the key had been requested before admission
    "req_size",        # incoming request's size (shared per decision)
)


class ObjectFeatureExtractor:
    """Feature vectors for eviction candidates in an object cache.

    Args:
        enabled: iterable of :data:`OBJECT_FEATURE_NAMES` to include
            (default all) — same switch surface the hill-climbing analysis
            uses on the CPU side.
    """

    def __init__(self, enabled=None) -> None:
        if enabled is None:
            enabled = OBJECT_FEATURE_NAMES
        self.enabled = frozenset(enabled)
        unknown = self.enabled - set(OBJECT_FEATURE_NAMES)
        if unknown:
            raise ValueError(f"unknown object features: {sorted(unknown)}")
        self.feature_order = tuple(
            name for name in OBJECT_FEATURE_NAMES if name in self.enabled
        )
        self.size = len(self.feature_order)
        self._norm = _RunningMax()

    # Checkpoint parity with repro.rl.features.FeatureExtractor.
    def norm_state(self) -> dict:
        return dict(self._norm.maxima)

    def restore_norm_state(self, maxima: dict) -> None:
        self._norm.maxima = dict(maxima)

    def _raw(self, obj, incoming, now: int, recency: float) -> dict:
        preuse = obj.last_access - obj.inserted_at
        return {
            "obj_size": self._norm.normalize("obj_size", float(obj.size)),
            "obj_log2_size": self._norm.normalize(
                "obj_log2_size", float(size_bucket(obj.size))
            ),
            "obj_age": self._norm.normalize("obj_age", float(obj.age(now))),
            "obj_preuse": self._norm.normalize("obj_preuse", float(preuse)),
            "obj_hits": self._norm.normalize("obj_hits", float(obj.hits)),
            "obj_recency": recency,
            "obj_seen_before": 1.0 if obj.seen_before else 0.0,
            "req_size": self._norm.normalize(
                "req_size", float(incoming.size if incoming else 0)
            ),
        }

    def vector(self, obj, incoming, now: int, recency: float = 0.0):
        """One candidate's feature vector (float32, ``self.size`` wide)."""
        raw = self._raw(obj, incoming, now, recency)
        return np.array(
            [raw[name] for name in self.feature_order], dtype=np.float32
        )

    def matrix(self, candidates, incoming, now: int):
        """Stacked vectors for an eviction candidate set.

        Candidates are ranked by ``last_access`` to derive the recency
        feature (most recent = 1.0), matching the CPU extractor's
        per-way recency definition.
        """
        ordered = sorted(candidates, key=lambda obj: (obj.last_access, obj.key))
        count = max(1, len(ordered) - 1)
        rank = {
            obj.key: index / count for index, obj in enumerate(ordered)
        }
        return np.stack(
            [
                self.vector(obj, incoming, now, recency=rank[obj.key])
                for obj in candidates
            ]
        ) if candidates else np.zeros((0, self.size), dtype=np.float32)
