"""Size-aware Belady oracle for object caches.

Exact Belady is knapsack-hard once objects have sizes, so the oracle grades
against the standard size-aware relaxation (the one LRB-style learned
caches train toward): the best victim is the object occupying the most
**byte-time** before its next hit —

    score(obj) = (next_use(obj) - now) * obj.size

with never-reused objects scoring infinity.  Evicting the max-score
resident frees the most bytes for the longest useful time.

Grading mirrors ``repro.telemetry.decisions`` on the CPU side:

* OPTIMAL — the chosen victim's score ties the best score among residents;
* HARMFUL — the victim scores *below the incoming object*: we evicted
  something more valuable (in byte-time) than what we admitted;
* NEUTRAL — anything in between.
"""

from __future__ import annotations

from collections import deque

#: Score for never-reused objects.
NEVER = float("inf")

GRADE_OPTIMAL = "optimal"
GRADE_NEUTRAL = "neutral"
GRADE_HARMFUL = "harmful"


class ObjectFutureOracle:
    """Next-use lookups over a pre-recorded object request stream.

    The same per-key occurrence-queue machinery as
    :class:`repro.rl.reward.FutureOracle`, keyed by object key instead of
    line address.
    """

    def __init__(self, requests) -> None:
        self._occurrences = {}
        for position, request in enumerate(requests):
            self._occurrences.setdefault(
                request.key, deque()
            ).append(position)
        self.position = 0

    def advance(self, request) -> None:
        """Consume the current stream position (must match the stream)."""
        queue = self._occurrences.get(request.key)
        if not queue or queue[0] != self.position:
            raise RuntimeError(
                f"object oracle misalignment at position {self.position}"
            )
        queue.popleft()
        self.position += 1

    def next_use(self, key: int) -> float:
        queue = self._occurrences.get(key)
        return queue[0] if queue else NEVER

    def next_use_after(self, key: int, position: int) -> float:
        """First access to ``key`` strictly after ``position`` (skips the
        in-flight occurrence of the object being admitted)."""
        queue = self._occurrences.get(key)
        if not queue:
            return NEVER
        for occurrence in queue:
            if occurrence > position:
                return occurrence
        return NEVER

    def score(self, key: int, size: int, position: int) -> float:
        """Byte-time score: next-use distance weighted by bytes."""
        next_use = self.next_use_after(key, position)
        if next_use == NEVER:
            return NEVER
        return (next_use - position) * size


def grade_object_eviction(oracle: ObjectFutureOracle, residents: dict,
                          victim, incoming, position: int) -> str:
    """Grade one eviction at request ``position`` (before oracle advance).

    ``residents`` is the cache's post-eviction resident map; the victim is
    scored alongside it, so "best among residents" means best among the
    candidates the policy actually chose from.
    """
    victim_score = oracle.score(victim.key, victim.size, position)
    if victim_score == NEVER:
        return GRADE_OPTIMAL
    best = victim_score
    for obj in residents.values():
        score = oracle.score(obj.key, obj.size, position)
        if score > best:
            best = score
    if victim_score >= best:
        return GRADE_OPTIMAL
    incoming_score = oracle.score(incoming.key, incoming.size, position)
    if victim_score < incoming_score:
        return GRADE_HARMFUL
    return GRADE_NEUTRAL
