"""Object-trace replay and the object-cache sweep grid.

Replay is a pure function of ``(trace, capacity, policy, admission)`` so the
sweep can fan cells out over :class:`repro.runs.executor.ProcessTaskPool`
and still merge a deterministic report: results are integers and exact
float ratios, cells sort by ``(workload, policy)``, and ``--jobs 1`` vs
``--jobs N`` reports are byte-identical (the same acceptance bar the CPU
sweep meets).

The sweep reuses the CPU sweep's report types (`CellResult`/`SweepReport`),
which duck-type on the result object — object cells carry an
:class:`ObjectCacheResult` whose ``byte_hit_rate``/``object_hit_rate``
drive the object-aware columns in ``SweepReport.to_csv``/``format``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro import sanitize as sanitize_mod
from repro.sanitize.errors import SanitizeError
from repro.sanitize.object_guard import wrap_admission, wrap_object_policy
from repro.testing.faults import maybe_fault

from .admission import make_admission
from .cache import ObjectCache
from .core import ObjectCacheStats
from .oracle import ObjectFutureOracle
from .policies import make_object_policy
from .workloads import ObjectTrace, generate_object_trace


@dataclass(frozen=True)
class ObjectCacheResult:
    """One cell's outcome; field names match ``ObjectCacheStats``."""

    capacity_bytes: int
    accesses: int
    hits: int
    misses: int
    requested_bytes: int
    hit_bytes: int
    miss_bytes: int
    admitted: int
    admitted_bytes: int
    rejected: int
    rejected_bytes: int
    evictions: int
    evicted_bytes: int
    residents: int
    bytes_in_cache: int

    @classmethod
    def from_stats(cls, stats: ObjectCacheStats, capacity_bytes: int):
        return cls(capacity_bytes=capacity_bytes, **stats.as_dict())

    @property
    def byte_hit_rate(self) -> float:
        if self.requested_bytes == 0:
            return 0.0
        return self.hit_bytes / self.requested_bytes

    @property
    def object_hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def stats_dict(self) -> dict:
        stats = asdict(self)
        stats.pop("capacity_bytes")
        return stats


@dataclass
class ObjectReplayOutcome:
    result: ObjectCacheResult
    violations: tuple = ()
    decisions: dict = None


def build_policy(policy: str, params: dict = None):
    """Registry lookup with per-policy params (scenario ``params`` clause)."""
    return make_object_policy(policy, **(params or {}))


def replay_object_trace(
    trace: ObjectTrace,
    capacity_bytes: int,
    policy: str,
    *,
    policy_params: dict = None,
    admission: dict = None,
    sanitize: str = None,
    decisions: int = None,
) -> ObjectReplayOutcome:
    """Replay one trace through one policy.

    Args:
        admission: ``{"kind": name, **params}`` (default always-admit).
        sanitize: off/normal/strict (default: resolve env).
        decisions: sample rate for decision tracing + size-aware-oracle
            grading (None = tracing off; 1 = grade every eviction).
    """
    maybe_fault("object-replay", workload=trace.name, policy=policy)
    mode = sanitize_mod.resolve_mode(sanitize)
    inner_policy = build_policy(policy, policy_params)
    admission_spec = dict(admission or {"kind": "always"})
    hook = make_admission(admission_spec.pop("kind"), **admission_spec)
    checked_policy = wrap_object_policy(inner_policy, mode)
    checked_hook = wrap_admission(hook, mode)
    cache = ObjectCache(capacity_bytes, checked_policy,
                        admission=checked_hook)

    decision_payload = None
    trace_obj = None
    if decisions is not None:
        from repro.telemetry.object_decisions import ObjectDecisionTrace

        trace_obj = ObjectDecisionTrace(
            workload=trace.name,
            policy=policy,
            sample_rate=max(1, int(decisions)),
            oracle=ObjectFutureOracle(trace.requests),
            total=len(trace.requests),
        )
        trace_obj.attach(cache)
        for request in trace.requests:
            hit = cache.access(request)
            trace_obj.on_access(request, hit)
    else:
        cache.replay(trace.requests)

    violations = []
    violations.extend(getattr(checked_policy, "violations", ()))
    violations.extend(getattr(checked_hook, "violations", ()))
    problems = cache.check_conservation()
    if problems:
        detail = "; ".join(problems)
        if mode == "strict":
            raise SanitizeError(
                f"object cache byte accounting violated ({policy} on "
                f"{trace.name}): {detail}"
            )
        violations.extend(
            f"byte accounting: {problem}" for problem in problems
        )
    if trace_obj is not None:
        decision_payload = trace_obj.cell_payload()
    result = ObjectCacheResult.from_stats(cache.stats, capacity_bytes)
    return ObjectReplayOutcome(
        result=result, violations=tuple(violations),
        decisions=decision_payload,
    )


# -- sweep --------------------------------------------------------------------


def _cell_task(trace: ObjectTrace, capacity_bytes: int, policy: str,
               policy_params, admission, sanitize, decisions):
    """Worker entry (module-level for pickling)."""
    started = time.perf_counter()
    outcome = replay_object_trace(
        trace, capacity_bytes, policy,
        policy_params=policy_params, admission=admission,
        sanitize=sanitize, decisions=decisions,
    )
    return outcome, time.perf_counter() - started


def object_sweep(
    traces,
    capacity_bytes: int,
    policies,
    *,
    admission: dict = None,
    policy_params: dict = None,
    jobs: int = 1,
    timeout: float = None,
    retries: int = 0,
    sanitize: str = None,
    decisions: int = None,
    journal=None,
    journal_tag=None,
):
    """Replay every (trace, policy) cell; returns a ``SweepReport``.

    ``traces`` is an iterable of :class:`ObjectTrace`;
    ``policy_params`` maps policy name -> kwargs dict.

    ``journal`` (a :class:`~repro.runs.journal.RunJournal`) gives object
    sweeps the same crash-safety contract as scalar sweeps: every
    completed cell is durably appended as it finishes, already-journaled
    cells are adopted verbatim on resume (so a SIGKILL mid-sweep resumes
    to a byte-identical report), and SIGINT/SIGTERM raise
    :class:`~repro.runs.supervisor.SweepInterrupted` only after the
    journal is flushed.  ``journal_tag`` disambiguates grids that share a
    journal (the per-seed passes of a multi-seed scenario).
    """
    from repro.eval.parallel import (
        CellResult,
        SweepReport,
        _interrupt_guard,
        cell_from_journal_entry,
        journal_cell_entry,
    )
    from repro.runs.supervisor import SweepInterrupted

    traces = list(traces)
    policies = list(policies)
    params = policy_params or {}
    mode = sanitize_mod.resolve_mode(sanitize)
    wall_started = time.perf_counter()

    # Resume: adopt cells this journal already holds for this grid + tag.
    done_cells = []
    done_keys = set()
    if journal is not None:
        journal.reload()
        grid = {(trace.name, policy) for trace in traces
                for policy in policies}
        for entry in journal.entries():
            if entry.get("result_kind") != "object":
                continue
            if entry.get("tag") != journal_tag:
                continue
            cell = cell_from_journal_entry(entry)
            if cell is None:
                continue
            key = (cell.workload, cell.policy)
            if key in grid and key not in done_keys:
                done_keys.add(key)
                done_cells.append(cell)

    def complete(cell) -> None:
        cells.append(cell)
        if journal is not None and cell.ok:
            journal.append(journal_cell_entry(cell, tag=journal_tag))

    cells = []
    pool_stats = {}
    try:
        with _interrupt_guard(enabled=journal is not None):
            if jobs <= 1 and timeout is None and retries == 0:
                for trace in traces:
                    for policy in policies:
                        if (trace.name, policy) in done_keys:
                            continue
                        complete(_run_cell(
                            trace, capacity_bytes, policy,
                            params.get(policy), admission, mode, decisions,
                        ))
            else:
                from repro.runs.executor import ProcessTaskPool

                pool = ProcessTaskPool(jobs, timeout=timeout,
                                       retries=retries)
                for trace in traces:
                    for policy in policies:
                        if (trace.name, policy) in done_keys:
                            continue
                        pool.submit(
                            _cell_task, trace, capacity_bytes, policy,
                            params.get(policy), admission, mode, decisions,
                            tag=(trace.name, policy),
                        )
                for outcome in pool.completed():
                    workload, policy = outcome.tag
                    if outcome.ok:
                        replay_outcome, seconds = outcome.value
                        complete(CellResult(
                            workload=workload, policy=policy,
                            result=replay_outcome.result,
                            seconds=seconds,
                            violations=replay_outcome.violations,
                            decisions=replay_outcome.decisions,
                        ))
                    else:
                        complete(CellResult(
                            workload=workload, policy=policy,
                            error=outcome.error,
                        ))
                pool_stats = pool.stats.as_dict()
    except (KeyboardInterrupt, SweepInterrupted):
        if journal is None:
            raise
        raise SweepInterrupted(
            "object sweep interrupted — completed cells are journaled; "
            "resume with --resume",
            completed=len(done_cells) + len(cells),
        ) from None

    cells.extend(done_cells)
    cells.sort(key=lambda cell: (cell.workload, cell.policy))
    return SweepReport(
        cells=cells,
        workloads=[trace.name for trace in traces],
        policies=policies,
        jobs=jobs,
        resumed=tuple(sorted(done_keys)),
        pool_stats=pool_stats,
        wall_seconds=time.perf_counter() - wall_started,
    )


def _run_cell(trace, capacity_bytes, policy, policy_params, admission,
              mode, decisions):
    from repro.eval.parallel import CellResult

    started = time.perf_counter()
    try:
        outcome = replay_object_trace(
            trace, capacity_bytes, policy,
            policy_params=policy_params, admission=admission,
            sanitize=mode, decisions=decisions,
        )
    except Exception as error:  # noqa: BLE001 - cell isolation
        return CellResult(
            workload=trace.name, policy=policy,
            error=f"{error.__class__.__name__}: {error}",
        )
    return CellResult(
        workload=trace.name, policy=policy,
        result=outcome.result,
        seconds=time.perf_counter() - started,
        violations=outcome.violations,
        decisions=outcome.decisions,
    )


def traces_from_specs(specs, default_seed: int = 0):
    """Materialise ``[{name, kind, objects, length, ...}]`` workload specs."""
    traces = []
    for spec in specs:
        clause = dict(spec)
        clause.setdefault("seed", default_seed)
        traces.append(generate_object_trace(**clause))
    return traces
