"""Size-aware eviction policies over the object-cache substrate.

Mirrors the CPU-side registry idiom (`repro.cache.replacement.base`): an
abstract ``ObjectEvictionPolicy`` with lifecycle hooks, a module registry,
and ``make_object_policy(name, **params)``.  Victim selection returns a
*key*; the cache calls it repeatedly until the incoming object fits
(evict-until-fits — one admission may take several victims).

Determinism contract: policies may keep internal heaps/dicts but every
tie-break must be total and input-derived (sequence numbers, keys), never
identity- or hash-order-dependent, so sweeps are byte-identical across
process fan-out.
"""

from __future__ import annotations

import heapq
from random import Random

from .core import CachedObject, ObjectCacheError

OBJECT_POLICY_REGISTRY = {}


def register_object_policy(cls=None, *, name=None):
    """Class/factory decorator mirroring ``register_policy`` on the CPU side."""

    def wrap(target):
        key = name or getattr(target, "name", None)
        if not key:
            raise ValueError("object policy needs a registry name")
        if key in OBJECT_POLICY_REGISTRY:
            raise ValueError(f"duplicate object policy name: {key!r}")
        OBJECT_POLICY_REGISTRY[key] = target
        return target

    return wrap(cls) if cls is not None else wrap


def object_policy_names() -> list:
    return sorted(OBJECT_POLICY_REGISTRY)


def make_object_policy(name: str, **params):
    try:
        factory = OBJECT_POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(object_policy_names())
        raise ObjectCacheError(
            f"unknown object policy {name!r} (known: {known})"
        ) from None
    return factory(**params)


class ObjectEvictionPolicy:
    """Lifecycle hooks the :class:`~repro.objcache.cache.ObjectCache` drives.

    ``victim(residents, incoming, now)`` must return the key of a resident
    object; the cache removes it and calls ``on_evict``.  ``residents`` is
    the cache's key->CachedObject mapping (insertion-ordered, read-only by
    convention).
    """

    name = "abstract"

    def on_admit(self, obj: CachedObject, now: int) -> None:
        """A new object was inserted."""

    def on_hit(self, obj: CachedObject, now: int) -> None:
        """A resident object was requested (metadata already updated)."""

    def on_evict(self, obj: CachedObject, now: int) -> None:
        """A victim chosen by ``victim`` (or a forced removal) left the cache."""

    def victim(self, residents: dict, incoming, now: int) -> int:
        raise NotImplementedError


@register_object_policy
class ObjectLRUPolicy(ObjectEvictionPolicy):
    """Plain recency: evict the least recently used object, size-blind."""

    name = "lru"

    def __init__(self):
        self._order = {}  # key -> None; dict preserves insertion order

    def on_admit(self, obj, now):
        self._order[obj.key] = None

    def on_hit(self, obj, now):
        # Move to MRU position.
        del self._order[obj.key]
        self._order[obj.key] = None

    def on_evict(self, obj, now):
        self._order.pop(obj.key, None)

    def victim(self, residents, incoming, now):
        return next(iter(self._order))


@register_object_policy
class ObjectSizePolicy(ObjectEvictionPolicy):
    """LRU-size (the classic SIZE policy): evict the largest object first.

    Ties (equal sizes) fall back to admission order — oldest first — which
    an insertion-sequence heap key makes total and deterministic.  Large
    objects cost the most capacity per cached hit, so discarding them first
    maximises the *number* of residents; the byte-hit-rate consequences are
    workload-dependent (see docs/object_caching.md).
    """

    name = "lru_size"

    def __init__(self):
        self._heap = []  # (-size, admit_seq, key)
        self._live = set()
        self._seq = 0

    def on_admit(self, obj, now):
        heapq.heappush(self._heap, (-obj.size, self._seq, obj.key))
        self._seq += 1
        self._live.add(obj.key)

    def on_evict(self, obj, now):
        self._live.discard(obj.key)

    def victim(self, residents, incoming, now):
        while self._heap:
            _, _, key = self._heap[0]
            if key in self._live:
                return key
            heapq.heappop(self._heap)  # stale entry from an earlier eviction
        raise ObjectCacheError("lru_size: victim requested from empty cache")


@register_object_policy
class GDSFPolicy(ObjectEvictionPolicy):
    """GreedyDual-Size-Frequency (Cherkasova '98).

    Priority ``H = L + frequency * cost / size`` with the inflation value
    ``L`` raised to each victim's ``H`` on eviction, so long-idle objects
    age out no matter their frequency.  ``cost`` models what a miss costs:

    * ``"unit"``  — cost 1: optimises object hit rate (classic GDSF);
    * ``"byte"``  — cost = size: ``H = L + frequency``, optimises byte hit
      rate (GreedyDual-Frequency).

    Lazy-invalidation heap: hits push a fresh entry and bump a version; the
    victim scan pops stale versions.  Tie-break is (H, push_seq, key).
    """

    name = "gdsf"

    def __init__(self, cost: str = "unit"):
        if cost not in ("unit", "byte"):
            raise ObjectCacheError(
                f"gdsf cost must be 'unit' or 'byte', got {cost!r}"
            )
        self.cost = cost
        self.inflation = 0.0
        self._heap = []  # (H, push_seq, key, version)
        self._version = {}  # key -> current version
        self._freq = {}
        self._seq = 0

    def _priority(self, obj) -> float:
        cost = obj.size if self.cost == "byte" else 1
        return self.inflation + self._freq[obj.key] * cost / obj.size

    def _push(self, obj):
        self._version[obj.key] = self._version.get(obj.key, 0) + 1
        heapq.heappush(
            self._heap,
            (self._priority(obj), self._seq, obj.key, self._version[obj.key]),
        )
        self._seq += 1

    def on_admit(self, obj, now):
        self._freq[obj.key] = 1
        self._push(obj)

    def on_hit(self, obj, now):
        self._freq[obj.key] += 1
        self._push(obj)

    def on_evict(self, obj, now):
        self._version.pop(obj.key, None)
        self._freq.pop(obj.key, None)

    def victim(self, residents, incoming, now):
        while self._heap:
            priority, _, key, version = self._heap[0]
            if self._version.get(key) == version:
                self.inflation = priority
                return key
            heapq.heappop(self._heap)
        raise ObjectCacheError("gdsf: victim requested from empty cache")


@register_object_policy
class SizeAwareRandomPolicy(ObjectEvictionPolicy):
    """Size-weighted random: victim probability proportional to object size.

    The stochastic baseline DEAP Cache compares against — evicting by size
    mass clears room quickly with no bookkeeping.  Seeded and iterated in
    resident insertion order, so replays are deterministic.
    """

    name = "random_size"

    def __init__(self, seed: int = 0):
        self._rng = Random(0x0B1EC7 ^ seed)

    def victim(self, residents, incoming, now):
        total = 0
        for obj in residents.values():
            total += obj.size
        ticket = self._rng.randrange(total)
        for key, obj in residents.items():
            ticket -= obj.size
            if ticket < 0:
                return key
        raise ObjectCacheError("random_size: victim requested from empty cache")
