"""``repro.objcache`` — the size-aware object-cache subsystem.

Everything the fixed-line CPU model cannot express: bytes-capacity caches
over variable-size objects, evict-until-fits eviction, admission control,
Zipfian/hotspot/flash-crowd/scan workload generators, a size-aware RLR
transplant with a trainable size-bucket term, and a size-aware Belady
oracle for regret grading.  See docs/object_caching.md.
"""

from repro.objcache.admission import (
    AdmissionHook,
    admission_names,
    make_admission,
)
from repro.objcache.cache import ObjectCache
from repro.objcache.core import (
    CachedObject,
    ObjectCacheError,
    ObjectCacheStats,
    ObjectRequest,
    size_bucket,
)
from repro.objcache.features import OBJECT_FEATURE_NAMES, ObjectFeatureExtractor
from repro.objcache.oracle import ObjectFutureOracle, grade_object_eviction
from repro.objcache.policies import (
    ObjectEvictionPolicy,
    make_object_policy,
    object_policy_names,
)
from repro.objcache.replay import (
    ObjectCacheResult,
    object_sweep,
    replay_object_trace,
    traces_from_specs,
)
from repro.objcache.rlr import ObjectRLRPolicy
from repro.objcache.train import train_size_weight
from repro.objcache.trace_io import (
    load_object_trace,
    save_object_trace,
    validate_object_trace_file,
)
from repro.objcache.workloads import (
    SIZE_DISTS,
    WORKLOAD_KINDS,
    ObjectTrace,
    generate_object_trace,
)

__all__ = [
    "AdmissionHook",
    "CachedObject",
    "OBJECT_FEATURE_NAMES",
    "ObjectCache",
    "ObjectCacheError",
    "ObjectCacheResult",
    "ObjectCacheStats",
    "ObjectEvictionPolicy",
    "ObjectFeatureExtractor",
    "ObjectFutureOracle",
    "ObjectRLRPolicy",
    "ObjectRequest",
    "ObjectTrace",
    "SIZE_DISTS",
    "WORKLOAD_KINDS",
    "admission_names",
    "generate_object_trace",
    "grade_object_eviction",
    "load_object_trace",
    "make_admission",
    "make_object_policy",
    "object_policy_names",
    "object_sweep",
    "replay_object_trace",
    "save_object_trace",
    "size_bucket",
    "traces_from_specs",
    "train_size_weight",
    "validate_object_trace_file",
]
