"""Hardware prefetchers (Table III: next-line at L1, IP-stride at L2).

A KPC-P-like confidence-directed stride prefetcher is also provided so the
paper's "RLR + KPC-P" comparison (§V-B) can be reproduced: low-confidence
prefetches skip the L2 fill and only land in the LLC, mirroring KPC-P's
cache-pollution avoidance.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrefetchRequest:
    """A prefetch candidate emitted by a prefetcher.

    ``fill_l2`` is False for low-confidence KPC-P prefetches, which are
    installed only in the LLC.
    """

    line_address: int
    fill_l2: bool = True


class Prefetcher:
    """Base prefetcher: observes accesses, emits prefetch candidates."""

    name = "none"

    def observe(self, access, hit: bool):
        """Return a list of :class:`PrefetchRequest` for this access."""
        return []


class NoPrefetcher(Prefetcher):
    """Disabled prefetcher (LLC in Table III)."""

    name = "none"


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential lines on demand misses.

    Prefetch-on-miss is the standard configuration for an L1 next-line
    prefetcher: hits already cover the spatial run, and issuing on every
    access would flood the lower levels with duplicate requests.
    """

    name = "next_line"

    def __init__(self, degree: int = 1, on_miss_only: bool = True) -> None:
        self.degree = degree
        self.on_miss_only = on_miss_only

    def observe(self, access, hit: bool):
        if hit and self.on_miss_only:
            return []
        base = access.line_address
        return [PrefetchRequest(base + i) for i in range(1, self.degree + 1)]


class IPStridePrefetcher(Prefetcher):
    """Classic per-PC stride prefetcher with 2-bit confidence.

    Tracks the last line address and stride per instruction pointer; once the
    same stride repeats enough times (confidence saturates past the
    threshold), it prefetches ``degree`` strides ahead.
    """

    name = "ip_stride"

    def __init__(
        self, table_size: int = 256, degree: int = 2, threshold: int = 2
    ) -> None:
        self.table_size = table_size
        self.degree = degree
        self.threshold = threshold
        self._table = {}  # pc -> [last_line, stride, confidence]

    def observe(self, access, hit: bool):
        pc = access.pc & (self.table_size - 1) if self.table_size else access.pc
        line = access.line_address
        entry = self._table.get(pc)
        if entry is None:
            self._table[pc] = [line, 0, 0]
            self._evict_if_full()
            return []
        last_line, stride, confidence = entry
        new_stride = line - last_line
        if new_stride == stride and stride != 0:
            confidence = min(confidence + 1, 3)
        else:
            confidence = max(confidence - 1, 0)
            if confidence == 0:
                stride = new_stride
        entry[0], entry[1], entry[2] = line, stride, confidence
        if confidence >= self.threshold and stride != 0:
            return [
                PrefetchRequest(line + stride * i) for i in range(1, self.degree + 1)
            ]
        return []

    def _evict_if_full(self) -> None:
        # Bounded table: drop an arbitrary (oldest-inserted) entry.
        if len(self._table) > self.table_size:
            self._table.pop(next(iter(self._table)))


class KPCPrefetcher(IPStridePrefetcher):
    """KPC-P approximation: confidence decides the fill level.

    High-confidence prefetches fill L2 (and LLC); low-confidence ones fill
    only the LLC (``fill_l2=False``), avoiding L2 pollution as in the paper's
    description of KPC-P.
    """

    name = "kpc_p"

    def __init__(
        self,
        table_size: int = 256,
        degree: int = 2,
        threshold: int = 1,
        high_confidence: int = 3,
    ) -> None:
        super().__init__(table_size=table_size, degree=degree, threshold=threshold)
        self.high_confidence = high_confidence

    def observe(self, access, hit: bool):
        requests = super().observe(access, hit)
        if not requests:
            return []
        pc = access.pc & (self.table_size - 1) if self.table_size else access.pc
        confidence = self._table[pc][2]
        fill_l2 = confidence >= self.high_confidence
        return [
            PrefetchRequest(request.line_address, fill_l2=fill_l2)
            for request in requests
        ]


_PREFETCHERS = {
    "none": NoPrefetcher,
    "next_line": NextLinePrefetcher,
    "ip_stride": IPStridePrefetcher,
    "kpc_p": KPCPrefetcher,
}


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Instantiate a prefetcher by registry name."""
    try:
        factory = _PREFETCHERS[name]
    except KeyError:
        known = ", ".join(sorted(_PREFETCHERS))
        raise ValueError(f"unknown prefetcher {name!r}; known: {known}") from None
    return factory(**kwargs)
