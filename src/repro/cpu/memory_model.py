"""Bandwidth- and MSHR-aware timing model (detailed mode).

The default :class:`repro.cpu.core_model.TimingModel` charges a fixed
overlap-scaled stall per access.  This detailed model additionally tracks:

* **MSHR occupancy** — only ``mshr_entries`` misses may be outstanding; a
  full MSHR file stalls the core until the oldest miss retires;
* **memory bandwidth** — DRAM serves at most one fill per
  ``memory_cycle_per_line`` cycles; queued fills add queueing delay;
* **writeback contention** — dirty evictions occupy the same DRAM channel.

It is deliberately simple (single channel, FIFO service) but captures the
first-order effects a fixed-stall model misses: bursts of misses queue, and
bandwidth-bound streaming phases stop benefitting from marginal hit-rate
improvements — the saturation the paper's lbm/milc discussion alludes to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import L1, L2, LLC, MEMORY


@dataclass(frozen=True)
class MemoryModelConfig:
    """Parameters of the detailed memory timing model."""

    mshr_entries: int = 16
    memory_latency: int = 200
    memory_cycle_per_line: int = 8  #: DRAM service interval (cycles/fill)
    l2_latency: int = 12
    llc_latency: int = 26
    issue_width: int = 3


class DetailedTimingModel:
    """Cycle accounting with MSHR and bandwidth limits.

    Time advances on a per-core virtual clock.  Each memory-level miss
    allocates an MSHR entry and a DRAM service slot; completion time is
    ``max(request time + latency, previous fill + service interval)``.
    L1/L2/LLC hits are charged like the simple model (latency, no queueing).
    """

    def __init__(self, config: MemoryModelConfig = None) -> None:
        self.config = config or MemoryModelConfig()
        self.cycles = 0.0
        self.instructions = 0
        self._mshr_free_at = [0.0] * self.config.mshr_entries
        self._dram_free_at = 0.0
        self.mshr_stall_cycles = 0.0
        self.bandwidth_queue_cycles = 0.0
        self.memory_requests = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    def charge(self, instr_delta: int, level: int, writeback: bool = False) -> None:
        """Account one demand access served at ``level``."""
        config = self.config
        self.instructions += instr_delta
        self.cycles += instr_delta / config.issue_width
        if level == L1:
            return
        if level == L2:
            self.cycles += config.l2_latency * 0.3
            return
        if level == LLC:
            self.cycles += (config.l2_latency + config.llc_latency) * 0.3
            return
        # Memory access: allocate an MSHR and a DRAM slot.
        self.memory_requests += 1
        now = self.cycles
        slot = min(range(len(self._mshr_free_at)), key=self._mshr_free_at.__getitem__)
        mshr_ready = self._mshr_free_at[slot]
        if mshr_ready > now:
            # MSHRs full: the core stalls until one frees.
            self.mshr_stall_cycles += mshr_ready - now
            self.cycles = mshr_ready
            now = mshr_ready
        service_start = max(now, self._dram_free_at)
        self.bandwidth_queue_cycles += service_start - now
        completion = service_start + config.memory_latency
        self._dram_free_at = service_start + config.memory_cycle_per_line
        if writeback:
            self._dram_free_at += config.memory_cycle_per_line
        self._mshr_free_at[slot] = completion
        # The core overlaps part of the miss latency (MLP): charge the
        # queueing in full (it is serialized at the DRAM) plus a fraction
        # of the access latency.
        self.cycles += (service_start - now) + config.memory_latency * 0.3


def run_detailed(prepared, policy, model_config: MemoryModelConfig = None):
    """Replay a prepared workload's LLC stream with detailed timing.

    Mirrors :func:`repro.eval.runner.replay` but drives the
    :class:`DetailedTimingModel` per demand access (single-core streams).
    Returns (timing_model, cache_stats).
    """
    from repro.cache.cache import Cache
    from repro.eval.runner import _instantiate

    policy = _instantiate(policy, prepared.num_cores)
    policy.bind(prepared.llc_config)
    cache = Cache(
        prepared.llc_config,
        policy,
        detailed=getattr(policy, "needs_line_metadata", True),
    )
    model = DetailedTimingModel(model_config)
    warmup_index = prepared.warmup_index
    for position, record in enumerate(prepared.llc_records):
        if position == warmup_index:
            cache.reset_stats()
            model = DetailedTimingModel(model_config)
        result = cache.access(record)
        if record.access_type.is_demand:
            level = LLC if result.hit else MEMORY
            model.charge(
                record.instr_delta, level, writeback=result.evicted_dirty
            )
    return model, cache.stats
