"""System simulator: trace -> hierarchy -> timing -> IPC.

Drives a :class:`repro.cache.hierarchy.CacheHierarchy` with a trace and a
:class:`repro.cpu.core_model.TimingModel`, handling warm-up (the paper warms
caches for 200M of 1.2B instructions, i.e. ~17%; we default to 20% of the
trace) and producing per-core IPC plus LLC statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import CoreConfig, HierarchyConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.core_model import CoreTimer, TimingModel
from repro.traces.record import Trace


@dataclass
class SystemResult:
    """Outcome of one simulation run."""

    trace_name: str
    policy_name: str
    ipc: list  #: per-core IPC
    instructions: list  #: per-core instruction counts (post-warm-up)
    llc_stats: dict
    demand_mpki: float
    llc_demand_hit_rate: float
    llc_hit_rate: float

    @property
    def single_ipc(self) -> float:
        """IPC of core 0 (single-core runs)."""
        return self.ipc[0]


@dataclass
class System:
    """A complete simulated system (cores + hierarchy + timing)."""

    hierarchy_config: HierarchyConfig
    llc_policy: object
    core_config: CoreConfig = field(default_factory=CoreConfig)
    allow_bypass: bool = False
    l2_prefetcher: str = None

    def __post_init__(self) -> None:
        self.hierarchy = CacheHierarchy(
            self.hierarchy_config,
            self.llc_policy,
            allow_bypass=self.allow_bypass,
            l2_prefetcher=self.l2_prefetcher,
        )
        self.timers = [CoreTimer() for _ in range(self.hierarchy_config.num_cores)]
        self.timing = TimingModel(self.hierarchy_config, self.core_config)

    def run(self, trace: Trace, warmup_fraction: float = 0.2) -> SystemResult:
        """Simulate ``trace``; the first ``warmup_fraction`` is uncounted."""
        warmup_end = int(len(trace.records) * warmup_fraction)
        for position, record in enumerate(trace.records):
            if position == warmup_end:
                self._reset_measurement()
            level = self.hierarchy.access(record)
            self.timing.charge(self.timers[record.core], record.instr_delta, level)
        return self._result(trace)

    def _reset_measurement(self) -> None:
        self.hierarchy.reset_stats()
        for timer in self.timers:
            timer.instructions = 0
            timer.cycles = 0.0

    def _result(self, trace: Trace) -> SystemResult:
        llc_stats = self.hierarchy.llc.stats
        total_instructions = sum(timer.instructions for timer in self.timers)
        return SystemResult(
            trace_name=trace.name,
            policy_name=getattr(self.hierarchy.llc.policy, "name", "unknown"),
            ipc=[timer.ipc for timer in self.timers],
            instructions=[timer.instructions for timer in self.timers],
            llc_stats=llc_stats.summary(),
            demand_mpki=llc_stats.demand_mpki(total_instructions),
            llc_demand_hit_rate=llc_stats.demand_hit_rate,
            llc_hit_rate=llc_stats.hit_rate,
        )
