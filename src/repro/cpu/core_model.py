"""Stall-based core timing model.

The paper runs a 6-stage, 3-issue out-of-order core with a 256-entry ROB
(Table III) in ChampSim.  For replacement-policy comparison only the *memory
stall* component of execution time varies between runs, so this model charges

    cycles += instr_delta / issue_width            (compute)
            + overlap * latency(serving level)     (memory stall)

per demand access, where ``overlap`` < 1 approximates the latency-hiding an
O3 core with a deep ROB achieves through memory-level parallelism.  L1 hits
are considered fully pipelined (no stall).  IPC = instructions / cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CoreConfig, HierarchyConfig
from repro.cache.hierarchy import L1, L2, LLC, MEMORY


@dataclass
class CoreTimer:
    """Accumulates cycles and instructions for one core."""

    instructions: int = 0
    cycles: float = 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 if nothing ran)."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


class TimingModel:
    """Converts (instr_delta, serving level) pairs into cycles."""

    def __init__(self, hierarchy_config: HierarchyConfig, core_config: CoreConfig):
        self.core_config = core_config
        self._stall = {
            L1: 0.0,  # pipelined
            L2: core_config.overlap * hierarchy_config.l2.latency,
            LLC: core_config.overlap
            * (hierarchy_config.l2.latency + hierarchy_config.llc.latency),
            MEMORY: core_config.overlap
            * (
                hierarchy_config.l2.latency
                + hierarchy_config.llc.latency
                + hierarchy_config.memory_latency
            ),
        }

    def charge(self, timer: CoreTimer, instr_delta: int, level: int) -> None:
        """Account one demand access that was served at ``level``."""
        timer.instructions += instr_delta
        timer.cycles += instr_delta / self.core_config.issue_width
        timer.cycles += self._stall[level]
