"""Core timing model, prefetchers, and system simulators.

Only the prefetchers are re-exported here: the timing/system modules import
the cache hierarchy (which itself imports the prefetchers), so re-exporting
them at package level would create an import cycle.  Import them by full
path: ``repro.cpu.core_model``, ``repro.cpu.memory_model``,
``repro.cpu.system``.
"""

from repro.cpu.prefetcher import (
    IPStridePrefetcher,
    KPCPrefetcher,
    NextLinePrefetcher,
    NoPrefetcher,
    Prefetcher,
    PrefetchRequest,
    make_prefetcher,
)

__all__ = [
    "IPStridePrefetcher",
    "KPCPrefetcher",
    "NextLinePrefetcher",
    "NoPrefetcher",
    "Prefetcher",
    "PrefetchRequest",
    "make_prefetcher",
]
