"""Hypothesis strategies over the scenario schema, plus the fuzz contract.

:func:`scenario_dicts` generates small-but-adversarial scenario documents:
phase-shifting pattern mixes, scan-thrash interleavings, working sets that
cross the cache size mid-run, and seed/associativity jitter.  Every drawn
document validates under :func:`repro.scenarios.schema.scenario_from_dict`
by construction, so the fuzzer exercises the *simulator* contract, not the
validator's rejection paths.

:func:`check_scenario_contract` is the property the fuzz suite (and the CI
``scenario-fuzz`` job) asserts for every generated scenario:

* the run completes under the requested sanitizer mode (no failed cells),
* conservation invariants hold on every cell (hits + misses == accesses,
  evictions ≤ fills, …),
* the canonical report is byte-identical across worker counts.

Hypothesis is an optional dependency of the library (tests require it);
importing this module without it raises a clear error only when a strategy
is actually requested.
"""

from __future__ import annotations

from repro.scenarios.golden import canonical_json
from repro.scenarios.runner import run_scenario
from repro.scenarios.schema import scenario_from_dict

#: Policies cheap enough to fuzz densely (no per-line learning machinery).
FUZZ_POLICIES = ("lru", "srrip", "drrip", "ship", "bip", "nru", "random")

#: Evaluation scales whose full hierarchy constructs (scale 128 shrinks the
#: L1 below one set) — small enough that a fuzz case runs in milliseconds.
FUZZ_SCALES = (32, 64)

FUZZ_WAYS = (2, 4, 8, 16)


def _strategies():
    try:
        from hypothesis import strategies
    except ImportError as error:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "scenario fuzzing needs the 'hypothesis' package"
        ) from error
    return strategies


def pattern_dicts():
    """Strategy: one synthetic pattern, biased toward adversarial shapes."""
    st = _strategies()

    def _build(kind, weight, working_set, extra):
        pattern = {"kind": kind, "weight": weight, "working_set": working_set}
        pattern.update(extra)
        return pattern

    def _extras(kind):
        if kind == "stride":
            return st.fixed_dictionaries({"stride": st.sampled_from((2, 7, 17))})
        if kind == "zipf":
            return st.fixed_dictionaries({"alpha": st.sampled_from((0.6, 1.0, 1.5))})
        if kind == "scan_hot":
            # Scan-thrash: a one-shot scan several times the cache size
            # flooding a reused hot set — the classic LRU-pathological mix.
            return st.fixed_dictionaries({
                "scan_lines": st.sampled_from((1.0, 2.0, 4.0, 8.0)),
                "hot_fraction": st.sampled_from((0.25, 0.5, 0.8)),
            })
        return st.just({})

    return st.sampled_from(
        ("stream", "stride", "cyclic", "random", "chase", "zipf", "scan_hot",
         "multi_stream")
    ).flatmap(lambda kind: st.builds(
        _build,
        st.just(kind),
        st.sampled_from((0.5, 1.0, 2.0)),
        # Straddle the cache size: fits-easily up to 4x capacity.
        st.sampled_from((0.125, 0.25, 0.5, 0.9, 1.5, 4.0)),
        _extras(kind),
    ))


def workload_dicts(name: str = "fuzzed"):
    """Strategy: one inline workload — flat mix or phase-shifting phases.

    Phase fractions are drawn as an equal split so they always satisfy the
    schema's sum-to-one rule; distinct per-phase patterns give working sets
    that grow or shrink across the cache boundary mid-run.
    """
    st = _strategies()

    def _flat(patterns, delta, writes):
        return {
            "name": name, "patterns": patterns,
            "mean_instr_delta": delta, "write_fraction": writes,
        }

    def _phased(pattern_lists, delta, writes):
        fraction = round(1.0 / len(pattern_lists), 4)
        return {
            "name": name,
            "phases": [
                {"fraction": fraction, "patterns": patterns}
                for patterns in pattern_lists
            ],
            "mean_instr_delta": delta, "write_fraction": writes,
        }

    delta = st.sampled_from((2, 6, 12))
    writes = st.sampled_from((0.0, 0.1, 0.3))
    flat = st.builds(
        _flat, st.lists(pattern_dicts(), min_size=1, max_size=3),
        delta, writes,
    )
    phased = st.builds(
        _phased,
        st.lists(
            st.lists(pattern_dicts(), min_size=1, max_size=2),
            min_size=2, max_size=3,
        ),
        delta, writes,
    )
    return st.one_of(flat, phased)


def scenario_dicts():
    """Strategy: complete scenario documents that pass schema validation."""
    st = _strategies()

    def _build(config, workloads, policies, sanitize):
        return {
            "format": 1,
            "name": "fuzzed",
            "config": config,
            "workloads": [
                dict(workload, name=f"fz{index}")
                for index, workload in enumerate(workloads)
            ],
            "policies": policies,
            "sanitize": sanitize,
            "expect": [{"check": "conservation"}],
        }

    config = st.fixed_dictionaries({
        "scale": st.sampled_from(FUZZ_SCALES),
        "llc_ways": st.sampled_from(FUZZ_WAYS),  # associativity jitter
        "trace_length": st.integers(min_value=200, max_value=1200),
        "seed": st.integers(min_value=0, max_value=9999),  # seed jitter
        "warmup_fraction": st.sampled_from((0.0, 0.2)),
    })
    return st.builds(
        _build,
        config,
        st.lists(workload_dicts(), min_size=1, max_size=2),
        st.lists(st.sampled_from(FUZZ_POLICIES), min_size=1, max_size=3,
                 unique=True),
        st.sampled_from(("off", "normal", "strict")),
    )


def check_scenario_contract(data: dict, jobs=(1, 2)) -> dict:
    """Assert the simulator contract for one generated scenario document.

    Runs the scenario once per entry in ``jobs`` and asserts the canonical
    reports are byte-identical, that no cell failed, and that conservation
    holds.  Returns the first report payload (for further assertions).
    """
    scenario = scenario_from_dict(data, source="<fuzz>")
    reports = [run_scenario(scenario, jobs=count) for count in jobs]
    first = canonical_json(reports[0])
    for count, report in zip(jobs[1:], reports[1:]):
        assert canonical_json(report) == first, (
            f"report not deterministic: jobs={jobs[0]} vs jobs={count} differ"
        )
    conservation = reports[0]["conservation"]
    assert conservation["ok"], (
        "conservation invariants violated:\n  "
        + "\n  ".join(conservation["problems"])
    )
    return reports[0]
