"""Hypothesis strategies over the scenario schema, plus the fuzz contract.

:func:`scenario_dicts` generates small-but-adversarial scenario documents:
phase-shifting pattern mixes, scan-thrash interleavings, working sets that
cross the cache size mid-run, and seed/associativity jitter.  Every drawn
document validates under :func:`repro.scenarios.schema.scenario_from_dict`
by construction, so the fuzzer exercises the *simulator* contract, not the
validator's rejection paths.

:func:`check_scenario_contract` is the property the fuzz suite (and the CI
``scenario-fuzz`` job) asserts for every generated scenario:

* the run completes under the requested sanitizer mode (no failed cells),
* conservation invariants hold on every cell (hits + misses == accesses,
  evictions ≤ fills, …),
* the canonical report is byte-identical across worker counts.

Hypothesis is an optional dependency of the library (tests require it);
importing this module without it raises a clear error only when a strategy
is actually requested.
"""

from __future__ import annotations

from repro.scenarios.golden import canonical_json
from repro.scenarios.runner import run_scenario
from repro.scenarios.schema import scenario_from_dict

#: Policies cheap enough to fuzz densely (no per-line learning machinery).
FUZZ_POLICIES = ("lru", "srrip", "drrip", "ship", "bip", "nru", "random")

#: Evaluation scales whose full hierarchy constructs (scale 128 shrinks the
#: L1 below one set) — small enough that a fuzz case runs in milliseconds.
FUZZ_SCALES = (32, 64)

FUZZ_WAYS = (2, 4, 8, 16)


def _strategies():
    try:
        from hypothesis import strategies
    except ImportError as error:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "scenario fuzzing needs the 'hypothesis' package"
        ) from error
    return strategies


def pattern_dicts():
    """Strategy: one synthetic pattern, biased toward adversarial shapes."""
    st = _strategies()

    def _build(kind, weight, working_set, extra):
        pattern = {"kind": kind, "weight": weight, "working_set": working_set}
        pattern.update(extra)
        return pattern

    def _extras(kind):
        if kind == "stride":
            return st.fixed_dictionaries({"stride": st.sampled_from((2, 7, 17))})
        if kind == "zipf":
            return st.fixed_dictionaries({"alpha": st.sampled_from((0.6, 1.0, 1.5))})
        if kind == "scan_hot":
            # Scan-thrash: a one-shot scan several times the cache size
            # flooding a reused hot set — the classic LRU-pathological mix.
            return st.fixed_dictionaries({
                "scan_lines": st.sampled_from((1.0, 2.0, 4.0, 8.0)),
                "hot_fraction": st.sampled_from((0.25, 0.5, 0.8)),
            })
        return st.just({})

    return st.sampled_from(
        ("stream", "stride", "cyclic", "random", "chase", "zipf", "scan_hot",
         "multi_stream")
    ).flatmap(lambda kind: st.builds(
        _build,
        st.just(kind),
        st.sampled_from((0.5, 1.0, 2.0)),
        # Straddle the cache size: fits-easily up to 4x capacity.
        st.sampled_from((0.125, 0.25, 0.5, 0.9, 1.5, 4.0)),
        _extras(kind),
    ))


def workload_dicts(name: str = "fuzzed"):
    """Strategy: one inline workload — flat mix or phase-shifting phases.

    Phase fractions are drawn as an equal split so they always satisfy the
    schema's sum-to-one rule; distinct per-phase patterns give working sets
    that grow or shrink across the cache boundary mid-run.
    """
    st = _strategies()

    def _flat(patterns, delta, writes):
        return {
            "name": name, "patterns": patterns,
            "mean_instr_delta": delta, "write_fraction": writes,
        }

    def _phased(pattern_lists, delta, writes):
        fraction = round(1.0 / len(pattern_lists), 4)
        return {
            "name": name,
            "phases": [
                {"fraction": fraction, "patterns": patterns}
                for patterns in pattern_lists
            ],
            "mean_instr_delta": delta, "write_fraction": writes,
        }

    delta = st.sampled_from((2, 6, 12))
    writes = st.sampled_from((0.0, 0.1, 0.3))
    flat = st.builds(
        _flat, st.lists(pattern_dicts(), min_size=1, max_size=3),
        delta, writes,
    )
    phased = st.builds(
        _phased,
        st.lists(
            st.lists(pattern_dicts(), min_size=1, max_size=2),
            min_size=2, max_size=3,
        ),
        delta, writes,
    )
    return st.one_of(flat, phased)


def scenario_dicts():
    """Strategy: complete scenario documents that pass schema validation."""
    st = _strategies()

    def _build(config, workloads, policies, sanitize):
        return {
            "format": 1,
            "name": "fuzzed",
            "config": config,
            "workloads": [
                dict(workload, name=f"fz{index}")
                for index, workload in enumerate(workloads)
            ],
            "policies": policies,
            "sanitize": sanitize,
            "expect": [{"check": "conservation"}],
        }

    config = st.fixed_dictionaries({
        "scale": st.sampled_from(FUZZ_SCALES),
        "llc_ways": st.sampled_from(FUZZ_WAYS),  # associativity jitter
        "trace_length": st.integers(min_value=200, max_value=1200),
        "seed": st.integers(min_value=0, max_value=9999),  # seed jitter
        "warmup_fraction": st.sampled_from((0.0, 0.2)),
    })
    return st.builds(
        _build,
        config,
        st.lists(workload_dicts(), min_size=1, max_size=2),
        st.lists(st.sampled_from(FUZZ_POLICIES), min_size=1, max_size=3,
                 unique=True),
        st.sampled_from(("off", "normal", "strict")),
    )


#: Object policies cheap enough to fuzz densely (rlr variants ride along at
#: a reduced sample so the scan stays cheap on tiny caches).
FUZZ_OBJECT_POLICIES = ("lru", "lru_size", "gdsf", "random_size", "rlr_size")

#: Capacities small enough that generated size distributions straddle them:
#: with sizes up to 256 KiB, single objects range from "tiny fraction of the
#: cache" to "bigger than the whole cache" (exercising the too-big reject
#: path and multi-victim evict-until-fits chains).
FUZZ_CAPACITIES = (65_536, 262_144, 2_000_000)


def object_workload_dicts(name: str = "fuzzed"):
    """Strategy: one object workload clause, biased toward adversarial
    shapes — flash-crowd phase shifts, scan pollution, and size
    distributions whose upper tail crosses the bytes capacity."""
    st = _strategies()

    def _build(kind, objects, alpha, sizes, extra):
        clause = {"name": name, "kind": kind, "objects": objects,
                  "alpha": alpha, "sizes": sizes}
        clause.update(extra)
        return clause

    def _extras(kind):
        if kind == "flash_crowd":
            return st.fixed_dictionaries({
                "burst_start": st.sampled_from((0.25, 0.5)),
                "burst_length": st.sampled_from((0.1, 0.3)),
                "burst_fraction": st.sampled_from((0.4, 0.8)),
            })
        if kind == "scan_mix":
            return st.fixed_dictionaries({
                "scan_fraction": st.sampled_from((0.2, 0.5)),
                "scan_size_scale": st.sampled_from((1.0, 4.0)),
            })
        if kind == "hotspot_shift":
            return st.fixed_dictionaries({
                "phases": st.sampled_from((2, 4)),
            })
        return st.just({})

    sizes = st.fixed_dictionaries({
        "dist": st.sampled_from(("fixed", "uniform", "lognormal", "pareto")),
        "min": st.sampled_from((64, 1024)),
        # The upper tail deliberately crosses FUZZ_CAPACITIES entries.
        "max": st.sampled_from((4096, 65_536, 262_144)),
        "correlate": st.sampled_from(("none", "inverse")),
    })
    return st.sampled_from(
        ("zipf", "hotspot_shift", "flash_crowd", "scan_mix")
    ).flatmap(lambda kind: st.builds(
        _build,
        st.just(kind),
        st.integers(min_value=16, max_value=400),
        st.sampled_from((0.6, 0.9, 1.2)),
        sizes,
        _extras(kind),
    ))


def object_scenario_dicts():
    """Strategy: complete ``object_cache`` scenario documents that pass
    schema validation by construction."""
    st = _strategies()

    def _build(config, workloads, policies, admission, sanitize):
        data = {
            "format": 1,
            "kind": "object_cache",
            "name": "fuzzed-objcache",
            "config": config,
            "workloads": [
                dict(workload, name=f"fz{index}")
                for index, workload in enumerate(workloads)
            ],
            "policies": policies,
            "sanitize": sanitize,
            "expect": [{"check": "conservation"}],
            "params": {"rlr_size": {"sample": 32}}
            if "rlr_size" in policies else {},
        }
        if admission is not None:
            data["admission"] = admission
        return data

    config = st.fixed_dictionaries({
        "capacity_bytes": st.sampled_from(FUZZ_CAPACITIES),
        "requests": st.integers(min_value=200, max_value=1500),
        "seed": st.integers(min_value=0, max_value=9999),
    })
    admission = st.one_of(
        st.none(),
        st.just({"kind": "always"}),
        st.just({"kind": "size_threshold", "max_size": 32_768}),
        st.just({"kind": "freq_gate", "threshold": 2}),
    )
    return st.builds(
        _build,
        config,
        st.lists(object_workload_dicts(), min_size=1, max_size=2),
        st.lists(st.sampled_from(FUZZ_OBJECT_POLICIES), min_size=1,
                 max_size=3, unique=True),
        admission,
        st.sampled_from(("off", "normal", "strict")),
    )


def check_object_scenario_contract(data: dict, jobs=(1, 2)) -> dict:
    """The object-cache fuzz property: same contract as
    :func:`check_scenario_contract` — deterministic across worker counts, no
    failed cells, byte/object conservation on every cell (admitted bytes ==
    evicted bytes + resident bytes, occupancy under capacity, ...) — plus no
    sanitizer violations from the admission/eviction contract wrappers.
    """
    report = check_scenario_contract(data, jobs=jobs)
    for cell in report["cells"]:
        assert not cell.get("violations"), (
            f"{cell['workload']}/{cell['policy']}: admission/eviction "
            f"contract violated: {cell['violations']}"
        )
    return report


def check_scenario_contract(data: dict, jobs=(1, 2)) -> dict:
    """Assert the simulator contract for one generated scenario document.

    Runs the scenario once per entry in ``jobs`` and asserts the canonical
    reports are byte-identical, that no cell failed, and that conservation
    holds.  Returns the first report payload (for further assertions).
    """
    scenario = scenario_from_dict(data, source="<fuzz>")
    reports = [run_scenario(scenario, jobs=count) for count in jobs]
    first = canonical_json(reports[0])
    for count, report in zip(jobs[1:], reports[1:]):
        assert canonical_json(report) == first, (
            f"report not deterministic: jobs={jobs[0]} vs jobs={count} differ"
        )
    conservation = reports[0]["conservation"]
    assert conservation["ok"], (
        "conservation invariants violated:\n  "
        + "\n  ".join(conservation["problems"])
    )
    return reports[0]
