"""Scenario file parsing and the browsable scenario library.

Scenario files are YAML (``.yaml``/``.yml``) or JSON (``.json``) documents
validated by :func:`repro.scenarios.schema.scenario_from_dict`.  The
checked-in library lives under ``scenarios/`` at the repository root
(override with ``REPRO_SCENARIO_DIR``); :func:`load_library` maps scenario
names to validated :class:`~repro.scenarios.schema.Scenario` objects.

YAML support rides on :mod:`yaml` when it is installed; JSON scenarios
always work, and a missing YAML dependency produces a clear error naming
the file instead of an ImportError deep in a sweep.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.scenarios.schema import Scenario, ScenarioError, scenario_from_dict

#: File suffixes the loader recognizes.
SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")

ENV_SCENARIO_DIR = "REPRO_SCENARIO_DIR"


def _load_yaml_module():
    try:
        import yaml
    except ImportError:  # pragma: no cover - environment-dependent
        return None
    return yaml


def parse_scenario_text(text: str, source: str = None,
                        fmt: str = "yaml") -> Scenario:
    """Parse + validate one scenario document from a string."""
    if fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError([f"not valid JSON: {error}"], source=source)
    else:
        yaml = _load_yaml_module()
        if yaml is None:
            raise ScenarioError(
                ["PyYAML is not installed; use a .json scenario or install "
                 "pyyaml"], source=source,
            )
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ScenarioError([f"not valid YAML: {error}"], source=source)
    return scenario_from_dict(data, source=source)


def load_scenario(path) -> Scenario:
    """Load + validate one scenario file (YAML or JSON by suffix)."""
    path = Path(path)
    if not path.is_file():
        raise ScenarioError(["file does not exist"], source=str(path))
    if path.suffix not in SCENARIO_SUFFIXES:
        raise ScenarioError(
            [f"unrecognized suffix {path.suffix!r} (expected one of "
             f"{', '.join(SCENARIO_SUFFIXES)})"], source=str(path),
        )
    fmt = "json" if path.suffix == ".json" else "yaml"
    return parse_scenario_text(
        path.read_text(encoding="utf-8"), source=str(path), fmt=fmt
    )


def default_library_dir() -> Path:
    """The checked-in scenario library root.

    ``REPRO_SCENARIO_DIR`` wins; otherwise ``scenarios/`` under the current
    directory, falling back to the repository checkout this module lives in.
    """
    configured = os.environ.get(ENV_SCENARIO_DIR)
    if configured:
        return Path(configured)
    local = Path.cwd() / "scenarios"
    if local.is_dir():
        return local
    return Path(__file__).resolve().parents[3] / "scenarios"


def find_scenario_files(root=None) -> list:
    """Every scenario file under ``root``, deterministically ordered."""
    root = Path(root) if root is not None else default_library_dir()
    if not root.is_dir():
        return []
    return sorted(
        path for path in root.rglob("*")
        if path.is_file() and path.suffix in SCENARIO_SUFFIXES
    )


def load_library(root=None) -> dict:
    """Load every scenario under the library root: ``{name: Scenario}``.

    Raises :class:`ScenarioError` on the first invalid file or on duplicate
    scenario names — a broken library should fail loudly, not partially.
    """
    library = {}
    for path in find_scenario_files(root):
        scenario = load_scenario(path)
        if scenario.name in library:
            raise ScenarioError(
                [f"duplicate scenario name {scenario.name!r} (also defined "
                 f"in {library[scenario.name].source})"], source=str(path),
            )
        library[scenario.name] = scenario
    return library


def resolve_scenario(name_or_path, root=None) -> Scenario:
    """A scenario by library name or by file path (paths win)."""
    path = Path(str(name_or_path))
    if path.suffix in SCENARIO_SUFFIXES or path.is_file():
        return load_scenario(path)
    library = load_library(root)
    if name_or_path in library:
        return library[name_or_path]
    known = ", ".join(sorted(library)) or "none found"
    raise ScenarioError(
        [f"no scenario named {name_or_path!r} in the library "
         f"(known: {known})"], source=str(name_or_path),
    )


# -- porting the built-in workload models --------------------------------------


def model_scenario_dict(suite: str) -> dict:
    """The built-in SPEC/CloudSuite models as one inline-workload scenario.

    This is the generator behind ``scenarios/models/<suite>.yaml``: every
    workload model is spelled out as an inline pattern mix, so the checked-in
    files are a complete, greppable port of :mod:`repro.traces.spec_models`
    — and a drift test can verify file and code still agree.
    """
    from repro.scenarios.schema import _pattern_to_dict
    from repro.traces.spec_models import CLOUDSUITE, SPEC2006

    specs = {"spec2006": SPEC2006, "cloudsuite": CLOUDSUITE}[suite]
    workloads = []
    for spec in specs:
        workloads.append({
            "name": spec.name,
            "mean_instr_delta": spec.mean_instr_delta,
            "write_fraction": spec.write_fraction,
            "patterns": [_pattern_to_dict(p) for p in spec.patterns],
        })
    return {
        "format": 1,
        "name": f"models-{suite}",
        "title": f"The {suite} workload models as inline scenario workloads",
        "description": (
            "Generated from repro.traces.spec_models (kept in sync by "
            "tests/test_scenarios.py::test_model_port_matches_code). Inline "
            "definitions here build byte-identical traces to the built-in "
            "models."
        ),
        "config": {"scale": 64, "trace_length": 2000, "seed": 7},
        "workloads": workloads,
        "policies": ["lru"],
        "sanitize": "normal",
    }
