"""Golden-report regression: canonical digests pinned under ``tests/goldens/``.

A *golden* is the canonical JSON report of one scenario plus its SHA-256
digest, checked into the repository.  The regression suite re-runs each
golden scenario and compares digests; on mismatch it renders a readable
per-cell diff (policy, workload, which metric moved and by how much)
instead of a bare assertion failure.  ``repro scenario bless`` re-records
goldens after an intentional behaviour change.

Canonical JSON is ``json.dumps(..., sort_keys=True, separators=(",", ":"))``
over plain ints/floats/strings — float ``repr`` is deterministic in Python 3,
so equal reports serialize to equal bytes on every platform and job count.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

ENV_GOLDEN_DIR = "REPRO_GOLDEN_DIR"


def canonical_json(payload) -> str:
    """The canonical (byte-stable) JSON serialization of a report payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def report_digest(payload) -> str:
    """SHA-256 hex digest of the canonical serialization."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def default_golden_dir() -> Path:
    """Where goldens live: ``REPRO_GOLDEN_DIR`` or ``tests/goldens/``."""
    configured = os.environ.get(ENV_GOLDEN_DIR)
    if configured:
        return Path(configured)
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


def golden_path(name: str, root=None) -> Path:
    root = Path(root) if root is not None else default_golden_dir()
    return root / f"{name}.json"


def read_golden(name: str, root=None, verify: bool = True):
    """The stored golden document ``{"digest", "report"}``, or ``None``.

    ``verify=True`` (the default) re-derives the digest of the *stored*
    report and demands it match the *stored* digest — a golden whose two
    halves disagree (bit rot, a hand edit of one half) is corruption, not
    a legitimate regression, and raises a typed
    :class:`~repro.store.errors.ArtifactCorruptionError` instead of
    producing a misleading scenario diff.
    """
    from repro.store.errors import ArtifactCorruptionError

    path = golden_path(name, root)
    if not path.is_file():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise ArtifactCorruptionError(
            f"golden {path} does not parse: {error}",
            reason="bad_payload",
            path=path,
        ) from error
    if verify and isinstance(document, dict):
        stored = document.get("digest")
        actual = report_digest(document.get("report", {}))
        if stored != actual:
            raise ArtifactCorruptionError(
                f"golden {path} failed its integrity check: stored digest "
                f"{str(stored)[:12]}... does not match the stored report "
                f"({actual[:12]}...) — bit rot or a hand edit; re-bless or "
                f"restore from version control",
                reason="manifest_mismatch",
                path=path,
            )
    return document


def write_golden(name: str, payload: dict, root=None) -> Path:
    """Record (bless) a scenario report as the new golden."""
    path = golden_path(name, root)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"digest": report_digest(payload), "report": payload}
    path.write_text(
        json.dumps(document, sort_keys=True, indent=1) + "\n",
        encoding="utf-8",
    )
    return path


# -- readable report diffs -----------------------------------------------------

#: Cell metrics compared (and reported) when a golden digest moves.  CPU
#: cells carry the first three, object-cache cells the last two; a metric
#: absent from both sides of a diff is skipped.
_DIFF_METRICS = ("hit_rate", "demand_hit_rate", "demand_mpki",
                 "byte_hit_rate", "object_hit_rate")


def _cell_key(cell) -> tuple:
    return (cell["workload"], cell["policy"], cell.get("seed", 0))


def _describe(key: tuple) -> str:
    workload, policy, seed = key
    return f"{workload} / {policy} (seed {seed})"


def diff_reports(old: dict, new: dict) -> list:
    """Human-readable differences between two report payloads.

    Returns a list of lines; empty means the reports are equivalent (their
    canonical serializations would also be byte-identical).
    """
    lines = []
    if canonical_json(old.get("scenario")) != canonical_json(new.get("scenario")):
        lines.append(
            "scenario definition changed (config/workloads/policies differ "
            "from the blessed golden)"
        )
    old_cells = {_cell_key(cell): cell for cell in old.get("cells", ())}
    new_cells = {_cell_key(cell): cell for cell in new.get("cells", ())}
    for key in sorted(old_cells.keys() - new_cells.keys()):
        lines.append(f"cell removed: {_describe(key)}")
    for key in sorted(new_cells.keys() - old_cells.keys()):
        lines.append(f"cell added: {_describe(key)}")
    for key in sorted(old_cells.keys() & new_cells.keys()):
        lines.extend(_diff_cell(old_cells[key], new_cells[key], key))
    old_expect = {canonical_json(e) for e in old.get("expectations", ())}
    new_expect = [e for e in new.get("expectations", ())
                  if canonical_json(e) not in old_expect]
    for row in new_expect:
        lines.append(
            f"expectation changed: {json.dumps(row['expect'])} is now "
            f"{row['status']}"
            + (f" ({'; '.join(row['failures'])})" if row["failures"] else "")
        )
    if not lines and canonical_json(old) != canonical_json(new):
        lines.append(
            "reports differ outside tracked fields (compare the canonical "
            "JSON directly)"
        )
    return lines


def _diff_cell(old: dict, new: dict, key: tuple) -> list:
    lines = []
    for metric in _DIFF_METRICS:
        before, after = old.get(metric), new.get(metric)
        if before != after:
            lines.append(
                f"{_describe(key)}: {metric} {before:.6f} -> {after:.6f} "
                f"({after - before:+.6f})"
            )
    if old.get("ipc") != new.get("ipc"):
        before = ", ".join(f"{v:.4f}" for v in old.get("ipc", ()))
        after = ", ".join(f"{v:.4f}" for v in new.get("ipc", ()))
        lines.append(f"{_describe(key)}: ipc [{before}] -> [{after}]")
    old_stats, new_stats = old.get("stats", {}), new.get("stats", {})
    for counter in sorted(set(old_stats) | set(new_stats)):
        before, after = old_stats.get(counter), new_stats.get(counter)
        if before != after:
            lines.append(
                f"{_describe(key)}: {counter} {before} -> {after} "
                f"({after - before:+d})"
            )
    if old.get("violations") != new.get("violations"):
        lines.append(
            f"{_describe(key)}: sanitizer violations "
            f"{old.get('violations', [])} -> {new.get('violations', [])}"
        )
    if old.get("regret") != new.get("regret"):
        lines.append(
            f"{_describe(key)}: regret summary {old.get('regret')} -> "
            f"{new.get('regret')}"
        )
    if old.get("status") != new.get("status"):
        lines.append(
            f"{_describe(key)}: status {old.get('status')} -> "
            f"{new.get('status')}"
        )
    return lines


def compare_to_golden(name: str, payload: dict, root=None):
    """Compare a fresh report against the stored golden.

    Returns ``None`` when no golden exists, ``[]`` on a match, else the
    readable diff lines.
    """
    stored = read_golden(name, root)
    if stored is None:
        return None
    if stored.get("digest") == report_digest(payload):
        return []
    lines = diff_reports(stored.get("report", {}), payload)
    return lines or ["digest mismatch but no tracked field differs"]
