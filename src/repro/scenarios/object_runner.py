"""Execute ``object_cache`` scenarios into canonical report payloads.

Mirrors :mod:`repro.scenarios.runner` for the object kind: cells sorted by
``(seed, workload, policy)``, full-``repr`` floats, byte-identical payloads
across job counts — the same guarantee the golden-regression harness pins —
plus the object conservation laws (byte/object accounting from
:func:`repro.objcache.core.conservation_problems`) on every cell and the
object expectation checks (byte/object hit-rate bounds, ``beats`` claims,
size-aware-Belady regret ceilings).
"""

from __future__ import annotations

from repro.objcache.core import conservation_problems
from repro.objcache.replay import object_sweep
from repro.objcache.workloads import generate_object_trace
from repro.scenarios.object_schema import ObjectScenario
from repro.scenarios.runner import REPORT_FORMAT


def object_scenario_traces(scenario: ObjectScenario, seed: int) -> list:
    """Materialise one run's worth of workload traces (deterministic)."""
    traces = []
    for clause in scenario.workloads:
        traces.append(generate_object_trace(
            name=clause.name,
            kind=clause.kind,
            objects=clause.objects,
            length=(clause.length if clause.length is not None
                    else scenario.config.requests),
            seed=seed,
            alpha=clause.alpha,
            sizes=clause.sizes or None,
            **clause.params,
        ))
    return traces


def _cell_payload(cell, seed: int, capacity_bytes: int,
                  decisions_enabled: bool) -> dict:
    result = cell.result
    payload = {
        "workload": cell.workload,
        "policy": cell.policy,
        "seed": seed,
        "status": cell.status,
        "byte_hit_rate": result.byte_hit_rate,
        "object_hit_rate": result.object_hit_rate,
        "capacity_bytes": capacity_bytes,
        "stats": result.stats_dict(),
    }
    if cell.violations:
        payload["violations"] = list(cell.violations)
    if decisions_enabled and cell.decisions:
        summary = cell.decisions.get("summary", {})
        payload["regret"] = {
            key: summary.get(key, 0)
            for key in ("evictions", "graded", "optimal", "neutral",
                        "harmful", "regret_x2")
        }
    return payload


def run_object_scenario(
    scenario: ObjectScenario,
    jobs: int = 1,
    cache_dir=None,
    progress=None,
    decisions: int = None,
) -> dict:
    """Run one object scenario; return its canonical report payload.

    Same contract as :func:`repro.scenarios.runner.run_scenario`:
    ``decisions`` forces a decision-log sample rate, ``regret`` expectations
    auto-enable tracing at rate 1, failed cells raise.  ``cache_dir`` is
    accepted for signature parity (object replays need no prep pass).
    """
    del cache_dir  # no prepared-state cache in the object world
    if decisions is None and any(e.check == "regret" for e in scenario.expect):
        decisions = 1
    capacity = scenario.config.capacity_bytes
    cells = []
    for seed in scenario.run_seeds:
        traces = object_scenario_traces(scenario, seed)
        report = object_sweep(
            traces,
            capacity,
            list(scenario.policies),
            admission=scenario.admission,
            policy_params=scenario.params,
            jobs=jobs,
            sanitize=scenario.sanitize,
            decisions=decisions,
        )
        failures = report.failures()
        if failures:
            first = failures[0]
            last_line = (first.error or "?").strip().splitlines()[-1]
            raise RuntimeError(
                f"scenario {scenario.name!r}: {len(failures)} cell(s) failed "
                f"(first: {first.workload}/{first.policy}: {last_line})"
            )
        for cell in sorted(report.cells,
                           key=lambda c: (c.workload, c.policy)):
            cells.append(_cell_payload(cell, seed, capacity,
                                       decisions is not None))
        if progress is not None:
            progress(f"seed {seed}: {len(report.cells)} object cells in "
                     f"{report.wall_seconds:.2f}s")
    payload = {
        "format": REPORT_FORMAT,
        "scenario": scenario.as_dict(),
        "cells": cells,
        "conservation": _check_conservation(cells, capacity),
        "expectations": evaluate_object_expectations(scenario, cells),
    }
    payload["ok"] = (
        payload["conservation"]["ok"]
        and all(e["status"] == "pass" for e in payload["expectations"])
    )
    return payload


def _check_conservation(cells, capacity_bytes: int) -> dict:
    problems = []
    for cell in cells:
        for problem in conservation_problems(cell["stats"], capacity_bytes):
            problems.append(
                f"{cell['workload']}/{cell['policy']} (seed "
                f"{cell['seed']}): {problem}"
            )
    return {"ok": not problems, "problems": problems}


# -- expectations --------------------------------------------------------------


def _matching(cells, expectation):
    for cell in cells:
        if expectation.policy and cell["policy"] != expectation.policy:
            continue
        if expectation.workload and cell["workload"] != expectation.workload:
            continue
        yield cell


def _check_rate(cells, expectation, metric: str) -> list:
    failures = []
    label = metric.replace("_", " ")
    for cell in _matching(cells, expectation):
        rate = cell[metric]
        if expectation.min is not None and rate < expectation.min:
            failures.append(
                f"{cell['workload']}/{cell['policy']}: {label} {rate:.4f} "
                f"below min {expectation.min}"
            )
        if expectation.max is not None and rate > expectation.max:
            failures.append(
                f"{cell['workload']}/{cell['policy']}: {label} {rate:.4f} "
                f"above max {expectation.max}"
            )
    return failures


def _check_beats(cells, expectation) -> list:
    """``policy`` must strictly beat ``over`` on ``metric``, cell by cell.

    The claim is evaluated per (workload, seed) pair — an aggregate win that
    hides a per-workload loss fails — with an optional ``min`` margin
    (absolute difference the winner must clear, default strictly greater).
    """
    baselines = {
        (cell["workload"], cell["seed"]): cell[expectation.metric]
        for cell in cells if cell["policy"] == expectation.over
    }
    margin = expectation.min or 0.0
    failures = []
    compared = 0
    for cell in _matching(cells, expectation):
        if cell["policy"] != expectation.policy:
            continue
        baseline = baselines.get((cell["workload"], cell["seed"]))
        if baseline is None:
            continue
        compared += 1
        value = cell[expectation.metric]
        if not value > baseline + margin:
            failures.append(
                f"{cell['workload']} (seed {cell['seed']}): "
                f"{expectation.policy} {expectation.metric} {value:.4f} does "
                f"not beat {expectation.over} {baseline:.4f}"
                + (f" by {margin}" if margin else "")
            )
    if not compared:
        return [f"no cells compare {expectation.policy!r} against "
                f"{expectation.over!r}"]
    return failures


def _check_regret(cells, expectation) -> list:
    failures = []
    seen = False
    for cell in _matching(cells, expectation):
        regret = cell.get("regret")
        if regret is None or not regret.get("graded"):
            continue
        seen = True
        value = regret["regret_x2"] / (2 * regret["graded"])
        if value > expectation.max:
            failures.append(
                f"{cell['workload']}/{cell['policy']}: size-aware Belady "
                f"regret {value:.4f} above ceiling {expectation.max}"
            )
    if not seen:
        return ["no graded decisions to check regret against"]
    return failures


def evaluate_object_expectations(scenario: ObjectScenario, cells) -> list:
    """Check every declared expectation; returns one result row each."""
    results = []
    for expectation in scenario.expect:
        if expectation.check == "conservation":
            failures = [
                problem for cell in _matching(cells, expectation)
                for problem in conservation_problems(
                    cell["stats"], scenario.config.capacity_bytes)
            ]
        elif expectation.check in ("byte_hit_rate", "object_hit_rate"):
            failures = _check_rate(cells, expectation, expectation.check)
        elif expectation.check == "beats":
            failures = _check_beats(cells, expectation)
        else:  # regret (the schema admits nothing else)
            failures = _check_regret(cells, expectation)
        results.append({
            "expect": expectation.as_dict(),
            "status": "pass" if not failures else "fail",
            "failures": failures,
        })
    return results
