"""Declarative scenarios: experiments as validated, runnable, pinnable data.

* :mod:`repro.scenarios.schema` — the scenario model + whole-file validation
* :mod:`repro.scenarios.loader` — YAML/JSON parsing and the ``scenarios/``
  library
* :mod:`repro.scenarios.runner` — execution, conservation invariants,
  expectation checks
* :mod:`repro.scenarios.golden` — canonical digests and readable regression
  diffs
* :mod:`repro.scenarios.fuzz` — hypothesis strategies over the schema
"""

from repro.scenarios.golden import (
    canonical_json,
    compare_to_golden,
    default_golden_dir,
    diff_reports,
    golden_path,
    read_golden,
    report_digest,
    write_golden,
)
from repro.scenarios.loader import (
    default_library_dir,
    find_scenario_files,
    load_library,
    load_scenario,
    parse_scenario_text,
    resolve_scenario,
)
from repro.scenarios.object_runner import run_object_scenario
from repro.scenarios.object_schema import (
    ObjectExpectation,
    ObjectScenario,
    ObjectScenarioConfig,
    ObjectWorkloadClause,
    object_scenario_from_dict,
)
from repro.scenarios.runner import (
    ExpectationFailure,
    check_report,
    require_ok,
    run_scenario,
)
from repro.scenarios.schema import (
    SCENARIO_KINDS,
    Expectation,
    Scenario,
    ScenarioConfig,
    ScenarioError,
    UnknownScenarioKindError,
    WorkloadClause,
    scenario_from_dict,
)

__all__ = [
    "Expectation",
    "ExpectationFailure",
    "ObjectExpectation",
    "ObjectScenario",
    "ObjectScenarioConfig",
    "ObjectWorkloadClause",
    "SCENARIO_KINDS",
    "Scenario",
    "ScenarioConfig",
    "ScenarioError",
    "UnknownScenarioKindError",
    "WorkloadClause",
    "canonical_json",
    "check_report",
    "compare_to_golden",
    "default_golden_dir",
    "default_library_dir",
    "diff_reports",
    "find_scenario_files",
    "golden_path",
    "load_library",
    "load_scenario",
    "object_scenario_from_dict",
    "parse_scenario_text",
    "read_golden",
    "report_digest",
    "require_ok",
    "resolve_scenario",
    "run_object_scenario",
    "run_scenario",
    "scenario_from_dict",
    "write_golden",
]
