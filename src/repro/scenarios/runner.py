"""Execute scenarios: build traces, sweep, check invariants, report.

:func:`run_scenario` turns a validated :class:`~repro.scenarios.schema.Scenario`
into a *canonical report*: a plain-JSON payload whose cells are sorted by
``(seed, workload, policy)`` and whose floats carry full ``repr`` precision,
so the same scenario produces byte-identical payloads across job counts,
interruptions, and machines (the guarantee the golden-regression harness in
:mod:`repro.scenarios.golden` pins).

Every run checks the *conservation invariants* on every cell — hits + misses
== accesses, evictions never exceed fills (misses − bypasses), dirty
evictions never exceed evictions — and then the scenario's declared
expectations (hit-rate bounds, speedup floors, Belady-regret ceilings,
Belady dominance).
"""

from __future__ import annotations

from repro.eval.metrics import geomean, mix_speedup
from repro.scenarios.schema import Scenario, WorkloadClause
from repro.traces.record import Trace
from repro.traces.spec_models import WorkloadSpec, build_trace, get_workload

#: Report payload format (bumped on incompatible payload changes).
REPORT_FORMAT = 1


class ExpectationFailure(AssertionError):
    """A scenario ran fine but one of its expected invariants failed."""

    def __init__(self, scenario_name: str, failures):
        self.failures = list(failures)
        super().__init__(
            f"scenario {scenario_name!r}: {len(self.failures)} expectation "
            "failure(s):\n" +
            "\n".join(f"  - {failure}" for failure in self.failures)
        )


# -- trace construction --------------------------------------------------------


def build_clause_trace(
    clause: WorkloadClause, llc_lines: int, length: int, seed: int,
    core: int = 0,
) -> Trace:
    """Instantiate one workload clause as a concrete trace.

    Model references delegate to the built-in workload models (identical
    bytes to :meth:`EvalConfig.trace`); inline clauses build one
    :class:`WorkloadSpec` per phase and concatenate the phases, which is
    what lets a scenario shift its mix — or walk its working set across the
    cache size — mid-run.
    """
    if not clause.inline:
        trace = build_trace(
            get_workload(clause.model), llc_lines=llc_lines, length=length,
            seed=seed, core=core,
        )
        if clause.name != clause.model:
            trace.name = clause.name
        return trace
    records = []
    remaining = length
    for index, phase in enumerate(clause.phases):
        if index + 1 == len(clause.phases):
            phase_length = remaining  # last phase absorbs rounding
        else:
            phase_length = min(remaining, max(1, round(phase.fraction * length)))
        if phase_length <= 0:
            continue
        spec = WorkloadSpec(
            name=clause.name,
            suite="scenario",
            patterns=phase.patterns,
            mean_instr_delta=clause.mean_instr_delta,
            write_fraction=clause.write_fraction,
        )
        phase_trace = build_trace(
            spec, llc_lines=llc_lines, length=phase_length,
            seed=seed + 7919 * index, core=core,
        )
        records.extend(phase_trace.records)
        remaining -= phase_length
    return Trace(clause.name, records)


def scenario_traces(scenario: Scenario, eval_config, seed: int) -> list:
    """The traces one scenario run sweeps (single-core cells or mixes)."""
    llc_lines = eval_config.llc_lines
    length = scenario.config.trace_length
    clauses = {clause.name: clause for clause in scenario.workloads}
    if scenario.mixes is None:
        return [
            build_clause_trace(clause, llc_lines, length, seed)
            for clause in scenario.workloads
        ]
    if scenario.mixes.random_count:
        from repro.traces.mix import random_mixes

        mixes = random_mixes(
            scenario.workload_names, scenario.mixes.random_count,
            mix_size=scenario.config.num_cores, seed=seed,
        )
    else:
        mixes = scenario.mixes.explicit
    from repro.traces.mix import interleave

    traces = []
    for mix in mixes:
        per_core = [
            build_clause_trace(clauses[name], llc_lines, length, seed, core=i)
            for i, name in enumerate(mix)
        ]
        traces.append(interleave(per_core))
    return traces


# -- conservation invariants ---------------------------------------------------

#: The llc_stats counters a canonical cell carries (deterministic subset).
CELL_STAT_KEYS = (
    "accesses", "hits", "misses", "evictions", "dirty_evictions", "bypasses",
)


def conservation_problems(stats: dict) -> list:
    """Violated conservation laws in one cell's LLC counters (empty = ok)."""
    problems = []
    if stats["hits"] + stats["misses"] != stats["accesses"]:
        problems.append(
            f"hits ({stats['hits']}) + misses ({stats['misses']}) != "
            f"accesses ({stats['accesses']})"
        )
    fills = stats["misses"] - stats["bypasses"]
    if stats["evictions"] > fills:
        problems.append(
            f"evictions ({stats['evictions']}) exceed fills ({fills} = "
            f"misses - bypasses)"
        )
    if stats["dirty_evictions"] > stats["evictions"]:
        problems.append(
            f"dirty evictions ({stats['dirty_evictions']}) exceed total "
            f"evictions ({stats['evictions']})"
        )
    if stats["bypasses"] > stats["misses"]:
        problems.append(
            f"bypasses ({stats['bypasses']}) exceed misses "
            f"({stats['misses']})"
        )
    return problems


# -- running -------------------------------------------------------------------


def _cell_payload(cell, seed: int, decisions_enabled: bool) -> dict:
    result = cell.result
    payload = {
        "workload": cell.workload,
        "policy": cell.policy,
        "seed": seed,
        "status": cell.status,
        "ipc": list(result.ipc),
        "hit_rate": result.llc_hit_rate,
        "demand_hit_rate": result.llc_demand_hit_rate,
        "demand_mpki": result.demand_mpki,
        "stats": {key: result.llc_stats[key] for key in CELL_STAT_KEYS},
    }
    if cell.violations:
        payload["violations"] = list(cell.violations)
    if decisions_enabled and cell.decisions:
        summary = cell.decisions.get("summary", {})
        payload["regret"] = {
            key: summary.get(key, 0)
            for key in ("evictions", "graded", "optimal", "neutral",
                        "harmful", "regret_x2")
        }
    return payload


def run_scenario(
    scenario: Scenario,
    jobs: int = 1,
    cache_dir=None,
    progress=None,
    decisions: int = None,
) -> dict:
    """Run one scenario; return its canonical report payload.

    ``decisions`` forces a per-eviction decision-log sample rate; when the
    scenario carries ``regret`` expectations, decision tracing is enabled
    automatically (rate 1) so regret is measurable.  Failed cells raise —
    a scenario whose simulation crashes has no meaningful report.

    Dispatches on the scenario kind, so callers can hand this any loaded
    scenario: ``object_cache`` scenarios route to
    :func:`repro.scenarios.object_runner.run_object_scenario`.
    """
    if getattr(scenario, "scenario_kind", "cpu_cache") == "object_cache":
        from repro.scenarios.object_runner import run_object_scenario

        return run_object_scenario(
            scenario, jobs=jobs, cache_dir=cache_dir, progress=progress,
            decisions=decisions,
        )
    from repro.eval.parallel import parallel_sweep

    if decisions is None and any(e.check == "regret" for e in scenario.expect):
        decisions = 1
    cells = []
    for seed in scenario.run_seeds:
        eval_config = scenario.eval_config(seed)
        traces = scenario_traces(scenario, eval_config, seed)
        report = parallel_sweep(
            eval_config,
            traces,
            list(scenario.policies),
            jobs=jobs,
            num_cores=scenario.config.num_cores,
            cache_dir=cache_dir,
            sanitize=scenario.sanitize,
            decisions=decisions,
            progress=progress,
        )
        failures = report.failures()
        if failures:
            first = failures[0]
            last_line = (first.error or "?").strip().splitlines()[-1]
            raise RuntimeError(
                f"scenario {scenario.name!r}: {len(failures)} cell(s) failed "
                f"(first: {first.workload}/{first.policy}: {last_line})"
            )
        for cell in sorted(report.cells,
                           key=lambda c: (c.workload, c.policy)):
            cells.append(_cell_payload(cell, seed, decisions is not None))
    payload = {
        "format": REPORT_FORMAT,
        "scenario": scenario.as_dict(),
        "cells": cells,
        "conservation": _check_conservation(cells),
        "expectations": evaluate_expectations(scenario, cells),
    }
    payload["ok"] = (
        payload["conservation"]["ok"]
        and all(e["status"] == "pass" for e in payload["expectations"])
    )
    return payload


def _check_conservation(cells) -> dict:
    problems = []
    for cell in cells:
        for problem in conservation_problems(cell["stats"]):
            problems.append(
                f"{cell['workload']}/{cell['policy']} (seed "
                f"{cell['seed']}): {problem}"
            )
    return {"ok": not problems, "problems": problems}


# -- expectations --------------------------------------------------------------


def _matching(cells, expectation):
    for cell in cells:
        if expectation.policy and cell["policy"] != expectation.policy:
            continue
        if expectation.workload and cell["workload"] != expectation.workload:
            continue
        yield cell


def _check_hit_rate(cells, expectation) -> list:
    failures = []
    for cell in _matching(cells, expectation):
        rate = cell["hit_rate"]
        if expectation.min is not None and rate < expectation.min:
            failures.append(
                f"{cell['workload']}/{cell['policy']}: hit rate {rate:.4f} "
                f"below min {expectation.min}"
            )
        if expectation.max is not None and rate > expectation.max:
            failures.append(
                f"{cell['workload']}/{cell['policy']}: hit rate {rate:.4f} "
                f"above max {expectation.max}"
            )
    return failures


def _check_speedup(cells, expectation) -> list:
    baselines = {
        (cell["workload"], cell["seed"]): cell["ipc"]
        for cell in cells if cell["policy"] == expectation.over
    }
    ratios = []
    for cell in _matching(cells, expectation):
        if cell["policy"] == expectation.over:
            continue
        baseline = baselines.get((cell["workload"], cell["seed"]))
        if baseline is None:
            continue
        ratios.append(mix_speedup(cell["ipc"], baseline))
    if not ratios:
        return [f"no cells to compare against baseline {expectation.over!r}"]
    overall = (geomean(ratios) - 1) * 100
    if overall < expectation.min:
        return [
            f"geomean speedup over {expectation.over} is {overall:+.3f}%, "
            f"below min {expectation.min}%"
        ]
    return []


def _check_regret(cells, expectation) -> list:
    failures = []
    seen = False
    for cell in _matching(cells, expectation):
        regret = cell.get("regret")
        if regret is None or not regret.get("graded"):
            continue
        seen = True
        value = regret["regret_x2"] / (2 * regret["graded"])
        if value > expectation.max:
            failures.append(
                f"{cell['workload']}/{cell['policy']}: Belady regret "
                f"{value:.4f} above ceiling {expectation.max}"
            )
    if not seen:
        return ["no graded decisions to check regret against"]
    return failures


def _check_belady_dominates(cells) -> list:
    belady = {
        (cell["workload"], cell["seed"]): cell["hit_rate"]
        for cell in cells if cell["policy"] == "belady"
    }
    failures = []
    for cell in cells:
        if cell["policy"] == "belady":
            continue
        optimum = belady.get((cell["workload"], cell["seed"]))
        if optimum is not None and cell["hit_rate"] > optimum + 1e-9:
            failures.append(
                f"{cell['workload']}/{cell['policy']}: hit rate "
                f"{cell['hit_rate']:.4f} exceeds Belady's {optimum:.4f}"
            )
    return failures


def evaluate_expectations(scenario: Scenario, cells) -> list:
    """Check every declared expectation; returns one result row each."""
    results = []
    for expectation in scenario.expect:
        if expectation.check == "conservation":
            failures = [
                problem for cell in _matching(cells, expectation)
                for problem in conservation_problems(cell["stats"])
            ]
        elif expectation.check == "hit_rate":
            failures = _check_hit_rate(cells, expectation)
        elif expectation.check == "speedup":
            failures = _check_speedup(cells, expectation)
        elif expectation.check == "regret":
            failures = _check_regret(cells, expectation)
        else:  # belady_dominates (the schema admits nothing else)
            failures = _check_belady_dominates(cells)
        results.append({
            "expect": expectation.as_dict(),
            "status": "pass" if not failures else "fail",
            "failures": failures,
        })
    return results


def check_report(payload: dict) -> list:
    """Every failure a report payload carries (conservation + expectations)."""
    failures = list(payload.get("conservation", {}).get("problems", ()))
    for row in payload.get("expectations", ()):
        failures.extend(row.get("failures", ()))
    return failures


def require_ok(scenario: Scenario, payload: dict) -> None:
    """Raise :class:`ExpectationFailure` unless the report is clean."""
    failures = check_report(payload)
    if failures:
        raise ExpectationFailure(scenario.name, failures)
