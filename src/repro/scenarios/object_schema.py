"""The ``object_cache`` scenario kind: schema + whole-file validation.

Scenario files grow a top-level ``kind`` discriminator (absent = the
original ``cpu_cache`` kind, so every pre-existing scenario file and golden
stays byte-identical).  ``kind: object_cache`` documents switch to this
schema: bytes-capacity config, object workload generator clauses
(:mod:`repro.objcache.workloads`), object policy names, an optional
admission clause, and object-metric expectations (byte/object hit-rate
bounds, policy-beats-policy claims, size-aware-Belady regret ceilings).

Validation follows the house rule: every problem in the file is collected
and reported at once with ``path.to.the[2].field`` locators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenarios.schema import (
    FORMAT_VERSION,
    SANITIZE_MODES,
    ScenarioError,
    _Check,
    _NAME_PATTERN,
)

#: Expectation checks the object kind understands.
OBJECT_EXPECTATION_CHECKS = (
    "conservation", "byte_hit_rate", "object_hit_rate", "beats", "regret",
)

#: Metrics a ``beats`` expectation may compare.
BEATS_METRICS = ("byte_hit_rate", "object_hit_rate")

_WORKLOAD_PARAM_KEYS = {
    "zipf": set(),
    "hotspot_shift": {"phases"},
    "flash_crowd": {"burst_start", "burst_length", "burst_fraction",
                    "crowd_objects"},
    "scan_mix": {"scan_fraction", "scan_size_scale"},
}

_ADMISSION_PARAM_KEYS = {
    "always": set(),
    "size_threshold": {"max_size"},
    "freq_gate": {"width", "depth", "threshold", "reset_interval"},
}


@dataclass(frozen=True)
class ObjectScenarioConfig:
    """The object-cache knobs a scenario pins."""

    capacity_bytes: int = 1 << 22
    requests: int = 10_000
    seed: int = 7

    def as_dict(self) -> dict:
        return {
            "capacity_bytes": self.capacity_bytes,
            "requests": self.requests,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ObjectWorkloadClause:
    """One generator clause: a named request-stream recipe."""

    name: str
    kind: str
    objects: int
    length: int = None  #: None = config.requests
    alpha: float = 1.0
    sizes: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)  #: kind-specific knobs

    def as_dict(self) -> dict:
        payload = {"name": self.name, "kind": self.kind,
                   "objects": self.objects}
        if self.length is not None:
            payload["length"] = self.length
        payload["alpha"] = self.alpha
        if self.sizes:
            payload["sizes"] = dict(self.sizes)
        payload.update(self.params)
        return payload


@dataclass(frozen=True)
class ObjectExpectation:
    """One object-metric assertion checked after a scenario run."""

    check: str
    policy: str = None
    workload: str = None
    min: float = None
    max: float = None
    over: str = None  #: the baseline a ``beats`` claim compares against
    metric: str = "byte_hit_rate"

    def as_dict(self) -> dict:
        payload = {"check": self.check}
        for key in ("policy", "workload", "min", "max", "over"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.check == "beats":
            payload["metric"] = self.metric
        return payload


@dataclass(frozen=True)
class ObjectScenario:
    """A fully validated ``object_cache`` scenario, ready to run."""

    name: str
    config: ObjectScenarioConfig
    workloads: tuple  #: ObjectWorkloadClause tuple
    policies: tuple  #: object-policy registry names
    title: str = ""
    description: str = ""
    figure: str = ""
    admission: dict = None  #: {"kind": name, **params} (None = always)
    seeds: tuple = ()
    sanitize: str = "normal"
    golden: bool = False
    expect: tuple = ()  #: ObjectExpectation tuple
    params: dict = field(default_factory=dict)  #: policy -> kwargs overrides
    source: str = None

    #: Discriminator the runner/CLI dispatch on (CPU scenarios carry
    #: "cpu_cache" via the Scenario class attribute).
    scenario_kind = "object_cache"

    @property
    def workload_names(self) -> list:
        return [clause.name for clause in self.workloads]

    @property
    def run_seeds(self) -> tuple:
        return self.seeds or (self.config.seed,)

    @property
    def sweep_policies(self) -> list:
        return list(self.policies)

    def as_dict(self) -> dict:
        payload = {
            "format": FORMAT_VERSION,
            "kind": "object_cache",
            "name": self.name,
        }
        for key in ("title", "description", "figure"):
            value = getattr(self, key)
            if value:
                payload[key] = value
        payload["config"] = self.config.as_dict()
        payload["workloads"] = [w.as_dict() for w in self.workloads]
        payload["policies"] = list(self.policies)
        if self.admission is not None:
            payload["admission"] = dict(self.admission)
        if self.seeds:
            payload["seeds"] = list(self.seeds)
        payload["sanitize"] = self.sanitize
        if self.golden:
            payload["golden"] = True
        if self.expect:
            payload["expect"] = [e.as_dict() for e in self.expect]
        if self.params:
            payload["params"] = {
                policy: dict(overrides)
                for policy, overrides in self.params.items()
            }
        return payload


# -- validation ----------------------------------------------------------------


def _parse_config(data, check: _Check) -> ObjectScenarioConfig:
    raw = data.get("config", {})
    if not isinstance(raw, dict):
        check.fail("config", f"expected a mapping, got {raw!r}")
        raw = {}
    unknown = set(raw) - {"capacity_bytes", "requests", "seed"}
    if unknown:
        check.fail("config", f"unknown key(s): {', '.join(sorted(unknown))}")
    return ObjectScenarioConfig(
        capacity_bytes=check.integer(raw, "config", "capacity_bytes",
                                     1 << 22, 1, 1 << 50),
        requests=check.integer(raw, "config", "requests",
                               10_000, 64, 5_000_000),
        seed=check.integer(raw, "config", "seed", 7, 0, 2**31 - 1),
    )


def _parse_workload(data, path, config, check: _Check) -> ObjectWorkloadClause:
    from repro.objcache.workloads import WORKLOAD_KINDS, validate_size_spec

    if not isinstance(data, dict):
        check.fail(path, f"expected a workload mapping, got {data!r}")
        return ObjectWorkloadClause(name="invalid", kind="zipf", objects=1)
    name = data.get("name")
    if not isinstance(name, str) or not name:
        check.fail(f"{path}.name", "workloads need a non-empty string name")
        name = "unnamed"
    kind = data.get("kind")
    if kind not in WORKLOAD_KINDS:
        check.fail(
            f"{path}.kind",
            f"unknown workload kind {kind!r} "
            f"(known: {', '.join(WORKLOAD_KINDS)})",
        )
        kind = "zipf"
    allowed = {"name", "kind", "objects", "length", "alpha", "sizes"}
    allowed |= _WORKLOAD_PARAM_KEYS.get(kind, set())
    unknown = set(data) - allowed
    if unknown:
        check.fail(path, f"unknown workload key(s) for kind {kind!r}: "
                         f"{', '.join(sorted(unknown))}")
    objects = check.integer(data, path, "objects", 1000, 1, 10_000_000)
    length = None
    if "length" in data:
        length = check.integer(data, path, "length", config.requests,
                               1, 5_000_000)
    alpha = check.number(data, path, "alpha", 1.0, 0.05, 4.0)
    sizes = data.get("sizes", {})
    for problem in validate_size_spec(sizes):
        check.fail(path, problem)
    if not isinstance(sizes, dict):
        sizes = {}
    params = {}
    for key in _WORKLOAD_PARAM_KEYS.get(kind, set()):
        if key in data:
            if key in ("phases", "crowd_objects"):
                params[key] = check.integer(data, path, key, 1, 1, 1_000_000)
            else:
                params[key] = check.number(data, path, key, 0.5, 0.0, 64.0)
    return ObjectWorkloadClause(
        name=name, kind=kind, objects=objects, length=length,
        alpha=alpha, sizes=dict(sizes), params=params,
    )


def _parse_admission(data, check: _Check):
    from repro.objcache.admission import OBJECT_ADMISSION_REGISTRY

    raw = data.get("admission")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        check.fail("admission", f"expected a mapping, got {raw!r}")
        return None
    kind = raw.get("kind")
    if kind not in OBJECT_ADMISSION_REGISTRY:
        check.fail(
            "admission.kind",
            f"unknown admission hook {kind!r} "
            f"(known: {', '.join(sorted(OBJECT_ADMISSION_REGISTRY))})",
        )
        return None
    unknown = set(raw) - {"kind"} - _ADMISSION_PARAM_KEYS.get(kind, set())
    if unknown:
        check.fail("admission", f"unknown key(s) for {kind!r}: "
                                f"{', '.join(sorted(unknown))}")
    for key in _ADMISSION_PARAM_KEYS.get(kind, set()):
        if key in raw:
            check.integer(raw, "admission", key, 1, 1, 1 << 50)
    return dict(raw)


def _parse_expectation(data, path, policies, workload_names, check: _Check):
    if not isinstance(data, dict):
        check.fail(path, f"expected an expectation mapping, got {data!r}")
        return ObjectExpectation(check="conservation")
    kind = data.get("check")
    if kind not in OBJECT_EXPECTATION_CHECKS:
        check.fail(f"{path}.check",
                   f"unknown check {kind!r} (known: "
                   f"{', '.join(OBJECT_EXPECTATION_CHECKS)})")
        kind = "conservation"
    unknown = set(data) - {"check", "policy", "workload", "min", "max",
                           "over", "metric"}
    if unknown:
        check.fail(path, f"unknown key(s): {', '.join(sorted(unknown))}")
    policy = data.get("policy")
    if policy is not None and policy not in policies:
        check.fail(f"{path}.policy",
                   f"{policy!r} is not in this scenario's policies")
    workload = data.get("workload")
    if workload is not None and workload not in workload_names:
        check.fail(f"{path}.workload",
                   f"{workload!r} is not in this scenario's workloads")
    minimum = data.get("min")
    maximum = data.get("max")
    for bound, value in (("min", minimum), ("max", maximum)):
        if value is not None and (isinstance(value, bool)
                                  or not isinstance(value, (int, float))):
            check.fail(f"{path}.{bound}", f"expected a number, got {value!r}")
    if kind in ("byte_hit_rate", "object_hit_rate") \
            and minimum is None and maximum is None:
        check.fail(path, f"{kind} expectations need 'min' and/or 'max'")
    if kind == "regret" and maximum is None:
        check.fail(path, "regret expectations need a 'max' ceiling")
    over = data.get("over")
    metric = data.get("metric", "byte_hit_rate")
    if kind == "beats":
        if policy is None:
            check.fail(path, "beats expectations need a 'policy'")
        if over is None:
            check.fail(path, "beats expectations need an 'over' baseline")
        elif over not in policies:
            check.fail(f"{path}.over",
                       f"baseline {over!r} is not in this scenario's "
                       "policies")
        if policy is not None and over is not None and policy == over:
            check.fail(path, "beats expectations need policy != over")
        if metric not in BEATS_METRICS:
            check.fail(f"{path}.metric",
                       f"unknown metric {metric!r} (known: "
                       f"{', '.join(BEATS_METRICS)})")
            metric = "byte_hit_rate"
    return ObjectExpectation(
        check=kind, policy=policy, workload=workload,
        min=minimum, max=maximum, over=over, metric=metric,
    )


_TOP_LEVEL_KEYS = {
    "format", "kind", "name", "title", "description", "figure", "config",
    "workloads", "policies", "admission", "seeds", "sanitize", "golden",
    "expect", "params",
}


def object_scenario_from_dict(data, source: str = None) -> ObjectScenario:
    """Validate a parsed ``kind: object_cache`` dict (all problems at once)."""
    from repro.objcache.policies import OBJECT_POLICY_REGISTRY

    check = _Check()
    unknown = set(data) - _TOP_LEVEL_KEYS
    if unknown:
        check.fail("top level",
                   f"unknown key(s): {', '.join(sorted(unknown))}")
    version = data.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        check.fail("format", f"unsupported scenario format {version!r} "
                             f"(this build reads format {FORMAT_VERSION})")

    name = data.get("name")
    if not isinstance(name, str) or not _NAME_PATTERN.match(name or ""):
        check.fail("name", f"{name!r} is not a valid scenario name "
                           "(lowercase letters, digits, '.', '_', '-')")
        name = "invalid"

    config = _parse_config(data, check)

    raw_workloads = data.get("workloads", [])
    if not isinstance(raw_workloads, list):
        check.fail("workloads", f"expected a list, got {raw_workloads!r}")
        raw_workloads = []
    workloads = [
        _parse_workload(entry, f"workloads[{index}]", config, check)
        for index, entry in enumerate(raw_workloads)
    ]
    if not workloads:
        check.fail("workloads", "scenario has no workloads")
    seen = set()
    for clause in workloads:
        if clause.name in seen:
            check.fail("workloads",
                       f"duplicate workload name {clause.name!r}")
        seen.add(clause.name)

    policies = data.get("policies")
    if not isinstance(policies, list) or not policies:
        check.fail("policies", "expected a non-empty list of policy names")
        policies = ["lru"]
    for index, policy in enumerate(policies):
        if policy not in OBJECT_POLICY_REGISTRY:
            check.fail(
                f"policies[{index}]",
                f"unknown object policy {policy!r} (known: "
                f"{', '.join(sorted(OBJECT_POLICY_REGISTRY))})",
            )
    if len(set(policies)) != len(policies):
        check.fail("policies", "duplicate policy names")

    admission = _parse_admission(data, check)

    seeds = data.get("seeds", [])
    if not isinstance(seeds, list):
        check.fail("seeds", f"expected a list of integers, got {seeds!r}")
        seeds = []
    for index, seed in enumerate(seeds):
        if isinstance(seed, bool) or not isinstance(seed, int) \
                or not 0 <= seed < 2**31:
            check.fail(f"seeds[{index}]",
                       f"expected an integer in [0, 2^31), got {seed!r}")
    if len(seeds) > 16:
        check.fail("seeds", f"{len(seeds)} seeds is above the 16-seed cap")

    sanitize = data.get("sanitize", "normal")
    if sanitize not in SANITIZE_MODES:
        check.fail("sanitize", f"unknown mode {sanitize!r} "
                               f"(known: {', '.join(SANITIZE_MODES)})")
        sanitize = "normal"

    golden = data.get("golden", False)
    if not isinstance(golden, bool):
        check.fail("golden", f"expected true/false, got {golden!r}")
        golden = False

    workload_names = [clause.name for clause in workloads]
    raw_expect = data.get("expect", [])
    if not isinstance(raw_expect, list):
        check.fail("expect", f"expected a list, got {raw_expect!r}")
        raw_expect = []
    expect = tuple(
        _parse_expectation(entry, f"expect[{index}]", policies,
                           workload_names, check)
        for index, entry in enumerate(raw_expect)
    )

    params = data.get("params", {})
    if not isinstance(params, dict):
        check.fail("params", f"expected a mapping of policy -> overrides, "
                             f"got {params!r}")
        params = {}
    else:
        for policy, overrides in params.items():
            if policy not in policies:
                check.fail(f"params.{policy}",
                           "overrides name a policy that is not in this "
                           "scenario's policies")
            if not isinstance(overrides, dict):
                check.fail(f"params.{policy}",
                           f"expected a mapping, got {overrides!r}")

    for key in ("title", "description", "figure"):
        value = data.get(key, "")
        if not isinstance(value, str):
            check.fail(key, f"expected a string, got {value!r}")

    if check.problems:
        raise ScenarioError(check.problems, source=source)
    return ObjectScenario(
        name=name,
        title=str(data.get("title", "")),
        description=str(data.get("description", "")),
        figure=str(data.get("figure", "")),
        config=config,
        workloads=tuple(workloads),
        policies=tuple(policies),
        admission=admission,
        seeds=tuple(seeds),
        sanitize=sanitize,
        golden=golden,
        expect=expect,
        params={policy: dict(overrides)
                for policy, overrides in params.items()
                if isinstance(overrides, dict)},
        source=source,
    )
