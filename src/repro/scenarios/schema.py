"""The declarative scenario model and its validation.

A *scenario* is an experiment as data: which workloads (built-in models or
inline pattern mixes), at what evaluation scale, under which replacement
policies and sanitizer mode, with which seeds — plus *expected-invariant
assertions* (hit-rate bounds, Belady-regret ceilings, conservation laws)
that turn a run into a checkable claim instead of a pile of numbers.

Everything here is pure data + validation; no simulation happens in this
module.  :mod:`repro.scenarios.loader` parses YAML/JSON files into these
objects and :mod:`repro.scenarios.runner` executes them.

Validation is whole-file: every problem in a scenario dict is collected and
reported at once (``ScenarioError.problems``), each message prefixed with a
``path.to.the[2].field`` locator, so a hand-edited scenario fails with a
complete fix list rather than one error per attempt.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.traces.spec_models import ALL_WORKLOADS, PatternSpec

#: Recognized synthetic pattern kinds (repro.traces.spec_models).
PATTERN_KINDS = (
    "stream", "stride", "cyclic", "random", "chase", "zipf", "scan_hot",
    "multi_stream",
)

#: Recognized expectation checks.
EXPECTATION_CHECKS = (
    "conservation", "hit_rate", "speedup", "regret", "belady_dominates",
)

#: Sanitizer modes a scenario may request (repro.sanitize).
SANITIZE_MODES = ("off", "normal", "strict")

#: Scenario kinds the loader can dispatch to.  A file selects its kind with
#: a top-level ``kind`` key; absent means the original CPU-cache schema, so
#: every pre-existing scenario file parses unchanged.
SCENARIO_KINDS = ("cpu_cache", "object_cache")

_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")

#: Current scenario format version (bumped on incompatible schema changes).
FORMAT_VERSION = 1


class ScenarioError(ValueError):
    """A scenario failed validation; ``problems`` lists every issue."""

    def __init__(self, problems, source: str = None):
        self.problems = list(problems)
        self.source = source
        where = f"{source}: " if source else ""
        super().__init__(
            where + f"{len(self.problems)} problem(s):\n" +
            "\n".join(f"  - {problem}" for problem in self.problems)
        )


class UnknownScenarioKindError(ScenarioError):
    """A scenario names a ``kind`` this build does not implement.

    Typed (rather than a bare ``KeyError``) so tools like ``repro validate``
    can report the unknown kind with the known alternatives in one line.
    """

    def __init__(self, kind, source: str = None):
        self.kind = kind
        super().__init__(
            [f"kind: unknown scenario kind {kind!r} "
             f"(known: {', '.join(SCENARIO_KINDS)})"],
            source=source,
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """The :class:`repro.eval.workloads.EvalConfig` knobs a scenario pins."""

    scale: int = 16
    trace_length: int = 10_000
    seed: int = 7
    llc_ways: int = 16
    num_cores: int = 1
    warmup_fraction: float = 0.2

    def as_dict(self) -> dict:
        return {
            "scale": self.scale,
            "trace_length": self.trace_length,
            "seed": self.seed,
            "llc_ways": self.llc_ways,
            "num_cores": self.num_cores,
            "warmup_fraction": self.warmup_fraction,
        }


@dataclass(frozen=True)
class PhaseClause:
    """One phase of an inline workload: a weighted pattern mix."""

    fraction: float  #: share of the trace length this phase covers
    patterns: tuple  #: PatternSpec tuple


@dataclass(frozen=True)
class WorkloadClause:
    """One workload row: a built-in model reference or an inline mix."""

    name: str
    model: str = None  #: built-in model name (repro.traces.spec_models)
    phases: tuple = ()  #: PhaseClause tuple (inline workloads)
    mean_instr_delta: int = 6
    write_fraction: float = 0.1

    @property
    def inline(self) -> bool:
        return self.model is None


@dataclass(frozen=True)
class MixClause:
    """Multicore mixes: explicit name tuples or randomly drawn ones."""

    explicit: tuple = ()  #: tuple of workload-name tuples
    random_count: int = 0  #: number of random mixes to draw (0 = explicit)


@dataclass(frozen=True)
class Expectation:
    """One expected-invariant assertion checked after a scenario run."""

    check: str  #: one of EXPECTATION_CHECKS
    policy: str = None  #: restrict to this policy (None = all)
    workload: str = None  #: restrict to this workload (None = all)
    min: float = None  #: lower bound (hit_rate / speedup)
    max: float = None  #: upper bound (hit_rate / regret)
    over: str = "lru"  #: speedup baseline policy

    def as_dict(self) -> dict:
        payload = {"check": self.check}
        for key in ("policy", "workload", "min", "max"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.check == "speedup":
            payload["over"] = self.over
        return payload


@dataclass(frozen=True)
class Scenario:
    """A fully validated scenario, ready to run."""

    #: Discriminator matching the file-level ``kind`` key (the object
    #: schema's ObjectScenario carries "object_cache").
    scenario_kind = "cpu_cache"

    name: str
    config: ScenarioConfig
    workloads: tuple  #: WorkloadClause tuple
    policies: tuple  #: policy registry names ("belady" allowed)
    title: str = ""
    description: str = ""
    figure: str = ""  #: paper artifact this scenario reproduces ("Figure 10")
    seeds: tuple = ()  #: trace seeds to run (default: (config.seed,))
    mixes: MixClause = None  #: multicore mixes (None = single-core cells)
    sanitize: str = "normal"
    golden: bool = False  #: pin a golden report digest under tests/goldens/
    expect: tuple = ()  #: Expectation tuple
    params: dict = field(default_factory=dict)  #: free-form experiment knobs
    source: str = None  #: file the scenario was loaded from (not hashed)

    @property
    def workload_names(self) -> list:
        return [clause.name for clause in self.workloads]

    @property
    def run_seeds(self) -> tuple:
        return self.seeds or (self.config.seed,)

    @property
    def sweep_policies(self) -> list:
        """Policies for the sweep lineup, minus the offline-optimal one."""
        return [policy for policy in self.policies if policy != "belady"]

    @property
    def include_belady(self) -> bool:
        return "belady" in self.policies

    def eval_config(self, seed: int = None):
        """Instantiate the :class:`EvalConfig` this scenario pins."""
        from repro.eval.workloads import EvalConfig

        return EvalConfig(
            scale=self.config.scale,
            trace_length=self.config.trace_length,
            seed=self.config.seed if seed is None else seed,
            warmup_fraction=self.config.warmup_fraction,
            num_cores=self.config.num_cores,
            llc_ways=self.config.llc_ways,
        )

    def as_dict(self) -> dict:
        """Round-trippable dict form (the on-disk YAML/JSON shape)."""
        payload = {"format": FORMAT_VERSION, "name": self.name}
        for key in ("title", "description", "figure"):
            value = getattr(self, key)
            if value:
                payload[key] = value
        payload["config"] = self.config.as_dict()
        payload["workloads"] = [_workload_to_dict(w) for w in self.workloads]
        payload["policies"] = list(self.policies)
        if self.seeds:
            payload["seeds"] = list(self.seeds)
        if self.mixes is not None:
            if self.mixes.random_count:
                payload["mixes"] = {"random": self.mixes.random_count}
            else:
                payload["mixes"] = [list(mix) for mix in self.mixes.explicit]
        payload["sanitize"] = self.sanitize
        if self.golden:
            payload["golden"] = True
        if self.expect:
            payload["expect"] = [e.as_dict() for e in self.expect]
        if self.params:
            payload["params"] = dict(self.params)
        return payload


def _workload_to_dict(clause: WorkloadClause):
    if not clause.inline:
        return clause.name if clause.name == clause.model else {
            "name": clause.name, "model": clause.model,
        }
    payload = {
        "name": clause.name,
        "mean_instr_delta": clause.mean_instr_delta,
        "write_fraction": clause.write_fraction,
    }
    phases = []
    for phase in clause.phases:
        phases.append({
            "fraction": phase.fraction,
            "patterns": [_pattern_to_dict(p) for p in phase.patterns],
        })
    if len(phases) == 1 and phases[0]["fraction"] == 1.0:
        payload["patterns"] = phases[0]["patterns"]
    else:
        payload["phases"] = phases
    return payload


def _pattern_to_dict(pattern: PatternSpec) -> dict:
    payload = {
        "kind": pattern.kind,
        "weight": pattern.weight,
        "working_set": pattern.working_set,
    }
    if pattern.kind == "stride":
        payload["stride"] = pattern.stride
    if pattern.kind == "zipf":
        payload["alpha"] = pattern.alpha
    if pattern.kind == "scan_hot":
        payload["scan_lines"] = pattern.scan_lines
        payload["hot_fraction"] = pattern.hot_fraction
    if pattern.kind == "multi_stream":
        payload["streams"] = pattern.streams
    return payload


# -- validation ----------------------------------------------------------------


class _Check:
    """Collects locator-prefixed problems while walking a scenario dict."""

    def __init__(self):
        self.problems = []

    def fail(self, path: str, message: str) -> None:
        self.problems.append(f"{path}: {message}")

    def number(self, data, path, key, default, lo, hi, kind=(int, float)):
        value = data.get(key, default)
        if isinstance(value, bool) or not isinstance(value, kind):
            self.fail(f"{path}.{key}", f"expected a number, got {value!r}")
            return default
        if not (lo <= value <= hi):
            self.fail(
                f"{path}.{key}",
                f"{value!r} out of range [{lo}, {hi}]",
            )
            return default
        return value

    def integer(self, data, path, key, default, lo, hi):
        return self.number(data, path, key, default, lo, hi, kind=int)


def _known_policies():
    from repro.cache.replacement import POLICY_REGISTRY

    return set(POLICY_REGISTRY) | {"belady"}


def _parse_pattern(data, path, check: _Check) -> PatternSpec:
    if not isinstance(data, dict):
        check.fail(path, f"expected a pattern mapping, got {data!r}")
        return PatternSpec(1.0, "cyclic", 0.5)
    kind = data.get("kind")
    if kind not in PATTERN_KINDS:
        check.fail(
            f"{path}.kind",
            f"unknown pattern kind {kind!r} (known: {', '.join(PATTERN_KINDS)})",
        )
        kind = "cyclic"
    unknown = set(data) - {
        "kind", "weight", "working_set", "stride", "alpha", "scan_lines",
        "hot_fraction", "streams",
    }
    if unknown:
        check.fail(path, f"unknown pattern key(s): {', '.join(sorted(unknown))}")
    return PatternSpec(
        weight=check.number(data, path, "weight", 1.0, 1e-6, 1e6),
        kind=kind,
        working_set=check.number(data, path, "working_set", 0.5, 1e-4, 64.0),
        stride=check.integer(data, path, "stride", 1, 1, 4096),
        alpha=check.number(data, path, "alpha", 1.0, 0.05, 4.0),
        scan_lines=check.number(data, path, "scan_lines", 0.0, 0.0, 64.0),
        hot_fraction=check.number(data, path, "hot_fraction", 0.5, 0.0, 1.0),
        streams=check.integer(data, path, "streams", 8, 1, 64),
    )


def _parse_phases(data, path, check: _Check) -> tuple:
    raw_phases = data.get("phases")
    if raw_phases is None:
        patterns = data.get("patterns")
        if not isinstance(patterns, list) or not patterns:
            check.fail(
                f"{path}.patterns",
                "inline workloads need a non-empty 'patterns' (or 'phases') "
                "list",
            )
            return ()
        return (PhaseClause(1.0, tuple(
            _parse_pattern(p, f"{path}.patterns[{i}]", check)
            for i, p in enumerate(patterns)
        )),)
    if not isinstance(raw_phases, list) or not raw_phases:
        check.fail(f"{path}.phases", "expected a non-empty list of phases")
        return ()
    phases = []
    for index, phase in enumerate(raw_phases):
        phase_path = f"{path}.phases[{index}]"
        if not isinstance(phase, dict):
            check.fail(phase_path, f"expected a phase mapping, got {phase!r}")
            continue
        patterns = phase.get("patterns")
        if not isinstance(patterns, list) or not patterns:
            check.fail(f"{phase_path}.patterns",
                       "expected a non-empty pattern list")
            continue
        phases.append(PhaseClause(
            fraction=check.number(phase, phase_path, "fraction", 1.0, 1e-3, 1.0),
            patterns=tuple(
                _parse_pattern(p, f"{phase_path}.patterns[{i}]", check)
                for i, p in enumerate(patterns)
            ),
        ))
    total = sum(phase.fraction for phase in phases)
    if phases and not 0.5 <= total <= 1.0 + 1e-9:
        check.fail(f"{path}.phases",
                   f"phase fractions sum to {total:.3f}, expected ~1.0")
    return tuple(phases)


def _parse_workload(data, path, check: _Check) -> WorkloadClause:
    if isinstance(data, str):
        if data not in ALL_WORKLOADS:
            known = ", ".join(sorted(ALL_WORKLOADS)[:6])
            check.fail(path, f"unknown workload model {data!r} "
                             f"(known models include: {known}, ...)")
        return WorkloadClause(name=data, model=data)
    if not isinstance(data, dict):
        check.fail(path, f"expected a workload name or mapping, got {data!r}")
        return WorkloadClause(name="invalid", model=None,
                              phases=(PhaseClause(1.0, ()),))
    name = data.get("name")
    if not isinstance(name, str) or not name:
        check.fail(f"{path}.name", "workloads need a non-empty string name")
        name = "unnamed"
    model = data.get("model")
    if model is not None:
        if model not in ALL_WORKLOADS:
            check.fail(f"{path}.model", f"unknown workload model {model!r}")
        extra = set(data) - {"name", "model"}
        if extra:
            check.fail(path, "model-referencing workloads take no other "
                             f"key(s): {', '.join(sorted(extra))}")
        return WorkloadClause(name=name, model=model)
    unknown = set(data) - {
        "name", "patterns", "phases", "mean_instr_delta", "write_fraction",
    }
    if unknown:
        check.fail(path, f"unknown workload key(s): {', '.join(sorted(unknown))}")
    return WorkloadClause(
        name=name,
        model=None,
        phases=_parse_phases(data, path, check),
        mean_instr_delta=check.integer(data, path, "mean_instr_delta", 6, 1, 200),
        write_fraction=check.number(data, path, "write_fraction", 0.1, 0.0, 1.0),
    )


def _parse_config(data, check: _Check) -> ScenarioConfig:
    raw = data.get("config", {})
    if not isinstance(raw, dict):
        check.fail("config", f"expected a mapping, got {raw!r}")
        raw = {}
    unknown = set(raw) - {
        "scale", "trace_length", "seed", "llc_ways", "num_cores",
        "warmup_fraction",
    }
    if unknown:
        check.fail("config", f"unknown key(s): {', '.join(sorted(unknown))}")
    config = ScenarioConfig(
        scale=check.integer(raw, "config", "scale", 16, 1, 2048),
        trace_length=check.integer(raw, "config", "trace_length",
                                   10_000, 64, 50_000_000),
        seed=check.integer(raw, "config", "seed", 7, 0, 2**31 - 1),
        llc_ways=check.integer(raw, "config", "llc_ways", 16, 1, 64),
        num_cores=check.integer(raw, "config", "num_cores", 1, 1, 8),
        warmup_fraction=check.number(raw, "config", "warmup_fraction",
                                     0.2, 0.0, 0.9),
    )
    # The geometry must actually construct: scale/ways combinations that
    # leave a non-power-of-two set count (or zero sets) fail here, not
    # mid-sweep.
    if not check.problems:
        from repro.eval.workloads import EvalConfig

        try:
            EvalConfig(
                scale=config.scale, trace_length=config.trace_length,
                seed=config.seed, num_cores=config.num_cores,
                llc_ways=config.llc_ways,
            ).hierarchy()
        except (ValueError, ZeroDivisionError) as error:
            check.fail("config", f"geometry does not construct: {error}")
    return config


def _parse_mixes(data, config: ScenarioConfig, workload_names, check: _Check):
    raw = data.get("mixes")
    if raw is None:
        return None
    if config.num_cores < 2:
        check.fail("mixes", "mixes need config.num_cores >= 2")
    if isinstance(raw, dict):
        unknown = set(raw) - {"random"}
        if unknown:
            check.fail("mixes", f"unknown key(s): {', '.join(sorted(unknown))}")
        count = check.integer(raw, "mixes", "random", 1, 1, 1000)
        if len(workload_names) < config.num_cores:
            check.fail("mixes", f"need at least {config.num_cores} workloads "
                                f"to draw {config.num_cores}-way mixes")
        return MixClause(random_count=count)
    if not isinstance(raw, list) or not raw:
        check.fail("mixes", f"expected a list of mixes or {{random: N}}, "
                            f"got {raw!r}")
        return None
    explicit = []
    names = set(workload_names)
    for index, mix in enumerate(raw):
        if not isinstance(mix, list) or len(mix) != config.num_cores:
            check.fail(f"mixes[{index}]",
                       f"expected a list of exactly {config.num_cores} "
                       f"workload names, got {mix!r}")
            continue
        for name in mix:
            if name not in names:
                check.fail(f"mixes[{index}]",
                           f"{name!r} is not in this scenario's workloads")
        explicit.append(tuple(mix))
    return MixClause(explicit=tuple(explicit))


def _parse_expectation(data, path, policies, workload_names, check: _Check):
    if not isinstance(data, dict):
        check.fail(path, f"expected an expectation mapping, got {data!r}")
        return Expectation(check="conservation")
    kind = data.get("check")
    if kind not in EXPECTATION_CHECKS:
        check.fail(f"{path}.check",
                   f"unknown check {kind!r} (known: "
                   f"{', '.join(EXPECTATION_CHECKS)})")
        kind = "conservation"
    unknown = set(data) - {"check", "policy", "workload", "min", "max", "over"}
    if unknown:
        check.fail(path, f"unknown key(s): {', '.join(sorted(unknown))}")
    policy = data.get("policy")
    if policy is not None and policy not in policies:
        check.fail(f"{path}.policy",
                   f"{policy!r} is not in this scenario's policies")
    workload = data.get("workload")
    if workload is not None and workload not in workload_names:
        check.fail(f"{path}.workload",
                   f"{workload!r} is not in this scenario's workloads")
    minimum = data.get("min")
    maximum = data.get("max")
    for bound, value in (("min", minimum), ("max", maximum)):
        if value is not None and (isinstance(value, bool)
                                  or not isinstance(value, (int, float))):
            check.fail(f"{path}.{bound}", f"expected a number, got {value!r}")
    if kind == "hit_rate" and minimum is None and maximum is None:
        check.fail(path, "hit_rate expectations need 'min' and/or 'max'")
    if kind == "regret" and maximum is None:
        check.fail(path, "regret expectations need a 'max' ceiling")
    if kind == "speedup" and minimum is None:
        check.fail(path, "speedup expectations need a 'min' bound")
    over = data.get("over", "lru")
    if kind == "speedup" and over not in policies:
        check.fail(f"{path}.over",
                   f"baseline {over!r} is not in this scenario's policies")
    if kind == "belady_dominates" and "belady" not in policies:
        check.fail(path, "belady_dominates needs 'belady' in policies")
    return Expectation(
        check=kind, policy=policy, workload=workload,
        min=minimum, max=maximum, over=over,
    )


_TOP_LEVEL_KEYS = {
    "format", "kind", "name", "title", "description", "figure", "config",
    "suite", "workloads", "policies", "seeds", "mixes", "sanitize", "golden",
    "expect", "params",
}


def scenario_from_dict(data, source: str = None):
    """Validate a parsed scenario dict; raise :class:`ScenarioError` on any
    problem, else return the immutable scenario object.

    Dispatches on the top-level ``kind`` key: absent or ``cpu_cache`` is the
    schema in this module; ``object_cache`` routes to
    :func:`repro.scenarios.object_schema.object_scenario_from_dict`; anything
    else raises :class:`UnknownScenarioKindError`.
    """
    check = _Check()
    if not isinstance(data, dict):
        raise ScenarioError(
            [f"top level: expected a mapping, got {type(data).__name__}"],
            source=source,
        )
    kind = data.get("kind", "cpu_cache")
    if kind == "object_cache":
        from repro.scenarios.object_schema import object_scenario_from_dict

        return object_scenario_from_dict(data, source=source)
    if kind != "cpu_cache":
        raise UnknownScenarioKindError(kind, source=source)
    unknown = set(data) - _TOP_LEVEL_KEYS
    if unknown:
        check.fail("top level", f"unknown key(s): {', '.join(sorted(unknown))}")
    version = data.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        check.fail("format", f"unsupported scenario format {version!r} "
                             f"(this build reads format {FORMAT_VERSION})")

    name = data.get("name")
    if not isinstance(name, str) or not _NAME_PATTERN.match(name or ""):
        check.fail("name", f"{name!r} is not a valid scenario name "
                           "(lowercase letters, digits, '.', '_', '-')")
        name = "invalid"

    config = _parse_config(data, check)

    workloads = []
    raw_workloads = data.get("workloads", [])
    if not isinstance(raw_workloads, list):
        check.fail("workloads", f"expected a list, got {raw_workloads!r}")
        raw_workloads = []
    suite = data.get("suite")
    if suite is not None:
        from repro.eval.workloads import suite_names

        try:
            for member in suite_names(suite):
                workloads.append(WorkloadClause(name=member, model=member))
        except ValueError as error:
            check.fail("suite", str(error))
    for index, entry in enumerate(raw_workloads):
        workloads.append(_parse_workload(entry, f"workloads[{index}]", check))
    if not workloads:
        check.fail("workloads", "scenario has no workloads (give 'workloads' "
                                "and/or 'suite')")
    seen = set()
    for clause in workloads:
        if clause.name in seen:
            check.fail("workloads", f"duplicate workload name {clause.name!r}")
        seen.add(clause.name)

    policies = data.get("policies")
    if not isinstance(policies, list) or not policies:
        check.fail("policies", "expected a non-empty list of policy names")
        policies = ["lru"]
    known = _known_policies()
    for index, policy in enumerate(policies):
        if policy not in known:
            check.fail(f"policies[{index}]",
                       f"unknown policy {policy!r} (known: "
                       f"{', '.join(sorted(known))})")
    if len(set(policies)) != len(policies):
        check.fail("policies", "duplicate policy names")

    seeds = data.get("seeds", [])
    if not isinstance(seeds, list):
        check.fail("seeds", f"expected a list of integers, got {seeds!r}")
        seeds = []
    for index, seed in enumerate(seeds):
        if isinstance(seed, bool) or not isinstance(seed, int) \
                or not 0 <= seed < 2**31:
            check.fail(f"seeds[{index}]",
                       f"expected an integer in [0, 2^31), got {seed!r}")
    if len(seeds) > 16:
        check.fail("seeds", f"{len(seeds)} seeds is above the 16-seed cap")

    workload_names = [clause.name for clause in workloads]
    mixes = _parse_mixes(data, config, workload_names, check)
    if mixes is None and config.num_cores > 1:
        check.fail("config.num_cores", "multicore scenarios need 'mixes'")

    sanitize = data.get("sanitize", "normal")
    if sanitize not in SANITIZE_MODES:
        check.fail("sanitize", f"unknown mode {sanitize!r} "
                               f"(known: {', '.join(SANITIZE_MODES)})")
        sanitize = "normal"

    golden = data.get("golden", False)
    if not isinstance(golden, bool):
        check.fail("golden", f"expected true/false, got {golden!r}")
        golden = False

    raw_expect = data.get("expect", [])
    if not isinstance(raw_expect, list):
        check.fail("expect", f"expected a list, got {raw_expect!r}")
        raw_expect = []
    expect = tuple(
        _parse_expectation(entry, f"expect[{index}]", policies,
                           workload_names, check)
        for index, entry in enumerate(raw_expect)
    )

    params = data.get("params", {})
    if not isinstance(params, dict):
        check.fail("params", f"expected a mapping, got {params!r}")
        params = {}

    for key in ("title", "description", "figure"):
        value = data.get(key, "")
        if not isinstance(value, str):
            check.fail(key, f"expected a string, got {value!r}")

    if check.problems:
        raise ScenarioError(check.problems, source=source)
    return Scenario(
        name=name,
        title=str(data.get("title", "")),
        description=str(data.get("description", "")),
        figure=str(data.get("figure", "")),
        config=config,
        workloads=tuple(workloads),
        policies=tuple(policies),
        seeds=tuple(seeds),
        mixes=mixes,
        sanitize=sanitize,
        golden=golden,
        expect=expect,
        params=dict(params),
        source=source,
    )
