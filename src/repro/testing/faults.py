"""Deterministic fault injection for the reliability test suite.

The recovery paths of the run supervisor — watchdog reaping, crash retries,
journal resume, corrupt-cache fallback — only matter when things go wrong,
so this harness makes things go wrong *on demand and deterministically*:

* a :class:`FaultSpec` names an instrumented **site** (``"replay"``,
  ``"prepare"``, ``"prep-cache"``, or one of the serving sites
  ``"serve.decide"`` / ``"serve.reply"`` / ``"serve.conn"``), an optional
  identity **match** (e.g. ``{"workload": "429.mcf", "policy": "lru"}``),
  an **action**, and a trigger window (fire on matching calls
  ``after < n <= after + times``);
* specs travel to worker processes through two environment variables
  (``REPRO_FAULTS`` = JSON spec list, ``REPRO_FAULTS_STATE`` = a state
  directory), so forked and spawned workers inject identically;
* the per-spec call counter lives in the state directory as a series of
  ``O_EXCL``-created marker files, giving an atomic cross-process count —
  "crash on the 2nd access" means the 2nd access *globally*, not per
  worker.

Actions:

``crash``
    ``os._exit(exit_code)`` — the process dies without reporting, exactly
    like a SIGKILL'd or segfaulted worker.
``hang``
    Sleep for ``hang_seconds`` — exercises the watchdog.
``error``
    Raise :class:`InjectedFault` — a deterministic in-task exception.
``corrupt``
    Truncate the file passed as the ``path`` identity to half its size —
    simulates a torn cache entry just before it is read.
``poison``
    Does nothing by itself; :func:`poisoned` returns True at matching call
    sites, letting instrumented code corrupt its *own* state in a
    domain-appropriate way (e.g. the trainer NaN-ing its network to
    exercise the divergence guard, or the policy server corrupting a
    reply frame).
``slow:<ms>``
    Sleep for ``<ms>`` milliseconds, then return normally.  A
    duration-bearing action: the caller learns the duration through
    :func:`parse_action` and (in the policy server) charges it against
    the request's simulated deadline budget.
``hang_until_deadline``
    Performs no real sleep at all; the *caller* interprets the returned
    action as "this request consumed its whole deadline budget".  Used by
    the policy server to exercise the degrade-to-LRU fallback path
    deterministically, without wall-clock dependence.
``torn_write:<nbytes>``
    Interpreted by the atomic-write path (:func:`repro.runs.atomic.
    atomic_write`, site ``"atomic-write"``): simulate a filesystem that
    lost rename atomicity — only the first ``nbytes`` of the new content
    land in the target file, *silently* (the writer believes the write
    succeeded).  This is the corruption ``repro fsck`` must catch.
``bit_flip:<offset>``
    Also interpreted by the atomic-write path: the write completes
    normally, then one bit of the final file is flipped at ``offset``
    (taken modulo the file size) — deterministic bit rot.
``crash_at_byte:<nbytes>``
    Interpreted by the atomic-write path: the process "dies" after
    ``nbytes`` of the temporary file are written and fsynced — before the
    rename when ``nbytes`` is short of the content, after it otherwise.
    Raises :class:`SimulatedCrash` (a ``BaseException``, so production
    ``except Exception`` recovery cannot swallow it) instead of
    ``os._exit`` so crash-at-every-byte-offset property tests can run
    thousands of in-process "crashes"; the temp-file debris a real crash
    would leave is left behind too.

Instrumented production code calls :func:`maybe_fault` with its site and
identity; the call is a single dict lookup when no faults are installed.
Both :func:`maybe_fault` and its asyncio twin :func:`maybe_fault_async`
return the action string that fired (or ``None``), so deadline-aware
callers can account for ``slow``/``hang_until_deadline`` costs.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

ENV_SPECS = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"

#: Fixed action kinds; ``slow`` carries a duration suffix (``slow:<ms>``)
#: and the byte-fault actions carry a byte count/offset suffix
#: (``torn_write:<n>`` / ``bit_flip:<n>`` / ``crash_at_byte:<n>``),
#: validated by :func:`parse_action`.
_ACTIONS = (
    "crash", "hang", "error", "corrupt", "poison", "slow",
    "hang_until_deadline",
)

#: Actions interpreted by the atomic-write path (suffix = a byte value).
BYTE_FAULT_ACTIONS = ("torn_write", "bit_flip", "crash_at_byte")


class InjectedFault(RuntimeError):
    """The deterministic exception raised by the ``error`` action."""


class SimulatedCrash(BaseException):
    """An in-process stand-in for process death (``crash_at_byte``).

    Derives from ``BaseException`` so the generic ``except Exception``
    recovery in production code cannot observe it — exactly like a real
    SIGKILL.  Only the test harness (which installed the fault) catches
    it.
    """


def parse_action(action: str):
    """Split an action string into ``(kind, value)``.

    ``"slow:2.5"`` -> ``("slow", 2.5)``; ``"torn_write:7"`` ->
    ``("torn_write", 7)`` (likewise ``bit_flip``/``crash_at_byte``);
    every other action has no value (``("hang", None)``).  Raises
    :class:`ValueError` on unknown kinds or malformed suffixes, so specs
    fail loudly at install / decode time rather than silently never
    firing.
    """
    kind, _, suffix = str(action).partition(":")
    if kind in BYTE_FAULT_ACTIONS:
        if not suffix:
            raise ValueError(
                f"action {action!r} needs a byte value: use '{kind}:<n>'"
            )
        try:
            value = int(suffix)
        except ValueError:
            raise ValueError(
                f"action {action!r} has a non-integer byte value {suffix!r}"
            ) from None
        if value < 0:
            raise ValueError(f"action {action!r} has a negative byte value")
        return kind, value
    if kind not in _ACTIONS:
        raise ValueError(f"unknown fault action {action!r}")
    if kind == "slow":
        if not suffix:
            raise ValueError(
                f"action {action!r} needs a duration: use 'slow:<ms>'"
            )
        try:
            duration = float(suffix)
        except ValueError:
            raise ValueError(
                f"action {action!r} has a non-numeric duration {suffix!r}"
            ) from None
        if duration < 0:
            raise ValueError(f"action {action!r} has a negative duration")
        return kind, duration
    if suffix:
        raise ValueError(
            f"action {action!r}: only 'slow' takes a ':<ms>' suffix"
        )
    return kind, None


@dataclass
class FaultSpec:
    """One injected fault: where, what, and when."""

    site: str  #: instrumented call site ("replay", "serve.decide", ...)
    action: str  #: one of the actions above ("slow" spelled "slow:<ms>")
    match: dict = field(default_factory=dict)  #: identity keys that must match
    after: int = 0  #: skip the first ``after`` matching calls
    times: int = 1  #: fire on this many calls, then stand down
    hang_seconds: float = 3600.0
    exit_code: int = 87

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "action": self.action,
            "match": dict(self.match),
            "after": self.after,
            "times": self.times,
            "hang_seconds": self.hang_seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        spec = cls(
            site=str(data["site"]),
            action=str(data["action"]),
            match=dict(data.get("match", {})),
            after=int(data.get("after", 0)),
            times=int(data.get("times", 1)),
            hang_seconds=float(data.get("hang_seconds", 3600.0)),
            exit_code=int(data.get("exit_code", 87)),
        )
        parse_action(spec.action)  # raises on unknown/malformed actions
        return spec


def install_faults(specs, state_dir) -> None:
    """Activate ``specs`` process-wide (inherited by worker processes)."""
    specs = [spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
             for spec in specs]
    state = Path(state_dir)
    state.mkdir(parents=True, exist_ok=True)
    os.environ[ENV_SPECS] = json.dumps([spec.to_dict() for spec in specs])
    os.environ[ENV_STATE] = str(state)


def clear_faults() -> None:
    """Deactivate fault injection in this process (and future children)."""
    os.environ.pop(ENV_SPECS, None)
    os.environ.pop(ENV_STATE, None)


@contextmanager
def injected_faults(specs, state_dir):
    """Scoped :func:`install_faults` that restores the previous state."""
    previous = {key: os.environ.get(key) for key in (ENV_SPECS, ENV_STATE)}
    install_faults(specs, state_dir)
    try:
        yield
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _count_call(state_dir: str, spec_index: int) -> int:
    """Atomically allocate this call's 1-based global sequence number."""
    os.makedirs(state_dir, exist_ok=True)  # env may be set without install
    for number in range(1, 1_000_000):
        marker = os.path.join(state_dir, f"spec{spec_index:03d}.{number:06d}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return number
    raise RuntimeError("fault counter exhausted")


def _matches(spec: FaultSpec, identity: dict) -> bool:
    return all(identity.get(key) == value for key, value in spec.match.items())


def _armed_spec(site: str, identity: dict, poison: bool):
    """The first installed spec firing at this call site, or None.

    Counting happens here (through the atomic marker files), so simply
    *asking* advances each matching spec's trigger window — exactly one
    global caller sees each firing.
    """
    raw = os.environ.get(ENV_SPECS)
    if not raw:
        return None
    state_dir = os.environ.get(ENV_STATE)
    if not state_dir:
        return None
    try:
        specs = [FaultSpec.from_dict(data) for data in json.loads(raw)]
    except (ValueError, KeyError):
        return None  # malformed spec: never take down production code
    for index, spec in enumerate(specs):
        if spec.site != site or (spec.action == "poison") != poison:
            continue
        if not _matches(spec, identity):
            continue
        number = _count_call(state_dir, index)
        if spec.after < number <= spec.after + spec.times:
            return spec
    return None


def _fire(spec: FaultSpec, identity: dict) -> None:
    """Perform the synchronous side effect of a fired spec."""
    kind, duration_ms = parse_action(spec.action)
    if kind in BYTE_FAULT_ACTIONS:
        # No side effect here: the instrumented atomic-write path owns the
        # bytes and interprets the returned action itself.
        return
    if kind == "crash":
        os._exit(spec.exit_code)
    if kind == "hang":
        time.sleep(spec.hang_seconds)
        return
    if kind == "slow":
        time.sleep(duration_ms / 1000.0)
        return
    if kind == "hang_until_deadline":
        # No real sleep: the caller charges the deadline budget instead.
        return
    if kind == "corrupt":
        path = identity.get("path")
        if path and os.path.isfile(path):
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(size // 2)
        return
    raise InjectedFault(
        f"injected fault at site {spec.site!r} ({identity})"
    )


def maybe_fault(site: str, **identity):
    """Fire any installed fault matching this call site and identity.

    Called from instrumented production code; a no-op (one environment
    lookup) unless :func:`install_faults` is active.  Returns the action
    string that fired (``None`` when nothing fired) so deadline-aware
    callers can account for duration-bearing actions.
    """
    spec = _armed_spec(site, identity, poison=False)
    if spec is None:
        return None
    _fire(spec, identity)
    return spec.action


async def maybe_fault_async(site: str, **identity):
    """Asyncio twin of :func:`maybe_fault` for instrumented coroutines.

    ``hang``/``slow`` use ``asyncio.sleep`` so a fired fault stalls only
    its own task, not the event loop — that is what makes ``slow`` a
    *stalled-socket* fault rather than a stalled-server fault.  All other
    actions behave exactly like the synchronous version, and the fired
    action string is returned the same way.
    """
    spec = _armed_spec(site, identity, poison=False)
    if spec is None:
        return None
    import asyncio

    kind, duration_ms = parse_action(spec.action)
    if kind == "hang":
        await asyncio.sleep(spec.hang_seconds)
        return spec.action
    if kind == "slow":
        await asyncio.sleep(duration_ms / 1000.0)
        return spec.action
    _fire(spec, identity)  # crash / error / corrupt / hang_until_deadline
    return spec.action


def poisoned(site: str, **identity) -> bool:
    """True when a matching ``poison`` spec fires at this call site.

    The caller corrupts its own state (see
    :func:`repro.sanitize.divergence.poison_agent`); the harness only
    answers *whether* — keeping :mod:`repro.testing.faults` free of any
    domain knowledge.  Counted through the same atomic cross-process
    counter as the other actions.
    """
    return _armed_spec(site, identity, poison=True) is not None
