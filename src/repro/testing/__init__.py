"""Test-support utilities (deterministic fault injection)."""

from repro.testing.faults import (
    FaultSpec,
    InjectedFault,
    clear_faults,
    injected_faults,
    install_faults,
    maybe_fault,
)

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "clear_faults",
    "injected_faults",
    "install_faults",
    "maybe_fault",
]
