"""Length-prefixed, CRC-checksummed, version-tagged artifact frames.

The one binary container every durable artifact family shares::

    file    = MAGIC  b"RAF1"            (Repro Artifact Frames, container v1)
            + header frame              (canonical JSON: family + version)
            + zero or more payload frames
    frame   = u32 LE payload length
            + u32 LE crc32(payload)
            + payload bytes

Properties the readers rely on:

* **Truncation is visible.**  A file that ends mid-length-word, mid-CRC,
  or mid-payload fails the scan at a precise byte offset — a torn write
  can never masquerade as a shorter-but-valid artifact.
* **Bit rot is visible.**  Any flipped bit in a payload fails that
  frame's CRC; a flipped bit in a length word desynchronizes the scan and
  surfaces as a truncated/oversized frame.  (CRC32 is an integrity check
  against accidental damage, not an authenticity check — the manifest's
  SHA-256 digests cover the stronger property.)
* **Family confusion is visible.**  Every file names its artifact family
  in the header frame, so a checkpoint restored as a snapshot (or a cache
  entry from an incompatible layout version) is a typed error, not a
  pickle explosion.

:func:`scan_frames` is the tolerant reader (collects the valid leading
frames plus a damage record — what fsck and salvage paths use);
:func:`read_framed` is the strict reader (raises
:class:`~repro.store.errors.ArtifactCorruptionError` on any damage — what
production load paths use).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.store.errors import ArtifactCorruptionError

#: Container magic ("Repro Artifact Frames" + container format digit).
FILE_MAGIC = b"RAF1"

#: Highest container version this reader understands.
CONTAINER_VERSION = 1

#: ``<u32 length><u32 crc32>`` little-endian frame prefix.
FRAME_PREFIX = struct.Struct("<II")

#: Refuse to allocate for absurd lengths (a flipped high bit in a length
#: word must read as damage, not as a multi-gigabyte allocation).
MAX_FRAME_BYTES = 1 << 31


@dataclass(frozen=True)
class FrameDamage:
    """One located integrity problem found by :func:`scan_frames`."""

    reason: str  #: one of CORRUPTION_REASONS
    offset: int  #: byte offset where the scan stopped
    frame: Optional[int]  #: frame index (None for container-level damage)
    detail: str

    def describe(self) -> str:
        where = f"byte {self.offset}"
        if self.frame is not None:
            where = f"frame {self.frame}, {where}"
        return f"{self.reason} at {where}: {self.detail}"


@dataclass
class FrameScan:
    """Tolerant scan result: valid leading frames + any damage."""

    family: Optional[str]  #: None when the header itself is damaged
    version: Optional[int]  #: artifact-family version from the header
    payloads: List[bytes] = field(default_factory=list)
    damage: List[FrameDamage] = field(default_factory=list)
    valid_bytes: int = 0  #: prefix length covering magic + valid frames

    @property
    def ok(self) -> bool:
        return not self.damage

    def raise_on_damage(self, path=None) -> None:
        if self.damage:
            first = self.damage[0]
            raise ArtifactCorruptionError(
                f"{path or 'artifact'}: {first.describe()}",
                reason=first.reason,
                path=path,
                offset=first.offset,
                frame=first.frame,
            )


def encode_frame(payload: bytes) -> bytes:
    """One frame: length + crc32 + payload."""
    return FRAME_PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


def encode_framed(family: str, payloads, version: int = 1) -> bytes:
    """The full container for ``payloads`` (header frame included)."""
    header = json.dumps(
        {"family": str(family), "version": int(version)},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    chunks = [FILE_MAGIC, encode_frame(header)]
    chunks.extend(encode_frame(bytes(payload)) for payload in payloads)
    return b"".join(chunks)


def is_framed(data: bytes) -> bool:
    """True when ``data`` starts with the container magic."""
    return bytes(data[: len(FILE_MAGIC)]) == FILE_MAGIC


def scan_frames(data: bytes) -> FrameScan:
    """Tolerantly scan a container: valid leading frames + first damage.

    The scan stops at the first problem (frames after a desynchronized
    length word are unrecoverable without external framing), so
    ``valid_bytes`` is exactly the prefix a repair may truncate to.
    """
    scan = FrameScan(family=None, version=None)
    if not is_framed(data):
        scan.damage.append(FrameDamage(
            "bad_magic", 0, None,
            f"expected magic {FILE_MAGIC!r}, found {bytes(data[:4])!r}",
        ))
        return scan
    offset = len(FILE_MAGIC)
    frames = []
    index = 0
    while offset < len(data):
        if offset + FRAME_PREFIX.size > len(data):
            scan.damage.append(FrameDamage(
                "truncated", offset, index,
                f"file ends {len(data) - offset} byte(s) into a frame prefix",
            ))
            break
        length, crc = FRAME_PREFIX.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            scan.damage.append(FrameDamage(
                "bad_crc", offset, index,
                f"frame length {length} is implausible (damaged prefix)",
            ))
            break
        body_start = offset + FRAME_PREFIX.size
        body_end = body_start + length
        if body_end > len(data):
            scan.damage.append(FrameDamage(
                "truncated", offset, index,
                f"frame declares {length} payload byte(s), only "
                f"{len(data) - body_start} present",
            ))
            break
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            scan.damage.append(FrameDamage(
                "bad_crc", offset, index,
                f"frame checksum mismatch over {length} byte(s)",
            ))
            break
        frames.append(payload)
        offset = body_end
        index += 1
        scan.valid_bytes = offset
    if not scan.damage:
        scan.valid_bytes = offset

    if not frames:
        if not scan.damage:
            scan.damage.append(FrameDamage(
                "truncated", len(FILE_MAGIC), 0, "container has no header frame",
            ))
        return scan
    try:
        header = json.loads(frames[0].decode("utf-8"))
        scan.family = str(header["family"])
        scan.version = int(header["version"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        scan.damage.insert(0, FrameDamage(
            "bad_payload", len(FILE_MAGIC), 0,
            "header frame is not a family/version record",
        ))
        return scan
    scan.payloads = frames[1:]
    return scan


def read_framed(
    path,
    family: Optional[str] = None,
    max_version: Optional[int] = None,
) -> FrameScan:
    """Strictly read a container file; raises on any damage.

    ``family`` (when given) must match the header; ``max_version`` bounds
    the artifact-family version this caller understands.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise
    except OSError as error:
        raise ArtifactCorruptionError(
            f"{path}: unreadable ({error})", reason="missing", path=path
        ) from error
    scan = scan_frames(data)
    scan.raise_on_damage(path)
    if family is not None and scan.family != family:
        raise ArtifactCorruptionError(
            f"{path}: artifact family is {scan.family!r}, expected {family!r}",
            reason="bad_family",
            path=path,
        )
    if max_version is not None and scan.version > max_version:
        raise ArtifactCorruptionError(
            f"{path}: artifact version {scan.version} is newer than this "
            f"reader (max {max_version})",
            reason="bad_version",
            path=path,
        )
    return scan


def write_framed(path, family: str, payloads, version: int = 1) -> None:
    """Atomically write a whole container (temp + fsync + rename)."""
    from repro.runs.atomic import atomic_write_bytes

    atomic_write_bytes(path, encode_framed(family, payloads, version))


def write_artifact(path, family: str, payload: bytes, version: int = 1) -> None:
    """Atomically write a single-payload artifact."""
    write_framed(path, family, [payload], version)


def read_artifact(
    path, family: Optional[str] = None, max_version: Optional[int] = None
) -> bytes:
    """Read a single-payload artifact; raises on damage or extra frames."""
    scan = read_framed(path, family=family, max_version=max_version)
    if len(scan.payloads) != 1:
        raise ArtifactCorruptionError(
            f"{path}: expected one payload frame, found {len(scan.payloads)}",
            reason="bad_payload",
            path=path,
        )
    return scan.payloads[0]
