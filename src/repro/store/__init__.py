"""Unified durable-artifact layer: checksummed frames, manifests, fsck.

Every artifact family the system persists — run journals, training
checkpoints, prepared-workload cache entries, policy-server snapshots,
decision logs, golden reports — used to carry its own ad-hoc notion of
"is this file damaged?".  This package is the one storage substrate they
all share:

* :mod:`repro.store.frames` — length-prefixed, CRC-checksummed,
  version-tagged binary frames with a per-file family tag.  A truncated,
  torn, or bit-flipped artifact is *detected* (typed
  :class:`ArtifactCorruptionError` naming the reason and byte offset),
  never silently misread.
* :mod:`repro.store.manifest` — a per-directory artifact manifest
  (``artifacts.json``) recording size + SHA-256 per artifact, enabling
  cross-artifact consistency checks (a report that no longer matches the
  digest recorded when the run completed is bit rot, not a behaviour
  change).
* :mod:`repro.store.fsck` — the ``repro fsck`` engine: detects
  truncation, torn writes, bit flips, and manifest mismatches across all
  artifact families; repairs what is re-derivable (truncate journals to
  the last valid entry, drop rebuildable cache entries) and quarantines
  what is not — nothing is ever deleted silently.

Corruption taxonomy (the ``reason`` field of
:class:`ArtifactCorruptionError` and of fsck findings):

=================== ==========================================================
``truncated``       file ends mid-frame (torn write or partial flush)
``bad_crc``         a frame's checksum does not match its payload (bit rot)
``bad_magic``       the file does not start with the expected magic
``bad_version``     the container version is newer than this reader
``bad_family``      the file is a valid container of the *wrong* family
``bad_payload``     frames are intact but the decoded payload is malformed
``manifest_mismatch`` an artifact's bytes differ from the manifest record
``missing``         the manifest names an artifact that is not on disk
=================== ==========================================================

See ``docs/reliability.md`` ("Artifact integrity & fsck") for the
operational guide, repair-vs-quarantine decision table, and exit codes.
"""

from repro.store.errors import ArtifactCorruptionError, CORRUPTION_REASONS
from repro.store.frames import (
    FILE_MAGIC,
    FrameDamage,
    FrameScan,
    encode_framed,
    is_framed,
    read_artifact,
    read_framed,
    scan_frames,
    write_artifact,
    write_framed,
)
from repro.store.manifest import ARTIFACTS_NAME, ArtifactManifest
from repro.store.fsck import Finding, FsckReport, fsck_path, quarantine_file

__all__ = [
    "ARTIFACTS_NAME",
    "ArtifactCorruptionError",
    "ArtifactManifest",
    "CORRUPTION_REASONS",
    "FILE_MAGIC",
    "Finding",
    "FrameDamage",
    "FrameScan",
    "FsckReport",
    "encode_framed",
    "fsck_path",
    "is_framed",
    "quarantine_file",
    "read_artifact",
    "read_framed",
    "scan_frames",
    "write_artifact",
    "write_framed",
]
