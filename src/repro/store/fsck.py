"""``repro fsck``: detect, repair, and quarantine damaged durable state.

The engine walks one *target* — a run directory, a prep-cache directory, a
goldens directory, or a single artifact file — and applies each artifact
family's integrity checks:

========================= ==================================================
artifact                  check
========================= ==================================================
``journal.jsonl``         per-line CRC envelopes (:mod:`repro.runs.journal`)
framed files              frame scan (:mod:`repro.store.frames`): magic,
(checkpoints, snapshots,  per-frame CRC, family tag, truncation
prep-cache entries,
``decisions.bin``)
JSONL logs                line-by-line parse + format-specific validation
(``decisions.jsonl``,     (:func:`repro.telemetry.decisions.
``spans.jsonl``)          validate_decision_log` et al.)
golden documents          stored digest vs recomputed digest of the stored
                          report (:mod:`repro.scenarios.golden`)
``artifacts.json``        cross-artifact manifest: every recorded artifact
                          must exist and hash to its recorded digest
========================= ==================================================

Repair policy (``repair=True``), per the reliability contract:

* **re-derivable state is repaired in place** — a damaged journal is
  truncated to its last valid entry (the clipped tail is quarantined, the
  run is marked resumable so ``--resume`` recomputes the lost cells;
  skipped while the run's status is still ``running`` — never rewrite a
  journal underneath its live writer); a stale manifest entry for an
  artifact that *genuinely self-verifies* (frames, CRC journals, validated
  logs, goldens) is re-recorded — a mismatch on a file with no self-check
  (``report.csv``, plain JSON) stays *detected*, because the manifest
  digest is the only evidence of the corruption; a corrupt prep-cache
  entry is quarantined (the ordinary miss path rebuilds it on next
  access);
* **everything else is quarantined** — moved under ``quarantine/`` with a
  reason suffix, never deleted, so no repair can destroy evidence;
* **nothing is silently dropped** — every action lands in the
  :class:`FsckReport` as a :class:`Finding`.

Exit codes (``repro fsck``): 0 = clean; 1 = corruption detected and still
present (run again with ``--repair``, or the damage is unrecoverable);
2 = corruption was found and every instance was repaired or quarantined.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.store.errors import ArtifactCorruptionError
from repro.store.frames import is_framed, scan_frames
from repro.store.manifest import ARTIFACTS_NAME, ArtifactManifest, file_digest

#: Quarantine subdirectory name (shared with the prep cache).
QUARANTINE_DIR = "quarantine"

#: Families whose damage is repairable by rebuilding (quarantine == repair).
REBUILDABLE_FAMILIES = ("prep-cache",)

#: :func:`_check_file` verdicts.  ``VERIFIED`` means the file passed a
#: genuine self-check (frame CRCs, per-line journal checksums, JSONL parse
#: + format validation, a golden's internal digest) — strong enough that a
#: manifest digest disagreeing with the file means the *manifest* is stale.
#: ``UNVERIFIED`` means fsck had nothing to check the content against
#: (``report.csv``, plain JSON documents): the manifest digest is the sole
#: integrity anchor for such files, so a mismatch is never auto-resolved.
VERIFIED = "verified"
UNVERIFIED = "unverified"
DAMAGED = "damaged"


# -- findings & report ---------------------------------------------------------


@dataclass
class Finding:
    """One integrity problem and what fsck did about it."""

    artifact: str  #: path (relative to the target when possible)
    family: str  #: artifact family ("run-journal", "prep-cache", ...)
    reason: str  #: corruption reason (CORRUPTION_REASONS vocabulary)
    detail: str  #: located human-readable description
    action: str = "detected"  #: "detected" | "repaired" | "quarantined"
    note: str = ""  #: what the repair/quarantine did

    def describe(self) -> str:
        line = f"{self.artifact} [{self.family}] {self.reason}: {self.detail}"
        if self.action != "detected":
            line += f" -> {self.action}"
            if self.note:
                line += f" ({self.note})"
        return line


@dataclass
class FsckReport:
    """Everything one fsck pass saw and did."""

    target: str
    kind: str  #: "run" | "prep-cache" | "goldens" | "file" | "directory"
    repair: bool
    checked: int = 0  #: artifacts that passed every check
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def unresolved(self) -> list:
        return [f for f in self.findings if f.action == "detected"]

    def exit_code(self) -> int:
        if self.ok:
            return 0
        return 1 if self.unresolved else 2

    def counts(self) -> dict:
        counts = {"checked": self.checked, "detected": 0, "repaired": 0,
                  "quarantined": 0}
        for finding in self.findings:
            counts[finding.action] += 1
        return counts

    def format(self) -> str:
        counts = self.counts()
        lines = [f"fsck {self.kind} {self.target}:"]
        for finding in self.findings:
            lines.append(f"  {finding.describe()}")
        summary = (
            f"  {counts['checked']} artifact(s) clean, "
            f"{counts['repaired']} repaired, "
            f"{counts['quarantined']} quarantined, "
            f"{counts['detected']} unresolved"
        )
        lines.append(summary if self.findings else
                     f"  {counts['checked']} artifact(s) clean")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "kind": self.kind,
            "repair": self.repair,
            "ok": self.ok,
            "exit_code": self.exit_code(),
            "counts": self.counts(),
            "findings": [vars(finding) for finding in self.findings],
        }


# -- quarantine ----------------------------------------------------------------


def quarantine_file(path, quarantine_dir, reason: str = "corrupt") -> Path:
    """Move ``path`` into ``quarantine_dir`` with a collision-safe name."""
    path = Path(path)
    quarantine_dir = Path(quarantine_dir)
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    base = f"{path.name}.{reason}"
    destination = quarantine_dir / base
    serial = 0
    while destination.exists():
        serial += 1
        destination = quarantine_dir / f"{base}.{serial}"
    shutil.move(str(path), str(destination))
    return destination


def quarantine_bytes(data: bytes, quarantine_dir, name: str,
                     reason: str = "corrupt") -> Path:
    """Preserve clipped content (e.g. a truncated journal tail) as a file."""
    quarantine_dir = Path(quarantine_dir)
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    base = f"{name}.{reason}"
    destination = quarantine_dir / base
    serial = 0
    while destination.exists():
        serial += 1
        destination = quarantine_dir / f"{base}.{serial}"
    destination.write_bytes(data)
    return destination


# -- target detection ----------------------------------------------------------


def _run_manifest(directory: Path) -> Optional[dict]:
    """The supervisor manifest of a run directory, or None."""
    path = directory / "manifest.json"
    if not path.is_file():
        return None
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return None
    if isinstance(manifest, dict) and "status" in manifest:
        return manifest
    return None


def _is_golden_doc(path: Path) -> bool:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return False
    return isinstance(document, dict) and {"digest", "report"} <= set(document)


def _looks_like_prep_cache(directory: Path) -> bool:
    for entry in directory.glob("*.pkl"):
        if entry.is_file():
            return True
    return False


def fsck_path(target, repair: bool = False) -> FsckReport:
    """Run fsck over ``target`` (auto-detects what kind of thing it is)."""
    target = Path(target)
    if target.is_file():
        report = FsckReport(str(target), "file", repair)
        _check_file(target, target.parent, report)
        return report
    if not target.is_dir():
        raise FileNotFoundError(f"no artifact or directory at {target}")
    if _run_manifest(target) is not None:
        return fsck_run_dir(target, repair=repair)
    if _looks_like_prep_cache(target):
        return fsck_prep_cache_dir(target, repair=repair)
    goldens = [p for p in sorted(target.glob("*.json")) if _is_golden_doc(p)]
    if goldens:
        return fsck_goldens_dir(target, repair=repair)
    # Plain directory: check every file we recognise.
    report = FsckReport(str(target), "directory", repair)
    for entry in sorted(target.iterdir()):
        if entry.is_file():
            _check_file(entry, target, report)
        elif entry.is_dir() and _run_manifest(entry) is not None:
            nested = fsck_run_dir(entry, repair=repair)
            report.checked += nested.checked
            report.findings.extend(nested.findings)
    return report


# -- per-family checks ---------------------------------------------------------


def _check_framed_file(path: Path, root: Path, report: FsckReport,
                       family_hint: str = "") -> bool:
    """Verify one frame-container file; returns True when clean."""
    data = path.read_bytes()
    scan = scan_frames(data)
    relname = _rel(path, root)
    family = scan.family or family_hint or "framed-artifact"
    if scan.ok:
        report.checked += 1
        return True
    first = scan.damage[0]
    finding = Finding(relname, family, first.reason, first.describe())
    if report.repair:
        rebuildable = family in REBUILDABLE_FAMILIES
        destination = quarantine_file(
            path, root / QUARANTINE_DIR, reason=first.reason
        )
        finding.action = "repaired" if rebuildable else "quarantined"
        finding.note = (
            f"moved to {_rel(destination, root)}"
            + ("; entry rebuilds on next access" if rebuildable else
               "; content is not re-derivable")
        )
    report.findings.append(finding)
    return False


def _check_journal(path: Path, root: Path, report: FsckReport,
                   run_manifest_path: Optional[Path] = None) -> bool:
    """Verify (and optionally repair) a run journal; True when clean."""
    from repro.runs.journal import RunJournal

    journal = RunJournal(path)
    scan = journal.scan()
    if scan.ok:
        report.checked += 1
        return True
    lineno, problem = scan.damage[0]
    reason = "bad_crc" if "checksum" in problem else "truncated"
    finding = Finding(
        _rel(path, root), "run-journal", reason,
        f"line {lineno}: {problem}"
        + (f" (+{len(scan.damage) - 1} more damaged line(s))"
           if len(scan.damage) > 1 else ""),
    )
    if report.repair:
        if _run_status(run_manifest_path) == "running":
            # A live writer owns this journal: truncating it (or flipping
            # the run's status) underneath the writer would corrupt more
            # than it repairs.  Leave the finding detected.
            finding.detail += (
                "; run status is 'running', so repair was skipped — "
                "re-run fsck --repair once the run stops"
            )
            report.findings.append(finding)
            return False
        raw = path.read_text(encoding="utf-8").splitlines()
        clipped = [line for line in raw if line.strip()][scan.valid_prefix_lines:]
        destination = quarantine_bytes(
            ("\n".join(clipped) + "\n").encode("utf-8"),
            root / QUARANTINE_DIR, path.name + ".tail", reason=reason,
        )
        dropped = journal.truncate_to_valid_prefix()
        resumable = _mark_run_resumable(run_manifest_path)
        finding.action = "repaired"
        finding.note = (
            f"truncated to last valid entry (dropped {dropped} line(s), "
            f"tail preserved at {_rel(destination, root)}"
            + ("; run marked resumable" if resumable else "")
            + ")"
        )
    report.findings.append(finding)
    return False


def _run_status(manifest_path: Optional[Path]) -> Optional[str]:
    """The run manifest's ``status`` field, or None when unreadable."""
    if manifest_path is None or not manifest_path.is_file():
        return None
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except ValueError:
        return None
    status = manifest.get("status") if isinstance(manifest, dict) else None
    return status if isinstance(status, str) else None


def _mark_run_resumable(manifest_path: Optional[Path]) -> bool:
    """Flip a completed run back to interrupted so --resume recomputes."""
    if manifest_path is None or not manifest_path.is_file():
        return False
    from repro.runs.atomic import atomic_write_text

    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except ValueError:
        return False
    if manifest.get("status") == "interrupted":
        return True
    if manifest.get("status") == "running":
        # Never rewrite a live run's manifest underneath its writer.
        return False
    manifest["status"] = "interrupted"
    atomic_write_text(
        manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return True


def _check_jsonl_log(path: Path, root: Path, report: FsckReport,
                     family: str, validate=None) -> bool:
    """Line-level integrity of an append-style JSONL log; True when clean.

    ``validate`` (optional) runs a format-specific whole-file validation
    once the line level is clean (e.g.
    :func:`repro.telemetry.decisions.validate_decision_log`).
    """
    text = path.read_text(encoding="utf-8", errors="surrogateescape")
    lines = text.splitlines()
    damaged = None
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            json.loads(line)
        except ValueError:
            damaged = number
            break
    if damaged is None:
        if validate is not None:
            problems = validate(path)
            if problems:
                finding = Finding(
                    _rel(path, root), family, "bad_payload",
                    f"{len(problems)} validation problem(s); first: "
                    f"{problems[0]}",
                )
                if report.repair:
                    destination = quarantine_file(
                        path, root / QUARANTINE_DIR, reason="bad_payload"
                    )
                    finding.action = "quarantined"
                    finding.note = f"moved to {_rel(destination, root)}"
                report.findings.append(finding)
                return False
        report.checked += 1
        return True
    tail_is_last = damaged == len(lines)
    reason = "truncated" if tail_is_last else "bad_payload"
    finding = Finding(
        _rel(path, root), family, reason,
        f"line {damaged} does not parse"
        + (" (torn tail)" if tail_is_last else ""),
    )
    if report.repair:
        keep = lines[: damaged - 1]
        if not keep:
            # Nothing salvageable: quarantine the whole file rather than
            # leave an empty (and format-invalid) log behind.
            destination = quarantine_file(
                path, root / QUARANTINE_DIR, reason=reason
            )
            finding.action = "quarantined"
            finding.note = f"no salvageable lines; moved to " \
                           f"{_rel(destination, root)}"
            report.findings.append(finding)
            return False
        clipped = "\n".join(lines[damaged - 1:])
        destination = quarantine_bytes(
            clipped.encode("utf-8", errors="surrogateescape"),
            root / QUARANTINE_DIR, path.name + ".tail", reason=reason,
        )
        from repro.runs.atomic import atomic_write_bytes

        # surrogateescape round-trips any undecodable bytes the salvaged
        # lines carried (a kept line may hold them inside a JSON string).
        atomic_write_bytes(
            path,
            ("\n".join(keep) + "\n").encode("utf-8", errors="surrogateescape"),
        )
        finding.action = "repaired"
        finding.note = (
            f"salvaged {len(keep)} leading line(s), tail preserved at "
            f"{_rel(destination, root)}"
        )
        if validate is not None:
            still_bad = validate(path)
            if still_bad:
                # The salvaged prefix does not stand alone as a valid
                # log: quarantine it too (evidence, not an empty husk).
                remainder = quarantine_file(
                    path, root / QUARANTINE_DIR, reason="bad_payload"
                )
                finding.action = "quarantined"
                finding.note += (
                    f"; salvaged prefix failed validation "
                    f"({still_bad[0]}) and was moved to "
                    f"{_rel(remainder, root)}"
                )
    report.findings.append(finding)
    return False


def _check_golden(path: Path, root: Path, report: FsckReport) -> bool:
    """Verify one golden document's internal digest; True when clean."""
    from repro.scenarios.golden import report_digest

    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        finding = Finding(
            _rel(path, root), "golden", "bad_payload",
            f"does not parse: {error}",
        )
    else:
        stored = document.get("digest")
        actual = report_digest(document.get("report", {}))
        if stored == actual:
            report.checked += 1
            return True
        finding = Finding(
            _rel(path, root), "golden", "manifest_mismatch",
            f"stored digest {str(stored)[:12]}... does not match the stored "
            f"report ({actual[:12]}...) — bit rot or a hand edit",
        )
    if report.repair:
        destination = quarantine_file(
            path, root / QUARANTINE_DIR, reason=finding.reason
        )
        finding.action = "quarantined"
        finding.note = (
            f"moved to {_rel(destination, root)}; re-bless from a trusted "
            f"run (goldens are source-controlled — check git)"
        )
    report.findings.append(finding)
    return False


def _rel(path: Path, root: Path) -> str:
    try:
        return str(Path(path).relative_to(root))
    except ValueError:
        return str(path)


def _check_file(path: Path, root: Path, report: FsckReport) -> str:
    """Dispatch one file to its family's check.

    Returns :data:`DAMAGED` when a finding was recorded, :data:`VERIFIED`
    when the file passed a genuine self-check, and :data:`UNVERIFIED` when
    there was nothing to verify the content against (the manifest digest
    is the only integrity anchor for such files).
    """
    name = path.name
    if name == ARTIFACTS_NAME or name == "manifest.json":
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            finding = Finding(
                _rel(path, root), "manifest", "bad_payload",
                f"does not parse: {error}",
            )
            if report.repair:
                destination = quarantine_file(
                    path, root / QUARANTINE_DIR, reason="bad_payload"
                )
                finding.action = "quarantined"
                finding.note = f"moved to {_rel(destination, root)}"
            report.findings.append(finding)
            return DAMAGED
        report.checked += 1
        return UNVERIFIED
    head = b""
    try:
        with open(path, "rb") as handle:
            head = handle.read(4)
    except OSError:
        pass
    if is_framed(head):
        clean = _check_framed_file(path, root, report)
        return VERIFIED if clean else DAMAGED
    if name == "journal.jsonl":
        clean = _check_journal(path, root, report,
                               run_manifest_path=root / "manifest.json")
        return VERIFIED if clean else DAMAGED
    if name.endswith(".jsonl"):
        validate = None
        if name.startswith("decisions"):
            validate = _decision_log_validator(path)
        clean = _check_jsonl_log(
            path, root, report,
            family="decision-log" if name.startswith("decisions") else "spans",
            validate=validate,
        )
        return VERIFIED if clean else DAMAGED
    if name == "decisions.bin":
        # Legacy (unframed) binary decision log: full-format validation.
        from repro.telemetry.decisions import validate_decision_log

        problems = validate_decision_log(path)
        if not problems:
            report.checked += 1
            return VERIFIED
        finding = Finding(
            _rel(path, root), "decision-log-binary", "bad_payload",
            f"{len(problems)} problem(s); first: {problems[0]}",
        )
        if report.repair:
            destination = quarantine_file(
                path, root / QUARANTINE_DIR, reason="bad_payload"
            )
            finding.action = "quarantined"
            finding.note = f"moved to {_rel(destination, root)}"
        report.findings.append(finding)
        return DAMAGED
    if path.suffix == ".json":
        if _is_golden_doc(path):
            clean = _check_golden(path, root, report)
            return VERIFIED if clean else DAMAGED
        # Any other .json artifact (bench snapshots, torn goldens) must at
        # least parse — a torn write leaves an unparseable prefix.  Parsing
        # is not verification: bit rot can still parse as JSON.
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            finding = Finding(
                _rel(path, root), "json-document", "bad_payload",
                f"does not parse: {error}",
            )
            if report.repair:
                destination = quarantine_file(
                    path, root / QUARANTINE_DIR, reason="bad_payload"
                )
                finding.action = "quarantined"
                finding.note = f"moved to {_rel(destination, root)}"
            report.findings.append(finding)
            return DAMAGED
        report.checked += 1
        return UNVERIFIED
    # Unrecognised file: nothing to verify beyond the manifest cross-check.
    return UNVERIFIED


def _decision_log_validator(path: Path):
    """The right whole-file validator for a decision-log JSONL file."""
    from repro.telemetry.decisions import validate_decision_log
    from repro.telemetry.object_decisions import (
        sniff_object_decision_log,
        validate_object_decision_log,
    )

    if sniff_object_decision_log(path):
        return validate_object_decision_log
    return validate_decision_log


# -- directory-level passes ----------------------------------------------------


def fsck_run_dir(directory, repair: bool = False) -> FsckReport:
    """Integrity pass over one run directory (journal, logs, manifest)."""
    directory = Path(directory)
    report = FsckReport(str(directory), "run", repair)
    handled = set()
    verified = set()
    for entry in sorted(directory.iterdir()):
        if not entry.is_file():
            continue
        verdict = _check_file(entry, directory, report)
        if verdict == DAMAGED:
            handled.add(entry.name)
        elif verdict == VERIFIED:
            verified.add(entry.name)
    # Cross-artifact manifest pass: every recorded artifact must exist and
    # hash to its recorded digest.  Files repaired or quarantined above get
    # their manifest entry refreshed instead of double-reported; a file
    # whose damage was only *detected* (repair declined or skipped) keeps
    # its manifest entry untouched — it is evidence.
    acted = {f.artifact for f in report.findings if f.action != "detected"}
    manifest = ArtifactManifest(directory)
    if manifest.exists():
        try:
            entries = dict(manifest.entries())
        except ArtifactCorruptionError:
            entries = {}
        for relname, entry in sorted(entries.items()):
            if relname in handled:
                if repair and relname in acted:
                    target = directory / relname
                    if target.is_file():
                        manifest.record(relname, entry.get("family", "?"))
                    else:
                        manifest.forget(relname)
                continue
            problem = manifest.verify(relname)
            if problem is None:
                continue
            detail = "recorded in the artifact manifest but "
            if problem == "missing":
                detail += "missing from disk"
            else:
                recorded = str(entry.get("sha256", "?"))
                detail += (
                    f"its bytes no longer match the recorded digest "
                    f"(recorded sha256 {recorded[:12]}..., on disk "
                    f"{file_digest(directory / relname)[:12]}...)"
                )
            finding = Finding(relname, entry.get("family", "?"), problem,
                              detail)
            if repair and problem == "manifest_mismatch":
                if relname in verified:
                    # The file passed a genuine self-check above, so the
                    # manifest record is the stale side: re-record it.
                    manifest.record(relname, entry.get("family", "?"))
                    finding.action = "repaired"
                    finding.note = ("manifest digest re-recorded from the "
                                    "verified artifact")
                else:
                    # No self-check exists for this file (report.csv, plain
                    # JSON): the manifest digest is its *only* integrity
                    # anchor, so re-recording would erase the sole evidence
                    # of the corruption.  Stays detected; both digests are
                    # preserved above for the operator to decide.
                    finding.detail += (
                        "; the file has no self-check, so fsck cannot tell "
                        "which side is stale — restore the artifact from a "
                        "trusted copy or regenerate it (e.g. --resume)"
                    )
            report.findings.append(finding)
    return report


def fsck_prep_cache_dir(directory, repair: bool = False) -> FsckReport:
    """Integrity pass over a prepared-workload cache directory."""
    directory = Path(directory)
    report = FsckReport(str(directory), "prep-cache", repair)
    for entry in sorted(directory.glob("*.pkl")):
        head = b""
        try:
            with open(entry, "rb") as handle:
                head = handle.read(4)
        except OSError:
            continue
        if not is_framed(head):
            # Pre-integrity-layer entry: a stale silent miss, not damage.
            continue
        _check_framed_file(entry, directory, report, family_hint="prep-cache")
    return report


def fsck_goldens_dir(directory, repair: bool = False) -> FsckReport:
    """Integrity pass over a golden-report directory."""
    directory = Path(directory)
    report = FsckReport(str(directory), "goldens", repair)
    for entry in sorted(directory.glob("*.json")):
        _check_golden(entry, directory, report)
    return report
