"""Per-directory artifact manifests (``artifacts.json``).

A manifest records, for every durable artifact under one directory (a run
directory, a bench output, ...), its byte length and SHA-256 digest plus
the artifact family that wrote it.  It is the cross-artifact integrity
anchor: an individual file can self-verify through its frames or per-line
checksums, but only the manifest can say *"report.csv no longer holds the
bytes the run produced"* or *"the decision log this run recorded is
missing"*.

Updates are atomic JSON rewrites (the manifest is small).  A crash
between writing an artifact and recording it leaves a *stale* manifest —
``repro fsck`` treats an artifact whose content self-verifies but whose
manifest entry is absent or outdated as re-derivable damage (the manifest
is rebuilt from the verified files), while an artifact that fails its own
checks is the real casualty.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

ARTIFACTS_NAME = "artifacts.json"

MANIFEST_FORMAT = "repro-artifact-manifest"
MANIFEST_VERSION = 1


def file_digest(path) -> str:
    """SHA-256 hex digest of a file's bytes."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


class ArtifactManifest:
    """The ``artifacts.json`` ledger of one directory's durable artifacts."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.path = self.directory / ARTIFACTS_NAME
        self._entries = None  # lazy: {relname: {"bytes", "sha256", "family"}}

    # -- persistence -------------------------------------------------------

    def entries(self) -> dict:
        if self._entries is None:
            self._entries = self._load()
        return self._entries

    def _load(self) -> dict:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return {}
        except ValueError as error:
            from repro.store.errors import ArtifactCorruptionError

            raise ArtifactCorruptionError(
                f"{self.path}: manifest does not parse ({error})",
                reason="bad_payload",
                path=self.path,
            ) from None
        if (
            not isinstance(document, dict)
            or document.get("format") != MANIFEST_FORMAT
        ):
            from repro.store.errors import ArtifactCorruptionError

            raise ArtifactCorruptionError(
                f"{self.path}: not an artifact manifest",
                reason="bad_payload",
                path=self.path,
            )
        return {
            str(name): dict(entry)
            for name, entry in document.get("artifacts", {}).items()
        }

    def _save(self) -> None:
        from repro.runs.atomic import atomic_write_text

        document = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "artifacts": {
                name: self._entries[name] for name in sorted(self._entries)
            },
        }
        atomic_write_text(
            self.path, json.dumps(document, indent=1, sort_keys=True) + "\n"
        )

    # -- recording ---------------------------------------------------------

    def record(self, relname: str, family: str) -> dict:
        """Hash the artifact on disk and durably record it; returns the entry."""
        target = self.directory / relname
        entry = {
            "bytes": target.stat().st_size,
            "sha256": file_digest(target),
            "family": str(family),
        }
        entries = self.entries()
        entries[str(relname)] = entry
        self._save()
        return entry

    def forget(self, relname: str) -> None:
        """Drop an artifact from the ledger (quarantine bookkeeping)."""
        entries = self.entries()
        if entries.pop(str(relname), None) is not None:
            self._save()

    # -- verification ------------------------------------------------------

    def exists(self) -> bool:
        return self.path.is_file()

    def verify(self, relname: str) -> Optional[str]:
        """Check one artifact against its record.

        Returns ``None`` when the artifact matches (or is not recorded),
        else the corruption reason (``missing`` / ``manifest_mismatch``).
        """
        entry = self.entries().get(str(relname))
        if entry is None:
            return None
        target = self.directory / relname
        if not target.is_file():
            return "missing"
        if (
            target.stat().st_size != entry.get("bytes")
            or file_digest(target) != entry.get("sha256")
        ):
            return "manifest_mismatch"
        return None
