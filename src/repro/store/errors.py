"""Typed corruption errors shared by every artifact family."""

from __future__ import annotations

#: The closed set of corruption reasons (see the package docstring table).
CORRUPTION_REASONS = (
    "truncated",
    "bad_crc",
    "bad_magic",
    "bad_version",
    "bad_family",
    "bad_payload",
    "manifest_mismatch",
    "missing",
)


class ArtifactCorruptionError(RuntimeError):
    """A durable artifact failed an integrity check.

    Carries enough structure for ``repro fsck`` (and tests) to act on the
    failure without parsing the message: the ``reason`` (one of
    :data:`CORRUPTION_REASONS`), the ``path`` of the damaged artifact, and
    — when the damage is locatable — the byte ``offset`` and ``frame``
    index where the scan stopped.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "bad_payload",
        path=None,
        offset=None,
        frame=None,
    ) -> None:
        if reason not in CORRUPTION_REASONS:
            raise ValueError(f"unknown corruption reason {reason!r}")
        super().__init__(message)
        self.reason = reason
        self.path = str(path) if path is not None else None
        self.offset = offset
        self.frame = frame

    def locate(self) -> str:
        """Human-readable location suffix (""/" at byte N"/" frame K")."""
        parts = []
        if self.frame is not None:
            parts.append(f"frame {self.frame}")
        if self.offset is not None:
            parts.append(f"byte offset {self.offset}")
        return f" ({', '.join(parts)})" if parts else ""
