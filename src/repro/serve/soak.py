"""The chaos soak harness behind ``repro serve --chaos``.

Two phases over the workload/policy grid of a scenario (default
``smoke-serve``):

**Identity** — no faults.  Every cell replays twice, in-process and
through a :class:`~repro.serve.client.ServerBackedPolicy`, and the two
:class:`~repro.eval.parallel.SweepReport` CSVs must be **byte-identical**
with zero fallbacks.  This pins the server as a pure transport.

**Chaos** — deterministic fault specs (deadline-blowing decisions, slow
decisions, injected policy errors, poisoned replies, dropped/stalled
connections) while several client threads replay the grid concurrently.
The soak fails on: any client exception, any cell that did not complete,
a missing fallback (chaos must actually have fired and been absorbed), or
any tenant not back to ``healthy`` by the end (probation recovery).  The
chaos phase then runs a *second* time against a fresh server with the
same specs, and both reports must match byte-for-byte — fault windows are
scoped per tenant (each tenant's requests are sequential on its own
connection), so even the chaos run is deterministic.  Connection-level
faults are deliberately *unscoped*: they only delay transport, so they
may land on any client without perturbing the report.

Everything the harness observed — server logs, the telemetry payload,
the per-phase reports — lands in an artifacts directory for CI upload.
"""

from __future__ import annotations

import json
import queue
import threading
import traceback
from pathlib import Path

from repro.eval.parallel import CellResult, SweepReport
from repro.eval.runner import _prepared, replay
from repro.serve.client import ServerBackedPolicy
from repro.serve.server import ServeConfig, start_in_thread
from repro.serve.state import HEALTHY
from repro.testing.faults import injected_faults

#: Client knobs for the chaos phase: fail fast, retry a little.
CHAOS_CLIENT_OPTIONS = {"timeout": 2.0, "retries": 2, "backoff_base": 0.005}


def soak_serve_config() -> ServeConfig:
    """Small count-based thresholds so one cell covers the whole machine."""
    return ServeConfig(
        degrade_after=3, probation_ok=8, quarantine_requests=16,
    )


def chaos_specs(cells) -> list:
    """Deterministic fault schedule, scoped per tenant (see module doc)."""
    specs = [
        # Transport-only chaos (unscoped): drop two connection attempts,
        # stall a third for 20ms.  Clients retry through all of it.
        {"site": "serve.conn", "action": "error", "after": 1, "times": 2},
        {"site": "serve.conn", "action": "slow:20", "after": 4, "times": 1},
    ]
    for index, (workload, policy) in enumerate(cells):
        tenant = soak_tenant(workload, policy)
        kind = index % 4
        if kind == 0:  # blow the deadline long enough to degrade + recover
            specs.append({
                "site": "serve.decide", "action": "hang_until_deadline",
                "match": {"tenant": tenant}, "after": 5, "times": 5,
            })
        elif kind == 1:  # poisoned replies: client-side validation fallback
            specs.append({
                "site": "serve.reply", "action": "poison",
                "match": {"tenant": tenant}, "after": 8, "times": 2,
            })
        elif kind == 2:  # injected policy error: immediate degradation
            specs.append({
                "site": "serve.decide", "action": "error",
                "match": {"tenant": tenant}, "after": 6, "times": 1,
            })
        else:  # slow decisions past the 500us budget (real async sleep too)
            specs.append({
                "site": "serve.decide", "action": "slow:1",
                "match": {"tenant": tenant}, "after": 3, "times": 2,
            })
    return specs


def soak_tenant(workload: str, policy: str) -> str:
    return f"soak-{workload}-{policy}"


def _report_from_cells(cells) -> SweepReport:
    ordered = sorted(cells, key=lambda cell: (cell.workload, cell.policy))
    return SweepReport(
        cells=ordered,
        workloads=sorted({cell.workload for cell in ordered}),
        policies=sorted({cell.policy for cell in ordered}),
    )


def soak_grid(scenario) -> list:
    """The (workload, policy) cells one soak round replays."""
    return [
        (clause.name, policy)
        for clause in scenario.workloads
        for policy in scenario.sweep_policies
    ]


def prepare_cells(scenario, cache_dir=None):
    """Prepare every workload once; returns {workload: PreparedWorkload}."""
    from repro.scenarios.runner import scenario_traces

    seed = scenario.run_seeds[0]
    eval_config = scenario.eval_config(seed)
    prepared = {}
    for trace in scenario_traces(scenario, eval_config, seed):
        prepared[trace.name] = _prepared(eval_config, trace, 1, None)
    return prepared


def _server_cell(prepared, workload, policy, host, port, tenant=None,
                 client_options=None) -> CellResult:
    adapter = ServerBackedPolicy(
        policy, host, port, tenant=tenant,
        client_options=dict(client_options or {}),
    )
    try:
        result = replay(prepared[workload], adapter)
    finally:
        adapter.close()
    cell = CellResult(workload=workload, policy=policy, result=result,
                      error=None, seconds=0.0)
    cell.client_stats = {
        "requests": adapter._seq,
        "local_fallbacks": adapter.local_fallbacks,
        "server_fallbacks": adapter.server_fallbacks,
    }
    return cell


# -- identity phase ------------------------------------------------------------


def run_identity_phase(scenario, prepared, log=None) -> dict:
    """No faults: server-backed report must equal the in-process report."""
    cells = soak_grid(scenario)
    inproc = []
    for workload, policy in cells:
        result = replay(prepared[workload], policy)
        inproc.append(CellResult(workload=workload, policy=policy,
                                 result=result, error=None, seconds=0.0))
    handle = start_in_thread(soak_serve_config(), log=log)
    served = []
    fallbacks = 0
    try:
        for workload, policy in cells:
            cell = _server_cell(prepared, workload, policy,
                                handle.host, handle.port)
            fallbacks += (cell.client_stats["local_fallbacks"]
                          + cell.client_stats["server_fallbacks"])
            served.append(cell)
    finally:
        handle.stop()
    inproc_csv = _report_from_cells(inproc).to_csv()
    served_csv = _report_from_cells(served).to_csv()
    return {
        "ok": inproc_csv == served_csv and fallbacks == 0,
        "byte_identical": inproc_csv == served_csv,
        "fallbacks": fallbacks,
        "cells": len(cells),
        "csv": served_csv,
        "inproc_csv": inproc_csv,
    }


# -- chaos phase ---------------------------------------------------------------


def _chaos_round(scenario, prepared, specs, state_dir, clients: int,
                 log=None) -> dict:
    """One chaos round: fresh server, fresh fault counters, N client threads."""
    cells = soak_grid(scenario)
    handle = start_in_thread(soak_serve_config(), log=log)
    work = queue.Queue()
    for cell in cells:
        work.put(cell)
    done = []
    errors = []
    lock = threading.Lock()

    def client_loop() -> None:
        while True:
            try:
                workload, policy = work.get_nowait()
            except queue.Empty:
                return
            try:
                cell = _server_cell(
                    prepared, workload, policy, handle.host, handle.port,
                    tenant=soak_tenant(workload, policy),
                    client_options=CHAOS_CLIENT_OPTIONS,
                )
                with lock:
                    done.append(cell)
            except Exception:
                with lock:
                    errors.append(
                        f"{workload}/{policy}:\n{traceback.format_exc()}"
                    )

    try:
        with injected_faults(specs, state_dir):
            threads = [
                threading.Thread(target=client_loop, daemon=True,
                                 name=f"soak-client-{i}")
                for i in range(max(1, clients))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
        # Post-chaos health: every tenant must be back to healthy.
        from repro.serve.client import PolicyClient

        probe = PolicyClient(handle.host, handle.port)
        stats = probe.stats()
        probe.close()
    finally:
        handle.stop()

    tenants = (stats or {}).get("tenants", [])
    unhealthy = [t for t in tenants if t["state"] != HEALTHY]
    fallbacks = sum(t["fallbacks"] for t in tenants)
    local_fallbacks = sum(c.client_stats["local_fallbacks"] for c in done)
    return {
        "ok": (not errors and len(done) == len(cells)
               and not unhealthy
               and fallbacks + local_fallbacks > 0),
        "cells_completed": len(done),
        "cells_expected": len(cells),
        "errors": errors,
        "unhealthy": unhealthy,
        "server_fallbacks": fallbacks,
        "client_fallbacks": local_fallbacks,
        "tenants": tenants,
        "csv": _report_from_cells(done).to_csv(),
    }


def run_chaos_phase(scenario, prepared, state_root, clients: int = 4,
                    log=None) -> dict:
    """Two identically-specced chaos rounds; reports must match bytewise."""
    cells = soak_grid(scenario)
    specs = chaos_specs(cells)
    state_root = Path(state_root)
    first = _chaos_round(scenario, prepared, specs,
                         state_root / "round-1", clients, log=log)
    second = _chaos_round(scenario, prepared, specs,
                          state_root / "round-2", clients, log=log)
    deterministic = first["csv"] == second["csv"]
    return {
        "ok": first["ok"] and second["ok"] and deterministic,
        "deterministic": deterministic,
        "specs": specs,
        "rounds": [first, second],
    }


# -- driver --------------------------------------------------------------------


def run_soak(scenario_name: str = "smoke-serve", clients: int = 4,
             chaos: bool = True, artifacts=None, library=None,
             cache_dir=None, progress=None) -> dict:
    """Run the full soak; returns the report dict (``report["ok"]`` gates CI)."""
    import tempfile

    from repro import telemetry
    from repro.scenarios import resolve_scenario

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    log_lines = []

    def log(message: str) -> None:
        log_lines.append(message)

    scenario = resolve_scenario(scenario_name, root=library)
    say(f"soak scenario {scenario.name}: "
        f"{len(scenario.workloads)} workload(s) x "
        f"{len(scenario.sweep_policies)} policies, {clients} client(s)")
    telemetry.configure(registry=telemetry.MetricsRegistry())
    try:
        prepared = prepare_cells(scenario, cache_dir)
        say("identity phase: no faults, server-backed vs in-process")
        identity = run_identity_phase(scenario, prepared, log=log)
        say(f"identity phase: byte_identical={identity['byte_identical']} "
            f"fallbacks={identity['fallbacks']}")
        report = {"scenario": scenario.name, "identity": identity,
                  "ok": identity["ok"]}
        if chaos:
            say("chaos phase: two deterministic rounds under injected faults")
            with tempfile.TemporaryDirectory(prefix="repro-soak-") as state:
                chaos_report = run_chaos_phase(
                    scenario, prepared, state, clients=clients, log=log
                )
            round_one = chaos_report["rounds"][0]
            say(f"chaos phase: cells={round_one['cells_completed']}"
                f"/{round_one['cells_expected']} "
                f"server_fallbacks={round_one['server_fallbacks']} "
                f"client_fallbacks={round_one['client_fallbacks']} "
                f"deterministic={chaos_report['deterministic']}")
            report["chaos"] = chaos_report
            report["ok"] = report["ok"] and chaos_report["ok"]
        from repro.telemetry.export import build_payload

        report["metrics"] = build_payload(
            "serve", telemetry.get_registry().snapshot(),
            meta={"scenario": scenario.name, "clients": clients},
        )
    finally:
        telemetry.shutdown()
    report["log"] = log_lines
    if artifacts is not None:
        write_soak_artifacts(artifacts, report)
    return report


def write_soak_artifacts(directory, report: dict) -> Path:
    """Server log, metrics payload, and the full report, for CI upload."""
    from repro.runs.atomic import atomic_write_text
    from repro.telemetry.export import write_metrics_json

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_text(directory / "server.log",
                      "\n".join(report.get("log", [])) + "\n")
    if "metrics" in report:
        write_metrics_json(directory / "metrics.json", report["metrics"])
    slim = {key: value for key, value in report.items()
            if key not in ("log", "metrics")}
    atomic_write_text(directory / "soak-report.json",
                      json.dumps(slim, indent=2, sort_keys=True,
                                 default=str) + "\n")
    return directory


def render_soak_report(report: dict) -> str:
    """A terse human-readable pass/fail summary for the CLI."""
    lines = []
    identity = report["identity"]
    lines.append(
        f"identity phase: {'PASS' if identity['ok'] else 'FAIL'} "
        f"({identity['cells']} cells, byte_identical="
        f"{identity['byte_identical']}, fallbacks={identity['fallbacks']})"
    )
    chaos = report.get("chaos")
    if chaos:
        for number, round_report in enumerate(chaos["rounds"], start=1):
            lines.append(
                f"chaos round {number}: "
                f"{'PASS' if round_report['ok'] else 'FAIL'} "
                f"(cells {round_report['cells_completed']}"
                f"/{round_report['cells_expected']}, "
                f"server fallbacks {round_report['server_fallbacks']}, "
                f"client fallbacks {round_report['client_fallbacks']}, "
                f"unhealthy {len(round_report['unhealthy'])}, "
                f"errors {len(round_report['errors'])})"
            )
            for error in round_report["errors"]:
                lines.append(f"  client error: {error.splitlines()[-1]}")
        lines.append(
            f"chaos determinism: "
            f"{'PASS' if chaos['deterministic'] else 'FAIL'} "
            f"(round 1 report == round 2 report)"
        )
    lines.append(f"soak: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
