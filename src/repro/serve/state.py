"""Per-tenant degradation state machine for the policy server.

Three states, all transitions **count-based** (never wall-clock), so a
given request sequence always walks the same path — the property that
keeps chaos-soak reports deterministic:

``healthy``
    The tenant's policy decides.  A deadline miss answers that one request
    from the LRU fallback and counts toward a consecutive-miss streak;
    ``degrade_after`` consecutive misses (or any policy error — a
    :class:`~repro.sanitize.errors.PolicyContractError` from the strict
    sanitizer, or an unexpected exception) demote the shard.
``degraded``
    Every request is answered from the LRU fallback while the policy runs
    in *shadow*: it still sees the request, but its answer is only used to
    judge recovery.  ``probation_ok`` consecutive clean, in-budget shadow
    decisions promote the shard back to ``healthy``; a policy error during
    probation quarantines it.
``quarantined``
    LRU only; the policy is not consulted at all.  After
    ``quarantine_requests`` requests the server rebuilds the policy from
    scratch and re-enters ``degraded`` (probation) — an automatic restart
    with a fresh brain, the last rung of graceful degradation.

:class:`ShardHealth` is pure bookkeeping — the server calls
:meth:`record_decision` / :meth:`record_error` and reads :attr:`state` —
and serializes losslessly (``to_dict``/``from_dict``) so snapshots restore
bit-identical health.
"""

from __future__ import annotations

from dataclasses import dataclass, field

HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

STATES = (HEALTHY, DEGRADED, QUARANTINED)

#: Keep at most this many transition records (oldest dropped first).
MAX_HISTORY = 64


@dataclass
class HealthConfig:
    """Thresholds driving the state machine (all counts, no clocks)."""

    degrade_after: int = 3  #: consecutive deadline misses before degrading
    probation_ok: int = 16  #: clean shadow decisions to re-promote
    quarantine_requests: int = 64  #: requests served in quarantine before rebuild

    def to_dict(self) -> dict:
        return {
            "degrade_after": self.degrade_after,
            "probation_ok": self.probation_ok,
            "quarantine_requests": self.quarantine_requests,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthConfig":
        return cls(
            degrade_after=int(data.get("degrade_after", 3)),
            probation_ok=int(data.get("probation_ok", 16)),
            quarantine_requests=int(data.get("quarantine_requests", 64)),
        )


@dataclass
class ShardHealth:
    """One tenant's position in the healthy/degraded/quarantined machine."""

    config: HealthConfig = field(default_factory=HealthConfig)
    state: str = HEALTHY
    consecutive_misses: int = 0
    probation_clean: int = 0
    quarantine_served: int = 0
    requests: int = 0
    deadline_misses: int = 0
    fallbacks: int = 0
    policy_errors: int = 0
    rebuilds: int = 0
    history: list = field(default_factory=list)

    # -- transitions -------------------------------------------------------

    def _transition(self, state: str, reason: str) -> None:
        self.history.append(
            {"from": self.state, "to": state, "reason": reason,
             "request": self.requests}
        )
        del self.history[:-MAX_HISTORY]
        self.state = state
        self.consecutive_misses = 0
        self.probation_clean = 0
        self.quarantine_served = 0

    def record_decision(self, deadline_miss: bool, served_fallback: bool) -> None:
        """Account one answered victim request.

        ``deadline_miss`` — the (shadow or live) policy decision blew its
        simulated budget; ``served_fallback`` — the reply came from LRU.
        """
        self.requests += 1
        if served_fallback:
            self.fallbacks += 1
        if deadline_miss:
            self.deadline_misses += 1
        if self.state == HEALTHY:
            if deadline_miss:
                self.consecutive_misses += 1
                if self.consecutive_misses >= self.config.degrade_after:
                    self._transition(
                        DEGRADED,
                        f"{self.consecutive_misses} consecutive deadline "
                        f"misses",
                    )
            else:
                self.consecutive_misses = 0
        elif self.state == DEGRADED:
            if deadline_miss:
                self.probation_clean = 0
            else:
                self.probation_clean += 1
                if self.probation_clean >= self.config.probation_ok:
                    self._transition(
                        HEALTHY,
                        f"{self.probation_clean} clean probation decisions",
                    )
        else:  # QUARANTINED
            self.quarantine_served += 1

    def record_error(self, detail: str) -> None:
        """A policy error (contract violation or unexpected exception)."""
        self.policy_errors += 1
        if self.state == HEALTHY:
            self._transition(DEGRADED, f"policy error: {detail}")
        elif self.state == DEGRADED:
            self._transition(QUARANTINED, f"policy error in probation: {detail}")
        # Quarantined shards never consult the policy, so an error there
        # can only come from the rebuild itself; stay quarantined.

    def should_rebuild(self) -> bool:
        """True when a quarantined shard has served out its sentence."""
        return (
            self.state == QUARANTINED
            and self.quarantine_served >= self.config.quarantine_requests
        )

    def record_rebuild(self) -> None:
        """The server rebuilt the policy; re-enter probation."""
        self.rebuilds += 1
        self._transition(DEGRADED, "policy rebuilt after quarantine")

    # -- queries -----------------------------------------------------------

    @property
    def policy_decides(self) -> bool:
        """Whether a live policy decision may be served (healthy only)."""
        return self.state == HEALTHY

    @property
    def shadow_decides(self) -> bool:
        """Whether the policy should run in shadow (degraded only)."""
        return self.state == DEGRADED

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "state": self.state,
            "consecutive_misses": self.consecutive_misses,
            "probation_clean": self.probation_clean,
            "quarantine_served": self.quarantine_served,
            "requests": self.requests,
            "deadline_misses": self.deadline_misses,
            "fallbacks": self.fallbacks,
            "policy_errors": self.policy_errors,
            "rebuilds": self.rebuilds,
            "history": [dict(entry) for entry in self.history],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardHealth":
        state = str(data.get("state", HEALTHY))
        if state not in STATES:
            raise ValueError(f"unknown shard state {state!r}")
        return cls(
            config=HealthConfig.from_dict(data.get("config", {})),
            state=state,
            consecutive_misses=int(data.get("consecutive_misses", 0)),
            probation_clean=int(data.get("probation_clean", 0)),
            quarantine_served=int(data.get("quarantine_served", 0)),
            requests=int(data.get("requests", 0)),
            deadline_misses=int(data.get("deadline_misses", 0)),
            fallbacks=int(data.get("fallbacks", 0)),
            policy_errors=int(data.get("policy_errors", 0)),
            rebuilds=int(data.get("rebuilds", 0)),
            history=[dict(entry) for entry in data.get("history", [])],
        )
