"""Crash-safe snapshots of the policy server's tenant state.

Follows the :mod:`repro.runs.checkpoint` idiom: a versioned pickle payload
wrapped in the checksummed frame container (:mod:`repro.store.frames`,
family ``"serve-snapshot"``) written atomically (temp file + fsync +
rename, so a SIGKILL mid-write leaves the previous snapshot intact) and
*double*-guarded: the container's per-frame CRC catches torn writes and
bit rot at the byte layer, and a content fingerprint that
:func:`load_server_snapshot` re-derives and compares catches hand edits of
a re-framed payload.  Either failure is a typed :class:`SnapshotError`
instead of silently restoring garbage; legacy bare-pickle snapshots
written before the integrity layer still load.

What a snapshot carries, per tenant: the *inner* policy object (its whole
learned/derived state — the strict sanitizer wrapper is rebuilt fresh on
restore), the shard's :class:`~repro.serve.state.ShardHealth`, the cache
geometry, and the idempotent-reply dedup cache.  Restoring and immediately
re-saving produces byte-identical snapshot payloads — the
restart-with-restore proof in the failure-matrix tests.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from repro.store.errors import ArtifactCorruptionError
from repro.store.frames import is_framed, read_artifact, write_artifact

SNAPSHOT_VERSION = 1
SNAPSHOT_NAME = "serve-snapshot.pkl"

#: Frame-container family tag for server snapshots.
SNAPSHOT_FAMILY = "serve-snapshot"


class SnapshotError(RuntimeError):
    """A missing, torn, or version-incompatible server snapshot."""


def _fingerprint(body: bytes) -> str:
    return hashlib.sha256(body).hexdigest()


def shard_to_state(shard) -> dict:
    """One tenant's serializable state (see module docstring)."""
    from repro.serve.protocol import config_to_wire

    return {
        "policy_name": shard.policy_name,
        "params": dict(shard.params),
        "config": config_to_wire(shard.config),
        "allow_bypass": shard.allow_bypass,
        "health": shard.health.to_dict(),
        "replies": list(shard.replies.items()),
        "policy": shard.policy.wrapped,
    }


def shard_from_state(tenant: str, state: dict, health_config):
    """Rebuild a live :class:`~repro.serve.server.TenantShard`."""
    from collections import OrderedDict

    from repro.sanitize.policy_guard import CheckedPolicy
    from repro.serve.protocol import config_from_wire
    from repro.serve.server import TenantShard
    from repro.serve.state import ShardHealth

    shard = TenantShard.__new__(TenantShard)
    shard.tenant = tenant
    shard.policy_name = state["policy_name"]
    shard.params = dict(state["params"])
    shard.config = config_from_wire(state["config"])
    shard.allow_bypass = bool(state["allow_bypass"])
    shard.health = ShardHealth.from_dict(state["health"])
    shard.replies = OrderedDict(
        (key, dict(value)) for key, value in state.get("replies", [])
    )
    # The restored inner policy is already bound (its geometry survived the
    # pickle); the wrapper notices and will not re-bind.
    shard.policy = CheckedPolicy(
        state["policy"], strict=True, allow_bypass=shard.allow_bypass
    )
    return shard


def save_server_snapshot(directory, server, name: str = SNAPSHOT_NAME) -> Path:
    """Write the server's full tenant state; returns the snapshot path."""
    path = Path(directory) / name
    body = pickle.dumps(
        {
            "tenants": {tenant: shard_to_state(shard)
                        for tenant, shard in sorted(server.shards.items())},
            "victims_served": server._victims_served,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    payload = {
        "version": SNAPSHOT_VERSION,
        "fingerprint": _fingerprint(body),
        "body": body,
    }
    write_artifact(
        path,
        SNAPSHOT_FAMILY,
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        version=SNAPSHOT_VERSION,
    )
    return path


def load_server_snapshot(path) -> dict:
    """Read and verify a snapshot; returns the decoded state dict."""
    path = Path(path)
    if path.is_dir():
        path = path / SNAPSHOT_NAME
    if not path.is_file():
        raise SnapshotError(f"no server snapshot at {path}")
    try:
        with open(path, "rb") as handle:
            head = handle.read(4)
        if is_framed(head):
            payload = pickle.loads(read_artifact(path, family=SNAPSHOT_FAMILY))
        else:
            # Legacy bare-pickle snapshot (pre-integrity-layer).
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
    except ArtifactCorruptionError as error:
        raise SnapshotError(
            f"snapshot {path} failed its integrity check "
            f"({error.reason}{error.locate()}): {error}"
        ) from error
    except (OSError, pickle.UnpicklingError, EOFError) as error:
        raise SnapshotError(f"unreadable snapshot {path}: {error}") from error
    if not isinstance(payload, dict) or "body" not in payload:
        raise SnapshotError(f"snapshot {path} has no body")
    if payload.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} is version {payload.get('version')!r}, "
            f"expected {SNAPSHOT_VERSION}"
        )
    if _fingerprint(payload["body"]) != payload.get("fingerprint"):
        raise SnapshotError(
            f"snapshot {path} failed its fingerprint check (torn write or "
            f"manual edit)"
        )
    try:
        return pickle.loads(payload["body"])
    except Exception as error:
        raise SnapshotError(
            f"snapshot {path} body does not decode: {error}"
        ) from error


def restore_server_snapshot(path, server) -> int:
    """Install a snapshot's tenants into ``server``; returns the count."""
    state = load_server_snapshot(path)
    server.shards = {
        tenant: shard_from_state(tenant, shard_state, server.config.health)
        for tenant, shard_state in state.get("tenants", {}).items()
    }
    server._victims_served = int(state.get("victims_served", 0))
    return len(server.shards)
