"""Wire protocol for the eviction-as-a-service server.

Frames are newline-delimited JSON (NDJSON): one compact JSON object per
``\\n``-terminated line, UTF-8, at most :data:`MAX_FRAME_BYTES` long.  The
format is deliberately boring — any language with a JSON library and a TCP
socket can be a tenant — and self-delimiting, so a torn or truncated frame
is detected at the line level and surfaces as a typed :class:`FrameError`
instead of a hung read.

Requests carry an ``op``:

``bind``
    Register a tenant: policy name + constructor params + cache geometry.
    Replies with the policy's ``needs_line_metadata`` / ``uses_pc`` flags
    so the client-side adapter can mirror them *before* the replay loop
    reads them.
``hook``
    One-way policy lifecycle event (``on_hit`` / ``on_miss`` /
    ``on_evict`` / ``on_fill``).  No reply; ordering is guaranteed by the
    connection (frames are processed in arrival order).
``victim``
    The decision request: a full snapshot of the cache set plus the
    triggering access.  Always answered — by the tenant's policy when it
    is healthy and within its deadline budget, by the per-shard LRU
    fallback otherwise — with ``source``/``reason`` saying which path ran.
    Carries a client-chosen idempotent ``id``: retransmits of an already
    answered id return the recorded reply instead of re-deciding.
``ping`` / ``stats`` / ``snapshot`` / ``shutdown``
    Liveness probe, health introspection, forced state snapshot, and a
    drain request (same path as SIGTERM).

The codecs below round-trip the simulator's value types
(:class:`~repro.traces.record.TraceRecord`,
:class:`~repro.cache.block.CacheLine`,
:class:`~repro.cache.cache_set.CacheSet`) exactly: the server rebuilds a
*real* ``CacheSet`` from the wire form, so server-side policies see the
same object surface (``lru_way``, ``valid_ways``, ``lines[way].recency``,
...) as in-process ones — that equivalence is what makes no-fault
server-backed reports byte-identical to in-process reports.
"""

from __future__ import annotations

import json

from repro.cache.block import CacheLine
from repro.cache.cache_set import CacheSet
from repro.cache.config import CacheConfig
from repro.traces.record import AccessType, TraceRecord

#: Upper bound on one frame; larger frames are a protocol violation.  A
#: 16-way set snapshot is ~2 KiB, so this leaves two orders of headroom.
MAX_FRAME_BYTES = 256 * 1024

#: Protocol version, echoed in bind replies; bumped on incompatible change.
PROTOCOL_VERSION = 1


class FrameError(ValueError):
    """A malformed, truncated, oversized, or type-invalid frame."""


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame: compact JSON + newline."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return data + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a frame dict (typed errors only)."""
    if len(line) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(line)} bytes exceeds limit")
    if not line.endswith(b"\n"):
        raise FrameError("truncated frame (no trailing newline)")
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"malformed frame: {error}") from error
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# -- value codecs --------------------------------------------------------------


def access_to_wire(access) -> dict:
    """A :class:`TraceRecord` as a compact wire dict."""
    return {
        "a": access.address,
        "pc": access.pc,
        "t": int(access.access_type),
        "d": access.instr_delta,
        "c": access.core,
    }


def access_from_wire(data: dict) -> TraceRecord:
    try:
        return TraceRecord(
            address=int(data["a"]),
            pc=int(data.get("pc", 0)),
            access_type=AccessType(int(data.get("t", 0))),
            instr_delta=int(data.get("d", 1)),
            core=int(data.get("c", 0)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise FrameError(f"invalid access payload {data!r}: {error}") from error


def line_to_wire(line: CacheLine) -> dict:
    """Every Table II field of one cache line (invalid lines stay small)."""
    if not line.valid:
        return {"v": 0, "r": line.recency}
    return {
        "v": 1,
        "tag": line.tag,
        "la": line.line_address,
        "dr": int(line.dirty),
        "off": line.offset,
        "core": line.core,
        "ipc": line.insertion_pc,
        "lpc": line.last_pc,
        "lat": int(line.last_access_type),
        "int": int(line.insertion_type),
        "pre": line.preuse,
        "ai": line.age_since_insertion,
        "al": line.age_since_last_access,
        "h": line.hits_since_insertion,
        "ac": list(line.access_counts),
        "r": line.recency,
    }


def line_from_wire(data: dict) -> CacheLine:
    try:
        line = CacheLine()
        line.recency = int(data.get("r", 0))
        if not data.get("v"):
            return line
        line.valid = True
        line.tag = int(data["tag"])
        line.line_address = int(data["la"])
        line.dirty = bool(data.get("dr", 0))
        line.offset = int(data.get("off", 0))
        line.core = int(data.get("core", 0))
        line.insertion_pc = int(data.get("ipc", 0))
        line.last_pc = int(data.get("lpc", 0))
        line.last_access_type = AccessType(int(data.get("lat", 0)))
        line.insertion_type = AccessType(int(data.get("int", 0)))
        line.preuse = int(data.get("pre", 0))
        line.age_since_insertion = int(data.get("ai", 0))
        line.age_since_last_access = int(data.get("al", 0))
        line.hits_since_insertion = int(data.get("h", 0))
        line.access_counts = [int(count) for count in data.get("ac", [0] * 4)]
        return line
    except (KeyError, TypeError, ValueError) as error:
        raise FrameError(f"invalid line payload: {error}") from error


def set_to_wire(cache_set) -> dict:
    """A full cache-set snapshot: lines plus the Table II set counters."""
    return {
        "i": cache_set.index,
        "w": cache_set.ways,
        "acc": cache_set.accesses,
        "asm": cache_set.accesses_since_miss,
        "m": cache_set.misses,
        "lines": [line_to_wire(line) for line in cache_set.lines],
    }


def set_from_wire(data: dict) -> CacheSet:
    """Rebuild a *real* :class:`CacheSet` from its wire snapshot.

    Using the genuine class (not a shim) guarantees ``lru_way()`` /
    ``valid_ways()`` / ``find()`` semantics are identical on both ends.
    """
    try:
        ways = int(data["w"])
        lines = data["lines"]
        if not isinstance(lines, list) or len(lines) != ways:
            raise FrameError(
                f"set snapshot carries {len(lines) if isinstance(lines, list) else '?'}"
                f" lines for {ways} ways"
            )
        cache_set = CacheSet(int(data["i"]), ways)
        cache_set.accesses = int(data.get("acc", 0))
        cache_set.accesses_since_miss = int(data.get("asm", 0))
        cache_set.misses = int(data.get("m", 0))
        cache_set.lines = [line_from_wire(line) for line in lines]
        return cache_set
    except FrameError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise FrameError(f"invalid set payload: {error}") from error


def config_to_wire(config: CacheConfig) -> dict:
    return {
        "name": config.name,
        "size_bytes": config.size_bytes,
        "ways": config.ways,
        "latency": config.latency,
        "line_size": config.line_size,
    }


def config_from_wire(data: dict) -> CacheConfig:
    try:
        return CacheConfig(
            name=str(data["name"]),
            size_bytes=int(data["size_bytes"]),
            ways=int(data["ways"]),
            latency=int(data["latency"]),
            line_size=int(data.get("line_size", 64)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise FrameError(f"invalid config payload {data!r}: {error}") from error


# -- request builders (shared by client and tests) -----------------------------


def bind_request(tenant: str, policy: str, config: CacheConfig,
                 params: dict = None, allow_bypass: bool = False) -> dict:
    return {
        "op": "bind",
        "tenant": tenant,
        "policy": policy,
        "params": params or {},
        "config": config_to_wire(config),
        "allow_bypass": bool(allow_bypass),
        "protocol": PROTOCOL_VERSION,
    }


def hook_request(tenant: str, kind: str, set_index: int, access,
                 way: int = None, line=None) -> dict:
    frame = {
        "op": "hook",
        "tenant": tenant,
        "kind": kind,
        "set": set_index,
        "access": access_to_wire(access),
    }
    if way is not None:
        frame["way"] = way
    if line is not None:
        frame["line"] = line_to_wire(line)
    return frame


def victim_request(tenant: str, request_id: str, set_index: int, cache_set,
                   access) -> dict:
    return {
        "op": "victim",
        "id": request_id,
        "tenant": tenant,
        "set": set_index,
        "set_state": set_to_wire(cache_set),
        "access": access_to_wire(access),
    }


def error_reply(message: str, request_id: str = None) -> dict:
    reply = {"ok": False, "error": str(message)}
    if request_id is not None:
        reply["id"] = request_id
    return reply
