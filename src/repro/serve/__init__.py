"""Eviction-as-a-service: the deadline-bounded async policy server.

The bridge from "replay a trace" to "serve heavy traffic": a long-running
asyncio server (:mod:`repro.serve.server`) answers ``victim`` decisions
over a newline-delimited-JSON socket protocol
(:mod:`repro.serve.protocol`) for many concurrent simulated cache
instances, under a per-request deadline budget with an always-available
LRU fallback, a per-tenant degradation state machine
(:mod:`repro.serve.state`), crash-safe snapshots
(:mod:`repro.serve.snapshot`), a defensive client
(:mod:`repro.serve.client`), and a chaos soak harness
(:mod:`repro.serve.soak`).  See docs/serving.md.
"""

from repro.serve.client import (
    CircuitBreaker,
    PolicyClient,
    ServerBackedPolicy,
)
from repro.serve.protocol import PROTOCOL_VERSION, FrameError
from repro.serve.server import (
    PolicyServer,
    ServeConfig,
    ServerHandle,
    TenantShard,
    start_in_thread,
)
from repro.serve.snapshot import (
    SnapshotError,
    load_server_snapshot,
    save_server_snapshot,
)
from repro.serve.state import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    HealthConfig,
    ShardHealth,
)

__all__ = [
    "CircuitBreaker",
    "PolicyClient",
    "ServerBackedPolicy",
    "PROTOCOL_VERSION",
    "FrameError",
    "PolicyServer",
    "ServeConfig",
    "ServerHandle",
    "TenantShard",
    "start_in_thread",
    "SnapshotError",
    "load_server_snapshot",
    "save_server_snapshot",
    "DEGRADED",
    "HEALTHY",
    "QUARANTINED",
    "HealthConfig",
    "ShardHealth",
]
