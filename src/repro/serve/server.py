"""The eviction-as-a-service policy server.

A long-running asyncio TCP server answering ``victim`` decisions for many
concurrent simulated cache instances (tenants) over the NDJSON protocol in
:mod:`repro.serve.protocol`.  Designed robustness-first:

* **Deadline budget** — every victim request carries a *simulated* cost in
  microseconds (``base_cost_us`` plus whatever an injected
  ``slow:<ms>`` / ``hang_until_deadline`` fault charges).  A request whose
  cost exceeds ``deadline_us`` is answered immediately from the per-shard
  LRU fallback and counted.  Simulated (count-based) accounting — not
  wall-clock — is what keeps chaos-soak reports deterministic; see
  docs/serving.md for the rationale.
* **Micro-batched inference** — victim requests from all connections feed
  one decide queue; the decide loop drains up to ``max_batch`` requests
  per wakeup, so concurrent tenants amortize the per-wakeup overhead the
  way Cold-RL batches model invocations.
* **Graceful degradation** — each tenant owns a
  :class:`~repro.serve.state.ShardHealth` machine (healthy → degraded →
  quarantined, probation-based recovery) driven by deadline misses and
  policy errors from the strict contract sanitizer.
* **Always answer** — a victim request is *never* dropped and never
  crashes the connection: any internal failure degrades to the LRU
  fallback computed from the request's own set snapshot.
* **Crash safety** — periodic snapshots through
  :mod:`repro.serve.snapshot`; :meth:`PolicyServer.drain` (wired to
  SIGTERM by ``repro serve``) stops accepting, finishes in-flight
  decisions, and writes a final snapshot.

Chaos sites (see :mod:`repro.testing.faults`): ``serve.conn`` at
connection accept (dropped / stalled connections), ``serve.decide`` per
victim request (slow, deadline-blowing, erroring, or crashing decisions),
``serve.reply`` per victim reply (poisoned or truncated reply frames).
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict

from repro.cache.replacement import BYPASS, make_policy
from repro.sanitize.policy_guard import CheckedPolicy
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    access_from_wire,
    config_from_wire,
    decode_frame,
    encode_frame,
    error_reply,
    line_from_wire,
    set_from_wire,
)
from repro.serve.state import QUARANTINED, HealthConfig, ShardHealth
from repro.telemetry import get_registry
from repro.testing.faults import (
    InjectedFault,
    maybe_fault_async,
    parse_action,
    poisoned,
)

#: Replies remembered per shard for idempotent-retry deduplication.
REPLY_CACHE_SIZE = 128

#: Fallback reasons carried in victim replies (and telemetry labels).
REASON_DEADLINE = "deadline"
REASON_POLICY_ERROR = "policy_error"
REASON_DEGRADED = "degraded"
REASON_QUARANTINED = "quarantined"


class ServeConfig:
    """Tunable serving knobs (all deterministic, count-based)."""

    def __init__(self, deadline_us: float = 500.0, base_cost_us: float = 50.0,
                 max_batch: int = 8, degrade_after: int = 3,
                 probation_ok: int = 16, quarantine_requests: int = 64,
                 snapshot_every: int = 0, snapshot_dir=None):
        if deadline_us <= 0:
            raise ValueError(f"deadline_us must be positive, got {deadline_us}")
        if base_cost_us >= deadline_us:
            raise ValueError(
                f"base_cost_us ({base_cost_us}) must stay below deadline_us "
                f"({deadline_us}) or every request would miss its deadline"
            )
        self.deadline_us = float(deadline_us)
        self.base_cost_us = float(base_cost_us)
        self.max_batch = max(1, int(max_batch))
        self.health = HealthConfig(
            degrade_after=degrade_after,
            probation_ok=probation_ok,
            quarantine_requests=quarantine_requests,
        )
        self.snapshot_every = int(snapshot_every)  # victim requests; 0 = off
        self.snapshot_dir = snapshot_dir


class TenantShard:
    """One tenant: its policy, health machine, and reply-dedup cache."""

    def __init__(self, tenant: str, policy_name: str, params: dict,
                 config, allow_bypass: bool, health_config: HealthConfig):
        self.tenant = tenant
        self.policy_name = policy_name
        self.params = dict(params or {})
        self.config = config
        self.allow_bypass = bool(allow_bypass)
        self.health = ShardHealth(
            config=HealthConfig.from_dict(health_config.to_dict())
        )
        self.replies = OrderedDict()  # request id -> recorded reply
        self.policy = self._build_policy()

    def _build_policy(self) -> CheckedPolicy:
        policy = make_policy(self.policy_name, **self.params)
        checked = CheckedPolicy(
            policy, strict=True, allow_bypass=self.allow_bypass
        )
        checked.bind(self.config)
        return checked

    def rebuild_policy(self) -> None:
        """Replace the policy with a fresh instance (quarantine exit)."""
        self.policy = self._build_policy()
        self.health.record_rebuild()

    def remember(self, request_id: str, reply: dict) -> None:
        self.replies[request_id] = reply
        while len(self.replies) > REPLY_CACHE_SIZE:
            self.replies.popitem(last=False)

    def apply_hook(self, kind: str, frame: dict) -> None:
        """Feed one lifecycle event to the policy; errors are health signals."""
        if self.health.state == QUARANTINED:
            return  # the policy is benched; do not touch it
        try:
            access = access_from_wire(frame["access"])
            set_index = int(frame["set"])
            if kind == "on_miss":
                self.policy.on_miss(set_index, access)
                return
            way = int(frame["way"])
            line = line_from_wire(frame.get("line") or {})
            if kind == "on_hit":
                self.policy.on_hit(set_index, way, line, access)
            elif kind == "on_evict":
                self.policy.on_evict(set_index, way, line, access)
            elif kind == "on_fill":
                self.policy.on_fill(set_index, way, line, access)
            else:
                raise FrameError(f"unknown hook kind {kind!r}")
        except FrameError:
            raise  # malformed frame: the connection handler answers
        except Exception as error:  # policy bug: degrade, never crash
            self.health.record_error(f"{kind}: {error}")

    def describe(self) -> dict:
        return {
            "tenant": self.tenant,
            "policy": self.policy_name,
            "state": self.health.state,
            "requests": self.health.requests,
            "fallbacks": self.health.fallbacks,
            "deadline_misses": self.health.deadline_misses,
            "policy_errors": self.health.policy_errors,
            "rebuilds": self.health.rebuilds,
        }


class PolicyServer:
    """Asyncio NDJSON policy server; see the module docstring."""

    def __init__(self, config: ServeConfig = None, host: str = "127.0.0.1",
                 port: int = 0, log=None):
        self.config = config or ServeConfig()
        self.host = host
        self.port = port
        self.shards = {}
        self.address = None
        self.draining = False
        self._log = log
        self._server = None
        self._decide_queue = None
        self._decide_task = None
        self._connections = set()
        self._victims_served = 0

    # -- logging / metrics -------------------------------------------------

    def log(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    def _count(self, name: str, **labels) -> None:
        get_registry().counter(name, **labels).inc()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._decide_queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_FRAME_BYTES
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._decide_task = asyncio.create_task(self._decide_loop())
        self.log(f"serving on {self.address[0]}:{self.address[1]}")

    async def drain(self, timeout: float = 10.0) -> None:
        """Stop accepting, finish in-flight decisions, snapshot, close."""
        if self.draining:
            return
        self.draining = True
        self.log("drain: stopped accepting connections")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while (not self._decide_queue.empty()
               and loop.time() < deadline):
            await asyncio.sleep(0.005)
        if self.config.snapshot_dir:
            path = self.snapshot_now()
            self.log(f"drain: final snapshot -> {path}")
        for writer in list(self._connections):
            writer.close()
        if self._decide_task is not None:
            self._decide_task.cancel()
            try:
                await self._decide_task
            except asyncio.CancelledError:
                pass
        self.log("drain: complete")

    def snapshot_now(self):
        from repro.serve.snapshot import save_server_snapshot

        return save_server_snapshot(self.config.snapshot_dir, self)

    def restore(self, path) -> int:
        """Load a snapshot written by :func:`save_server_snapshot`.

        Returns the number of tenants restored.  Call before :meth:`start`
        (or at least before tenants reconnect).
        """
        from repro.serve.snapshot import restore_server_snapshot

        count = restore_server_snapshot(path, self)
        self.log(f"restored {count} tenant(s) from {path}")
        return count

    # -- connection handling -----------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            action = await maybe_fault_async("serve.conn")
        except InjectedFault:
            action = "error"
        if action == "error":  # dropped connection
            self.log("chaos: dropping incoming connection")
            writer.close()
            return
        self._connections.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished: normal in chaos runs
        except Exception as error:  # never let a handler kill the server
            self.log(f"connection handler error: {error!r}")
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _serve_connection(self, reader, writer) -> None:
        while not self.draining:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await self._send(writer, error_reply("frame too large"))
                return
            if not line:
                return  # clean EOF
            if not line.endswith(b"\n"):
                # EOF mid-frame: a truncated frame, not a request.
                self.log("truncated frame at EOF; closing connection")
                return
            try:
                frame = decode_frame(line)
                reply = await self._dispatch(frame, writer)
            except FrameError as error:
                reply = error_reply(f"bad frame: {error}")
                self._count("serve.bad_frames")
            if reply is not None:
                await self._send(writer, reply)
                if reply.get("op") == "shutdown_ack":
                    asyncio.create_task(self.drain())
                    return

    async def _send(self, writer, reply: dict) -> None:
        payload = encode_frame(reply)
        if reply.get("op") == "victim":
            # Chaos: a 'corrupt' fault truncates the reply mid-frame.
            if poisoned("serve.reply.corrupt"):
                payload = payload[: max(1, len(payload) // 2)]
                self.log("chaos: truncating a victim reply frame")
        writer.write(payload)
        await writer.drain()

    async def _dispatch(self, frame: dict, writer):
        op = frame.get("op")
        if op == "bind":
            return self._bind(frame)
        if op == "hook":
            self._hook(frame)
            return None  # one-way
        if op == "victim":
            return await self._victim(frame)
        if op == "ping":
            return {"ok": True, "op": "pong", "protocol": PROTOCOL_VERSION}
        if op == "stats":
            return self._stats(frame)
        if op == "snapshot":
            if not self.config.snapshot_dir:
                return error_reply("server has no snapshot directory")
            return {"ok": True, "op": "snapshot",
                    "path": str(self.snapshot_now())}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown_ack"}
        return error_reply(f"unknown op {op!r}", frame.get("id"))

    # -- ops ---------------------------------------------------------------

    def _bind(self, frame: dict) -> dict:
        tenant = frame.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            return error_reply("bind needs a non-empty tenant string")
        policy_name = frame.get("policy")
        config = config_from_wire(frame.get("config") or {})
        shard = self.shards.get(tenant)
        if shard is None:
            try:
                shard = TenantShard(
                    tenant, policy_name, frame.get("params") or {}, config,
                    frame.get("allow_bypass", False), self.config.health,
                )
            except Exception as error:
                return error_reply(f"bind failed: {error}")
            self.shards[tenant] = shard
            self.log(f"bound tenant {tenant!r} -> policy {policy_name!r}")
        elif shard.policy_name != policy_name or shard.config != config:
            # Same tenant id, different identity: refuse rather than
            # silently serving the wrong brain.
            return error_reply(
                f"tenant {tenant!r} already bound to policy "
                f"{shard.policy_name!r}"
            )
        # else: reconnect after restore/retry — attach to the live shard.
        inner = shard.policy.wrapped
        return {
            "ok": True,
            "op": "bind",
            "tenant": tenant,
            "protocol": PROTOCOL_VERSION,
            "needs_line_metadata": bool(
                getattr(inner, "needs_line_metadata", True)
            ),
            "uses_pc": bool(getattr(inner, "uses_pc", False)),
            "state": shard.health.state,
        }

    def _hook(self, frame: dict) -> None:
        shard = self.shards.get(frame.get("tenant"))
        if shard is None:
            return  # one-way: nothing useful to answer
        shard.apply_hook(str(frame.get("kind")), frame)

    async def _victim(self, frame: dict) -> dict:
        request_id = frame.get("id")
        shard = self.shards.get(frame.get("tenant"))
        if shard is None:
            return error_reply(
                f"unknown tenant {frame.get('tenant')!r} (bind first)",
                request_id,
            )
        if request_id is not None and request_id in shard.replies:
            self._count("serve.duplicate_requests")
            return dict(shard.replies[request_id])
        try:
            cache_set = set_from_wire(frame["set_state"])
            access = access_from_wire(frame["access"])
            set_index = int(frame["set"])
        except (KeyError, TypeError, FrameError) as error:
            return error_reply(f"bad victim request: {error}", request_id)

        # Chaos at the decide site: charge simulated cost / inject errors.
        cost_us = self.config.base_cost_us
        fault_error = None
        try:
            action = await maybe_fault_async(
                "serve.decide",
                tenant=shard.tenant, policy=shard.policy_name,
            )
        except InjectedFault as error:
            action = None
            fault_error = error
        if action is not None:
            kind, duration_ms = parse_action(action)
            if kind == "slow":
                cost_us += duration_ms * 1000.0
            elif kind in ("hang", "hang_until_deadline"):
                cost_us = self.config.deadline_us + 1.0

        future = asyncio.get_running_loop().create_future()
        self._decide_queue.put_nowait(
            (shard, set_index, cache_set, access, cost_us, fault_error,
             future)
        )
        reply = await future
        reply["id"] = request_id
        if request_id is not None:
            shard.remember(request_id, dict(reply))
        # Chaos: a poisoned reply carries an out-of-range way.
        if poisoned("serve.reply", tenant=shard.tenant):
            reply = dict(reply)
            reply["way"] = cache_set.ways + 7
            self.log(f"chaos: poisoning reply {request_id!r}")
        return reply

    def _stats(self, frame: dict) -> dict:
        tenant = frame.get("tenant")
        if tenant is not None:
            shard = self.shards.get(tenant)
            if shard is None:
                return error_reply(f"unknown tenant {tenant!r}")
            payload = shard.describe()
            payload["history"] = list(shard.health.history)
            return {"ok": True, "op": "stats", "tenant": payload}
        return {
            "ok": True,
            "op": "stats",
            "victims_served": self._victims_served,
            "tenants": [self.shards[name].describe()
                        for name in sorted(self.shards)],
        }

    def health_payload(self) -> dict:
        """``/healthz`` body: ok iff no shard is quarantined."""
        states = {name: shard.health.state
                  for name, shard in sorted(self.shards.items())}
        return {
            "ok": all(state != QUARANTINED for state in states.values()),
            "draining": self.draining,
            "tenants": states,
            "victims_served": self._victims_served,
        }

    # -- the decide loop (micro-batching) ----------------------------------

    async def _decide_loop(self) -> None:
        while True:
            batch = [await self._decide_queue.get()]
            while (len(batch) < self.config.max_batch
                   and not self._decide_queue.empty()):
                batch.append(self._decide_queue.get_nowait())
            get_registry().histogram("serve.batch_size").observe(len(batch))
            for item in batch:
                shard, set_index, cache_set, access, cost_us, fault, future = item
                try:
                    reply = self._decide_one(
                        shard, set_index, cache_set, access, cost_us, fault
                    )
                except Exception as error:
                    # Absolute backstop: even a bug in the decide path must
                    # answer with a valid LRU decision.
                    self.log(f"decide-loop error: {error!r}")
                    reply = self._fallback_reply(
                        shard, cache_set, REASON_POLICY_ERROR
                    )
                if not future.done():
                    future.set_result(reply)
                self._maybe_snapshot()

    def _fallback_reply(self, shard, cache_set, reason: str) -> dict:
        self._count("serve.fallbacks", reason=reason,
                    policy=shard.policy_name)
        return {
            "ok": True,
            "op": "victim",
            "way": cache_set.lru_way(),
            "source": "fallback",
            "reason": reason,
            "state": shard.health.state,
        }

    def _decide_one(self, shard, set_index, cache_set, access,
                    cost_us: float, fault_error) -> dict:
        health = shard.health
        self._victims_served += 1
        self._count("serve.requests", policy=shard.policy_name)
        if health.should_rebuild():
            shard.rebuild_policy()
            self.log(f"tenant {shard.tenant!r}: policy rebuilt after "
                     f"quarantine (probation starts)")
        deadline_miss = cost_us > self.config.deadline_us
        if deadline_miss:
            self._count("serve.deadline_misses", policy=shard.policy_name)

        if health.state == QUARANTINED:
            health.record_decision(deadline_miss=False, served_fallback=True)
            return self._fallback_reply(shard, cache_set, REASON_QUARANTINED)

        if fault_error is not None:
            self._count("serve.policy_errors", policy=shard.policy_name)
            health.record_error(str(fault_error))
            health.record_decision(deadline_miss=True, served_fallback=True)
            return self._fallback_reply(shard, cache_set, REASON_POLICY_ERROR)

        if deadline_miss:
            health.record_decision(deadline_miss=True, served_fallback=True)
            return self._fallback_reply(shard, cache_set, REASON_DEADLINE)

        if health.policy_decides:
            try:
                way = shard.policy.victim(set_index, cache_set, access)
            except Exception as error:
                self._count("serve.policy_errors", policy=shard.policy_name)
                health.record_error(str(error))
                health.record_decision(deadline_miss=True,
                                       served_fallback=True)
                return self._fallback_reply(
                    shard, cache_set, REASON_POLICY_ERROR
                )
            health.record_decision(deadline_miss=False, served_fallback=False)
            return {
                "ok": True,
                "op": "victim",
                "way": int(way) if way != BYPASS else BYPASS,
                "source": "policy",
                "reason": None,
                "state": health.state,
            }

        # Degraded: LRU serves; the policy decides in shadow for probation.
        try:
            shard.policy.victim(set_index, cache_set, access)
        except Exception as error:
            self._count("serve.policy_errors", policy=shard.policy_name)
            health.record_error(f"shadow: {error}")
            health.record_decision(deadline_miss=True, served_fallback=True)
            return self._fallback_reply(shard, cache_set, REASON_POLICY_ERROR)
        health.record_decision(deadline_miss=False, served_fallback=True)
        return self._fallback_reply(shard, cache_set, REASON_DEGRADED)

    def _maybe_snapshot(self) -> None:
        if (self.config.snapshot_dir
                and self.config.snapshot_every
                and self._victims_served % self.config.snapshot_every == 0):
            self.snapshot_now()


# -- threaded harness (tests and the soak driver) ------------------------------


class ServerHandle:
    """A :class:`PolicyServer` running on a background event loop."""

    def __init__(self, server: PolicyServer, loop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.address[0]

    @property
    def port(self) -> int:
        return self.server.address[1]

    def stop(self, timeout: float = 10.0) -> None:
        """Drain the server and stop its event loop."""
        if self.loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self.loop
            )
            try:
                future.result(timeout)
            except Exception:
                pass
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(config: ServeConfig = None, host: str = "127.0.0.1",
                    port: int = 0, log=None,
                    restore=None) -> ServerHandle:
    """Run a :class:`PolicyServer` on a dedicated daemon thread."""
    started = threading.Event()
    holder = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = PolicyServer(config, host=host, port=port, log=log)
        if restore is not None:
            server.restore(restore)
        loop.run_until_complete(server.start())
        holder["server"] = server
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True, name="repro-serve")
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("policy server failed to start within 10s")
    return ServerHandle(holder["server"], holder["loop"], thread)
