"""Client side of eviction-as-a-service: never stall, never crash.

Two layers:

:class:`PolicyClient`
    A small blocking-socket NDJSON client with the full reliability kit:
    per-attempt timeouts, bounded retries with **jittered exponential
    backoff** (seeded RNG + injectable sleep, so tests assert the exact
    schedule), **idempotent request ids** (a retransmitted victim request
    is deduplicated server-side against its recorded reply), automatic
    reconnect-and-rebind (a reply stream is never reused after a timeout,
    so half-read frames cannot misalign the protocol), and a **circuit
    breaker**: after ``failure_threshold`` consecutive transport failures
    the client stops touching the network entirely and only probes again
    after ``cooldown_requests`` locally-served requests.

:class:`ServerBackedPolicy`
    A :class:`~repro.cache.replacement.base.ReplacementPolicy` adapter
    that makes the existing replay/sweep machinery a tenant of the server:
    hooks stream as one-way frames, ``victim`` is a synchronous
    request/response.  Every reply is validated against the local cache
    set (a poisoned or malformed reply is *discarded*, not trusted) and
    every failure path — timeout, dropped connection, open breaker, dead
    server — degrades to the local ``cache_set.lru_way()`` fallback.  The
    replay loop therefore always receives a valid decision, which is the
    Cold-RL sidecar contract: the cache never blocks on the brain.

With no faults injected the adapter is a pure transport: the server runs
the same policy code against reconstructed-identical state, so reports are
byte-identical to in-process runs (proven in tests/test_serve_identity.py).
"""

from __future__ import annotations

import itertools
import os
import random
import socket
import time

from repro.cache.replacement import (
    BYPASS,
    POLICY_REGISTRY,
    ReplacementPolicy,
)
from repro.serve.protocol import (
    FrameError,
    bind_request,
    decode_frame,
    encode_frame,
    hook_request,
    victim_request,
)
from repro.telemetry import get_registry

#: Process-wide tenant-id allocator (tenant names never reach reports).
_TENANT_COUNTER = itertools.count(1)


class CircuitBreaker:
    """Consecutive-failure breaker with count-based half-open probing."""

    def __init__(self, failure_threshold: int = 5,
                 cooldown_requests: int = 50):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_requests = max(1, int(cooldown_requests))
        self.consecutive_failures = 0
        self.open = False
        self._skipped = 0

    def allow(self) -> bool:
        """May this request touch the network?"""
        if not self.open:
            return True
        self._skipped += 1
        if self._skipped >= self.cooldown_requests:
            self._skipped = 0
            return True  # half-open: one probe
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.open = False
        self._skipped = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.open = True

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return (f"CircuitBreaker({state}, "
                f"failures={self.consecutive_failures})")


def backoff_delays(retries: int, base: float, cap: float, rng) -> list:
    """The jittered exponential backoff schedule, one delay per retry."""
    delays = []
    for attempt in range(retries):
        raw = min(cap, base * (2 ** attempt))
        delays.append(raw * (0.5 + rng.random() / 2))  # 50-100% of raw
    return delays


class PolicyClient:
    """Blocking NDJSON client for one tenant connection."""

    def __init__(self, host: str, port: int, timeout: float = 2.0,
                 retries: int = 2, backoff_base: float = 0.01,
                 backoff_cap: float = 0.5, rng_seed: int = 7,
                 sleep=time.sleep, failure_threshold: int = 5,
                 cooldown_requests: int = 50):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.rng = random.Random(rng_seed)
        self.sleep = sleep
        self.breaker = CircuitBreaker(failure_threshold, cooldown_requests)
        self.transport_failures = 0
        self.dropped_hooks = 0
        self._sock = None
        self._file = None
        self._bind_frame = None  # replayed on every (re)connect

    # -- connection management ---------------------------------------------

    @property
    def connected(self) -> bool:
        return self._file is not None

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.settimeout(self.timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        if self._bind_frame is not None:
            # Re-attach the tenant: servers treat a matching re-bind as a
            # no-op, and a restarted-with-restore server finds its shard.
            reply = self._roundtrip(self._bind_frame)
            if not reply.get("ok"):
                raise FrameError(f"re-bind refused: {reply.get('error')}")

    def close(self) -> None:
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None

    def _roundtrip(self, frame: dict) -> dict:
        """One send + one reply on the live connection (no retries here)."""
        self._file.write(encode_frame(frame))
        self._file.flush()
        line = self._file.readline()
        if not line or not line.endswith(b"\n"):
            raise FrameError("connection closed mid-reply (truncated frame)")
        reply = decode_frame(line)
        want = frame.get("id")
        if want is not None and reply.get("id") not in (None, want):
            raise FrameError(
                f"reply id {reply.get('id')!r} does not match request "
                f"{want!r}"
            )
        return reply

    # -- request path --------------------------------------------------------

    def request(self, frame: dict):
        """Send a request frame; returns the reply dict or ``None``.

        ``None`` means *all* recovery failed (breaker open, or every retry
        exhausted) — the caller must serve its local fallback.  Never
        raises for transport problems.
        """
        if not self.breaker.allow():
            return None
        delays = backoff_delays(
            self.retries, self.backoff_base, self.backoff_cap, self.rng
        )
        for attempt in range(self.retries + 1):
            try:
                if not self.connected:
                    self._connect()
                reply = self._roundtrip(frame)
                self.breaker.record_success()
                return reply
            except (OSError, FrameError, socket.timeout):
                # Timeout, refused/dropped connection, malformed reply: the
                # stream can no longer be trusted — reconnect from scratch.
                self.transport_failures += 1
                self.breaker.record_failure()
                get_registry().counter("serve.client_transport_failures").inc()
                self.close()
                if attempt < self.retries:
                    self.sleep(delays[attempt])
        return None

    def send(self, frame: dict) -> bool:
        """One-way frame (hooks): buffered write, no reply expected."""
        if not self.breaker.allow():
            self.dropped_hooks += 1
            return False
        try:
            if not self.connected:
                self._connect()
            self._file.write(encode_frame(frame))
            return True
        except (OSError, FrameError, socket.timeout):
            self.transport_failures += 1
            self.breaker.record_failure()
            self.close()
            self.dropped_hooks += 1
            return False

    # -- typed helpers -------------------------------------------------------

    def bind(self, tenant: str, policy: str, config, params: dict = None,
             allow_bypass: bool = False):
        frame = bind_request(tenant, policy, config, params, allow_bypass)
        self._bind_frame = frame
        reply = self.request(frame)
        if reply is not None and not reply.get("ok"):
            return None
        return reply

    def ping(self):
        return self.request({"op": "ping"})

    def stats(self, tenant: str = None):
        frame = {"op": "stats"}
        if tenant is not None:
            frame["tenant"] = tenant
        return self.request(frame)

    def shutdown(self):
        return self.request({"op": "shutdown"})


class ServerBackedPolicy(ReplacementPolicy):
    """Run any registered policy *behind the server* in an ordinary replay.

    ``name`` mirrors the inner policy's registry name on purpose: report
    rows must be indistinguishable from in-process rows for the
    byte-identity guarantee.
    """

    def __init__(self, policy: str, host: str, port: int, params: dict = None,
                 client_options: dict = None, tenant: str = None):
        super().__init__()
        if policy not in POLICY_REGISTRY:
            raise ValueError(f"unknown policy {policy!r}")
        self._policy_name = policy
        self._params = dict(params or {})
        self._host = host
        self._port = port
        self._client_options = dict(client_options or {})
        self._tenant = tenant
        self.name = policy
        # Mirror the inner policy's flags from the local registry so the
        # replay loop reads sensible values even if bind never succeeds.
        factory = POLICY_REGISTRY[policy]
        self.needs_line_metadata = bool(
            getattr(factory, "needs_line_metadata", True)
        )
        self.uses_pc = bool(getattr(factory, "uses_pc", False))
        self._client = None
        self._seq = 0
        self.local_fallbacks = 0  #: decisions served by the local LRU path
        self.server_fallbacks = 0  #: server replies flagged source=fallback

    # -- plumbing ------------------------------------------------------------

    def _ensure_client(self) -> PolicyClient:
        if self._client is None:
            self._client = PolicyClient(
                self._host, self._port, **self._client_options
            )
        return self._client

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_client"] = None  # live sockets never travel to workers
        return state

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    # -- ReplacementPolicy surface -------------------------------------------

    def bind(self, config) -> None:
        super().bind(config)
        if self._tenant is None:
            self._tenant = f"t{os.getpid()}-{next(_TENANT_COUNTER)}"
        reply = self._ensure_client().bind(
            self._tenant, self._policy_name, config, self._params
        )
        if reply is not None:
            self.needs_line_metadata = bool(reply.get(
                "needs_line_metadata", self.needs_line_metadata
            ))
            self.uses_pc = bool(reply.get("uses_pc", self.uses_pc))

    def on_hit(self, set_index, way, line, access) -> None:
        self._ensure_client().send(hook_request(
            self._tenant, "on_hit", set_index, access, way=way, line=line
        ))

    def on_miss(self, set_index, access) -> None:
        self._ensure_client().send(hook_request(
            self._tenant, "on_miss", set_index, access
        ))

    def on_evict(self, set_index, way, line, access) -> None:
        self._ensure_client().send(hook_request(
            self._tenant, "on_evict", set_index, access, way=way, line=line
        ))

    def on_fill(self, set_index, way, line, access) -> None:
        self._ensure_client().send(hook_request(
            self._tenant, "on_fill", set_index, access, way=way, line=line
        ))

    def victim(self, set_index, cache_set, access) -> int:
        self._seq += 1
        request_id = f"{self._tenant}-{self._seq}"
        reply = self._ensure_client().request(victim_request(
            self._tenant, request_id, set_index, cache_set, access
        ))
        way = self._validate(reply, cache_set)
        if way is None:
            # Local LRU fallback: the sidecar contract — the cache never
            # blocks on (or crashes with) the brain.
            self.local_fallbacks += 1
            get_registry().counter(
                "serve.client_fallbacks", policy=self._policy_name
            ).inc()
            return cache_set.lru_way()
        if reply.get("source") == "fallback":
            self.server_fallbacks += 1
        return way

    def _validate(self, reply, cache_set):
        """The reply's way iff it is a decision this cache may apply."""
        if reply is None or not reply.get("ok"):
            return None
        way = reply.get("way")
        if not isinstance(way, int) or isinstance(way, bool):
            return None
        if way == BYPASS:
            return None  # replays here never enable bypass; do not trust it
        if not 0 <= way < cache_set.ways:
            return None  # poisoned or corrupt reply
        if not cache_set.lines[way].valid:
            return None
        return way

    def __repr__(self) -> str:
        return (f"ServerBackedPolicy({self._policy_name!r}, "
                f"{self._host}:{self._port})")
