"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list``      — available workload models and replacement policies
* ``simulate``  — one workload under one policy, full result summary
* ``compare``   — one workload under several policies (+ optional Belady)
* ``sweep``     — a whole suite, Figure-10-style speedup table + geomean
  (``--jobs N`` parallelizes over processes; ``--cache-dir`` persists
  prepared workloads so repeat sweeps skip pass 1; ``--no-cache`` opts out;
  every sweep journals completed cells to a run directory and
  ``--resume RUN_ID`` continues an interrupted run — see docs/reliability.md;
  ``--metrics`` records telemetry to the run directory — see
  docs/observability.md)
* ``metrics``   — render a run's recorded telemetry (tables or Prometheus)
* ``replay``    — one workload under one policy; ``--decisions`` records a
  graded per-eviction decision log to a new run directory
* ``inspect``   — render a run's decision log: Figure 5-7 victim profiles,
  set-level eviction heatmap, Belady regret, worst decisions
  (``sweep --decisions[=SAMPLE_RATE]`` records the log during a sweep;
  see docs/observability.md)
* ``mpki``      — Figure-12-style demand-MPKI table
* ``mix``       — a 4-core workload mix (Figure 13 / §IV-D)
* ``table1``    — the hardware-overhead table
* ``train``     — train an RL agent on a workload (optionally save it)
* ``hillclimb`` — §III-B greedy feature selection
* ``trace``     — generate a workload trace and write it to a file
* ``validate``  — preflight-check trace files / saved agents / scenario
  files before a run (see docs/validation.md; ``sweep --sanitize
  {off,normal,strict}`` selects the policy-contract sanitizer mode,
  ``--strict`` is shorthand)
* ``scenario``  — the declarative scenario library (see docs/scenarios.md):
  ``list`` browses ``scenarios/``, ``run`` executes one scenario and checks
  its expectations (+ golden digest when pinned), ``diff`` renders the
  readable report diff against the golden, ``bless`` re-records goldens
  after an intentional behaviour change
* ``serve``     — eviction-as-a-service: a deadline-bounded async policy
  server with degrade-to-LRU fallback (``--metrics-port`` exposes live
  ``/metrics`` + ``/healthz``; SIGTERM drains with a final snapshot);
  ``--chaos`` runs the fault-injection soak instead — see docs/serving.md
* ``bench``     — the perf observatory: replay / objcache / serve / train /
  overhead benchmarks with phase attribution, appended to the CRC-enveloped
  ``BENCH_history.jsonl``; ``--compare`` regression-gates against a
  baseline, ``--profile`` captures flamegraphs, and every finished
  benchmark is journaled to a run directory (``--resume RUN_ID`` adopts
  completed results byte-identically after a crash) —
  see docs/observability.md
* ``fsck``      — audit durable artifacts (run directories, the prep
  cache, goldens, checkpoints, snapshots) for truncation, torn writes and
  bit rot; ``--repair`` truncates torn journal tails and quarantines what
  cannot be re-derived — see docs/reliability.md
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cache.replacement import POLICY_REGISTRY
from repro.eval.metrics import geomean, mix_speedup, speedup_percent
from repro.eval.reporting import format_speedup_series, format_table
from repro.eval.runner import _prepared, compare_policies, replay, run_workload
from repro.eval.workloads import EvalConfig, suite_names
from repro.runs.checkpoint import CheckpointError
from repro.serve.snapshot import SnapshotError
from repro.store.errors import ArtifactCorruptionError
from repro.traces.spec_models import ALL_WORKLOADS


def _add_eval_arguments(parser) -> None:
    parser.add_argument("--scale", type=int, default=16,
                        help="divide Table III cache sizes by this (default 16)")
    parser.add_argument("--length", type=int, default=30_000,
                        help="trace length in memory references")
    parser.add_argument("--seed", type=int, default=7)


def _eval_config(args) -> EvalConfig:
    return EvalConfig(scale=args.scale, trace_length=args.length, seed=args.seed)


def _policies_argument(parser, default) -> None:
    parser.add_argument("--policies", nargs="+", default=list(default),
                        help="replacement policies to evaluate")


# -- commands -----------------------------------------------------------------


def cmd_list(args) -> int:
    print("workload models:")
    for suite in ("spec2006", "cloudsuite"):
        print(f"  [{suite}]")
        for name in suite_names(suite):
            spec = ALL_WORKLOADS[name]
            patterns = "+".join(p.kind for p in spec.patterns)
            print(f"    {name:18s} {patterns}")
    print("\nreplacement policies:")
    for name in sorted(POLICY_REGISTRY):
        print(f"  {name}")
    return 0


def cmd_simulate(args) -> int:
    eval_config = _eval_config(args)
    trace = eval_config.trace(args.workload)
    result = run_workload(eval_config, trace, args.policy)
    print(f"workload: {args.workload}   policy: {args.policy}")
    print(f"  IPC:             {result.single_ipc:.4f}")
    print(f"  LLC hit rate:    {100 * result.llc_hit_rate:.2f}%")
    print(f"  demand hit rate: {100 * result.llc_demand_hit_rate:.2f}%")
    print(f"  demand MPKI:     {result.demand_mpki:.2f}")
    for key in ("accesses", "hits", "misses", "evictions", "dirty_evictions"):
        print(f"  llc {key}: {result.llc_stats[key]}")
    return 0


def cmd_compare(args) -> int:
    eval_config = _eval_config(args)
    trace = eval_config.trace(args.workload)
    results = compare_policies(
        eval_config, trace, args.policies, include_belady=args.belady
    )
    baseline_name = args.policies[0]
    baseline = results[baseline_name].single_ipc
    rows = []
    for name, result in results.items():
        rows.append({
            "policy": name,
            "ipc": round(result.single_ipc, 4),
            "hit%": round(100 * result.llc_hit_rate, 2),
            "mpki": round(result.demand_mpki, 2),
            f"vs {baseline_name}": f"{speedup_percent(result.single_ipc, baseline):+.2f}%",
        })
    print(format_table(
        rows, headers=["policy", "ipc", "hit%", "mpki", f"vs {baseline_name}"],
        title=f"{args.workload} ({len(trace)} references)",
    ))
    return 0


#: Manifest keys <-> sweep argparse attributes (for --resume round-trips).
_SWEEP_MANIFEST_ARGS = (
    "suite", "policies", "jobs", "scale", "length", "seed",
    "cache_dir", "no_cache", "timeout", "retries", "metrics", "sanitize",
    "decisions",
)

#: Default run-directory root for journaled sweeps.
DEFAULT_RUN_ROOT = ".repro-runs"


def _write_sweep_metrics(run, report) -> None:
    """Persist + print the deterministic telemetry payload for one sweep."""
    from repro.telemetry.export import (
        build_payload,
        render_metrics,
        write_metrics_json,
    )
    from repro.telemetry.instruments import sweep_snapshot, sweep_timings

    payload = build_payload(
        "sweep",
        sweep_snapshot(report),
        timings=sweep_timings(report),
        ops=dict(report.pool_stats),
        meta={"run_id": run.run_id, "args": run.manifest.get("args", {})},
    )
    write_metrics_json(run.metrics_path, payload)
    print(render_metrics(payload))
    print(f"metrics written to {run.metrics_path}", file=sys.stderr)


def _write_sweep_decisions(run, report, sample_rate) -> None:
    """Persist + summarize the per-eviction decision logs for one sweep."""
    from repro.telemetry.decisions import (
        write_decisions_binary,
        write_decisions_jsonl,
    )

    missing = [cell for cell in report.cells
               if cell.ok and not getattr(cell, "decisions", None)]
    if missing:
        print(f"note: {len(missing)} journaled cell(s) predate --decisions "
              f"and carry no decision log", file=sys.stderr)
    cells = report.decision_payloads()
    if not cells:
        print("no decision payloads to write", file=sys.stderr)
        return
    write_decisions_jsonl(run.decisions_path, cells)
    write_decisions_binary(run.decisions_bin_path, cells)
    rows = []
    for cell in cells:
        summary = cell.get("summary", {})
        graded = summary.get("graded", 0)
        rows.append({
            "workload": cell.get("workload"),
            "policy": cell.get("policy"),
            "evictions": summary.get("evictions", 0),
            "harmful": summary.get("harmful", 0),
            "regret": round(summary.get("regret_x2", 0) / (2 * graded), 4)
            if graded else "-",
        })
    print(format_table(
        rows,
        headers=["workload", "policy", "evictions", "harmful", "regret"],
        title=f"Belady regret per cell (decision sample rate {sample_rate})",
    ))
    print(f"decision logs written to {run.decisions_path} "
          f"(drill down with: repro inspect {run.run_id})", file=sys.stderr)


def _cmd_sweep_scenario(args) -> int:
    """``repro sweep --scenario``: sweep one declarative scenario.

    Object-cache scenarios get the full treatment — a run directory, a
    deterministic CSV report, and a size-graded object decision log that
    ``repro inspect`` renders as size-vs-victim profiles.  CPU scenarios
    delegate to the scenario runner (same output as ``repro scenario run``).
    """
    from repro.scenarios import resolve_scenario

    scenario = resolve_scenario(args.scenario)
    if getattr(scenario, "scenario_kind", "cpu_cache") != "object_cache":
        from repro.scenarios import run_scenario

        payload = run_scenario(
            scenario, jobs=args.jobs, cache_dir=args.cache_dir,
            progress=lambda message: print(message, file=sys.stderr),
            decisions=args.decisions,
        )
        _print_scenario_report(scenario, payload)
        return 0 if payload["ok"] else 1

    from repro.objcache.replay import object_sweep
    from repro.runs.supervisor import SweepInterrupted, create_run, load_run
    from repro.scenarios.object_runner import object_scenario_traces
    from repro.telemetry.object_decisions import write_object_decisions_jsonl

    run_root = args.run_dir or DEFAULT_RUN_ROOT
    if args.resume:
        run = load_run(run_root, args.resume)
        # The manifest wins, exactly like scalar sweeps: the resumed sweep
        # must rebuild the same grid for a byte-identical report.
        for key, value in run.manifest.get("args", {}).items():
            setattr(args, key, value)
        scenario = resolve_scenario(args.scenario)
        run.mark("running")
        print(f"resuming {run.run_id} "
              f"({len(run.journal())} journal entries)", file=sys.stderr)
    else:
        run = create_run(run_root, {
            "kind": "objcache-sweep",
            "args": {"scenario": args.scenario, "jobs": args.jobs,
                     "decisions": args.decisions},
        })
        print(f"run {run.run_id} -> {run.path}", file=sys.stderr)
    journal = run.journal()
    # Object sweeps grade every eviction against the size-aware Belady
    # oracle by default; --decisions N only thins the event snapshots.
    decisions = args.decisions if args.decisions is not None else 1
    seeds = scenario.run_seeds
    csv_parts = []
    decision_cells = []
    failed = 0
    try:
        for seed in seeds:
            traces = object_scenario_traces(scenario, seed)
            report = object_sweep(
                traces,
                scenario.config.capacity_bytes,
                list(scenario.policies),
                admission=scenario.admission,
                policy_params=scenario.params,
                jobs=args.jobs,
                timeout=args.timeout,
                retries=args.retries,
                sanitize=scenario.sanitize,
                decisions=decisions,
                journal=journal,
                journal_tag=seed,
            )
            failed += len(report.failures())
            if len(seeds) > 1:
                csv_parts.append(f"# seed {seed}")
            csv_parts.append(report.to_csv().rstrip("\n"))
            for cell in report.decision_payloads():
                payload = dict(cell)
                payload["seed"] = seed
                decision_cells.append(payload)
            print(report.format())
    except SweepInterrupted as interrupt:
        run.mark("interrupted")
        print(f"\ninterrupted: {interrupt.completed} completed cell(s) "
              f"journaled in {run.journal_path}\nresume with: "
              f"repro sweep --run-dir {run_root} --resume {run.run_id}",
              file=sys.stderr)
        return 130
    run.write_report("\n".join(csv_parts) + "\n")
    if decision_cells:
        write_object_decisions_jsonl(run.decisions_path, decision_cells)
        print(f"object decision log written to {run.decisions_path} "
              f"(drill down with: repro inspect {run.run_id})",
              file=sys.stderr)
    run.mark("complete" if not failed else "failed")
    if failed:
        print(f"{failed} cell(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_sweep(args) -> int:
    from repro import telemetry
    from repro.eval.parallel import parallel_sweep
    from repro.runs.supervisor import SweepInterrupted, create_run, load_run

    if args.scenario:
        return _cmd_sweep_scenario(args)

    run_root = args.run_dir or DEFAULT_RUN_ROOT
    if args.resume:
        run = load_run(run_root, args.resume)
        if run.manifest.get("kind") == "objcache-sweep":
            # An interrupted object-scenario sweep: resume it in kind.
            return _cmd_sweep_scenario(args)
        # The manifest wins: the resumed sweep must rebuild the exact grid
        # (same EvalConfig, workloads, policies) for a byte-identical report.
        for key, value in run.manifest.get("args", {}).items():
            setattr(args, key, value)
        run.mark("running")
        print(f"resuming {run.run_id} "
              f"({len(run.journal())} journal entries)", file=sys.stderr)
    else:
        run = create_run(run_root, {
            "kind": "sweep",
            "args": {key: getattr(args, key) for key in _SWEEP_MANIFEST_ARGS},
        })
        print(f"run {run.run_id} -> {run.path} "
              f"(resumable with --resume {run.run_id})", file=sys.stderr)

    if args.metrics:
        telemetry.configure(
            registry=telemetry.MetricsRegistry(), span_path=run.spans_path
        )
    eval_config = _eval_config(args)
    lineup = ["lru"] + [policy for policy in args.policies if policy != "lru"]
    try:
        with telemetry.span("sweep", run_id=run.run_id, suite=args.suite):
            report = parallel_sweep(
                eval_config,
                suite_names(args.suite),
                lineup,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                progress=lambda message: print(message, file=sys.stderr),
                timeout=args.timeout,
                retries=args.retries,
                journal=run.journal(),
                sanitize=args.sanitize,
                decisions=args.decisions,
            )
    except SweepInterrupted as interrupt:
        run.mark("interrupted")
        telemetry.shutdown()
        print(f"\ninterrupted: {interrupt.completed} completed cell(s) "
              f"journaled in {run.journal_path}\nresume with: "
              f"repro sweep --run-dir {run_root} --resume {run.run_id}",
              file=sys.stderr)
        return 130
    run.write_report(report.to_csv())
    telemetry.shutdown()
    if args.metrics:
        _write_sweep_metrics(run, report)
    if args.decisions:
        _write_sweep_decisions(run, report, args.decisions)
    table = report.table()
    series = {}
    for name in suite_names(args.suite):
        row = table.get(name, {})
        if "lru" not in row:
            continue
        baseline = row["lru"].single_ipc
        series[name] = {
            policy: row[policy].single_ipc / baseline
            for policy in args.policies
            if policy in row
        }
    print(format_speedup_series(series, args.policies,
                                title=f"IPC speedup over LRU ({args.suite})"))
    print("\nsuite geomean:")
    for policy in args.policies:
        values = [row[policy] for row in series.values() if policy in row]
        if values:
            overall = geomean(values)
            print(f"  {policy:10s} {(overall - 1) * 100:+.2f}%")
        else:
            print(f"  {policy:10s} (no results)")
    prep = report.prep_cache_stats
    if prep:
        print(f"\nprep cache: {prep.get('hits', 0)} hit(s), "
              f"{prep.get('misses', 0)} miss(es), "
              f"{prep.get('corrupt', 0)} corrupt")
    degraded = [cell for cell in report.cells if cell.ok and cell.violations]
    if degraded:
        print(f"\n{len(degraded)} cell(s) degraded to LRU by the policy "
              f"sanitizer (numbers are LRU's from the first violation on):")
        for cell in degraded:
            print(f"  {cell.workload}/{cell.policy}: {cell.violations[0]}")
    failures = report.failures()
    if failures:
        run.mark("failed")
        print(f"\n{len(failures)} cell(s) failed:")
        for cell in failures:
            last = cell.error.strip().splitlines()[-1] if cell.error else "?"
            print(f"  {cell.workload}/{cell.policy}: {last}")
        return 1
    run.mark("complete")
    return 0


def cmd_metrics(args) -> int:
    from pathlib import Path

    from repro.runs.supervisor import SPANS_NAME
    from repro.telemetry.export import (
        load_metrics_json,
        render_metrics,
        to_prometheus,
    )
    from repro.telemetry.spans import read_spans, summarize_spans

    path = Path(args.run)
    if not path.exists():
        path = Path(DEFAULT_RUN_ROOT) / args.run
    if not path.exists():
        from repro.runs.supervisor import list_runs

        known = ", ".join(list_runs(DEFAULT_RUN_ROOT)) or "none"
        raise ValueError(
            f"no run directory or metrics file at {args.run!r} "
            f"(known runs under {DEFAULT_RUN_ROOT}: {known})"
        )
    payload = load_metrics_json(path)
    if args.prometheus:
        print(to_prometheus(payload), end="")
        return 0
    print(render_metrics(payload))
    spans_path = (path if path.is_dir() else path.parent) / SPANS_NAME
    if spans_path.is_file():
        summary = summarize_spans(read_spans(spans_path))
        if summary:
            rows = [
                {
                    "span": name,
                    "count": stats["count"],
                    "total_s": round(stats["total_s"], 3),
                    "mean_s": round(stats["mean_s"], 4),
                    "max_s": round(stats["max_s"], 4),
                }
                for name, stats in sorted(summary.items())
            ]
            print(format_table(
                rows, headers=["span", "count", "total_s", "mean_s", "max_s"],
                title=f"spans ({spans_path.name})",
            ))
    return 0


def cmd_replay(args) -> int:
    from repro.runs.supervisor import create_run
    from repro.telemetry.decisions import (
        DecisionTrace,
        write_decisions_binary,
        write_decisions_jsonl,
    )

    if args.decisions is not None and args.decisions < 1:
        raise ValueError(
            f"--decisions sample rate must be >= 1, got {args.decisions}"
        )
    eval_config = _eval_config(args)
    trace = eval_config.trace(args.workload)
    prepared = _prepared(eval_config, trace, 1, None)
    decisions = None
    if args.decisions:
        from repro.rl.reward import FutureOracle

        decisions = DecisionTrace(
            workload=args.workload,
            policy=args.policy,
            sample_rate=args.decisions,
            oracle=FutureOracle(prepared.llc_line_stream),
        )
    result = replay(prepared, args.policy, decisions=decisions)
    print(f"workload: {args.workload}   policy: {args.policy}")
    print(f"  IPC:          {result.single_ipc:.4f}")
    print(f"  LLC hit rate: {100 * result.llc_hit_rate:.2f}%")
    if decisions is None:
        return 0
    summary = decisions.summary()
    graded = summary["graded"]
    if graded:
        print(f"  evictions:    {summary['evictions']} "
              f"({summary['optimal']} optimal / {summary['neutral']} neutral "
              f"/ {summary['harmful']} harmful)")
        print(f"  Belady regret: {summary['regret_x2'] / (2 * graded):.4f}")
    run = create_run(args.run_dir or DEFAULT_RUN_ROOT, {
        "kind": "replay",
        "args": {key: getattr(args, key)
                 for key in ("workload", "policy", "scale", "length",
                             "seed", "decisions")},
    })
    cells = [decisions.cell_payload()]
    write_decisions_jsonl(run.decisions_path, cells)
    write_decisions_binary(run.decisions_bin_path, cells)
    run.mark("complete")
    print(f"decision log written to {run.decisions_path} "
          f"(drill down with: repro inspect {run.run_id})", file=sys.stderr)
    return 0


def cmd_inspect(args) -> int:
    from repro.eval.inspect import (
        load_decision_cells,
        load_object_decision_cells,
        render_inspection,
        render_object_inspection,
        resolve_decision_log,
    )
    from repro.telemetry.object_decisions import sniff_object_decision_log

    log_path = resolve_decision_log(args.run, default_root=DEFAULT_RUN_ROOT)
    print(f"reading {log_path}", file=sys.stderr)
    if sniff_object_decision_log(log_path):
        cells = load_object_decision_cells(
            log_path, workload=args.workload, policy=args.policy
        )
        print(render_object_inspection(cells, top=args.top))
        return 0
    cells = load_decision_cells(
        log_path, workload=args.workload, policy=args.policy
    )
    print(render_inspection(cells, top=args.top))
    return 0


def cmd_bench(args) -> int:
    """``repro bench``: micro-benchmarks, journaled through a run directory.

    Each completed benchmark is durably journaled (with its payload), so a
    SIGKILL between benchmarks loses nothing: ``--resume <run-id>`` adopts
    the journaled payloads (rewriting their ``BENCH_*.json`` snapshots
    byte-identically) and times only the benchmarks still owed.  The run
    directory also records an artifact-integrity manifest for ``repro
    fsck``.

    Observatory extras: every freshly timed payload is appended to the
    CRC-enveloped ``BENCH_history.jsonl`` (``--no-history`` opts out);
    ``--compare BASELINE`` regression-gates the run (exit 1, per-phase
    delta table naming the phase that got slower); ``--profile`` captures
    a cProfile flamegraph (collapsed stacks) per bench into the run
    directory; ``repro bench history`` renders the recorded trajectory.
    """
    import json as json_mod

    from repro.eval.bench import BENCHES, capture_flamegraph, write_bench
    from repro.eval.bench_history import (
        DEFAULT_HISTORY_NAME,
        append_history,
        compare,
        format_history,
        load_history,
        resolve_baseline,
    )
    from repro.runs.atomic import atomic_write_text
    from repro.runs.supervisor import create_run, load_run

    history_path = Path(
        args.history or (Path(args.output_dir) / DEFAULT_HISTORY_NAME)
    )
    if args.which == "history":
        payloads, damage = load_history(history_path)
        print(format_history(payloads, damage))
        return 0

    # Snapshot the baseline BEFORE any bench appends to the history —
    # comparing against a history this very run wrote to would gate the
    # run against itself and always pass.
    baseline, baseline_notes = None, []
    if args.compare:
        try:
            baseline, baseline_notes = resolve_baseline(args.compare)
        except (OSError, ValueError) as error:
            print(f"bench --compare: {error}", file=sys.stderr)
            return 2

    run_root = args.run_dir or DEFAULT_RUN_ROOT
    if args.resume:
        run = load_run(run_root, args.resume)
        for key, value in run.manifest.get("args", {}).items():
            setattr(args, key, value)
        run.mark("running")
        print(f"resuming {run.run_id} "
              f"({len(run.journal())} journal entries)", file=sys.stderr)
    else:
        run = create_run(run_root, {
            "kind": "bench",
            "args": {"which": args.which, "repeats": args.repeats,
                     "output_dir": args.output_dir},
        })
        print(f"run {run.run_id} -> {run.path}", file=sys.stderr)
    journal = run.journal()
    done = {
        entry.get("name"): entry.get("payload")
        for entry in journal.entries()
        if entry.get("type") == "bench" and isinstance(entry.get("payload"),
                                                       dict)
    }
    names = list(BENCHES) if args.which == "all" else [args.which]
    report_rows = []
    current = {}
    for name in names:
        if name in done:
            # Adopted from the journal: rewrite the snapshot byte-
            # identically instead of re-timing.  Not re-appended to the
            # history — the run that timed it already recorded it.
            payload = done[name]
            path = Path(args.output_dir) / BENCHES[name][1]
            atomic_write_text(
                path,
                json_mod.dumps(payload, indent=1, sort_keys=True) + "\n",
            )
            print(f"bench {name}: adopted from journal", file=sys.stderr)
        else:
            payload, path = write_bench(
                name, output_dir=args.output_dir, repeats=args.repeats
            )
            journal.append({"type": "bench", "name": name,
                            "payload": payload})
            if not args.no_history:
                append_history(history_path, payload)
            if args.profile:
                folded = capture_flamegraph(name)
                flame_path = run.path / f"flame_{name}.folded"
                atomic_write_text(flame_path, folded)
                print(f"flamegraph (collapsed stacks) -> {flame_path}",
                      file=sys.stderr)
        current[name] = payload
        for policy, rate in sorted(payload["rates"].items()):
            report_rows.append(f"{name},{policy},{rate}")
        for check, verdict in sorted(payload.get("checks", {}).items()):
            report_rows.append(f"{name},{check},{verdict.get('value')}")
        if payload["rates"]:
            rows = [
                {"policy": policy, payload["unit"]: rate}
                for policy, rate in payload["rates"].items()
            ]
            print(format_table(rows, headers=["policy", payload["unit"]],
                               title=f"bench {name} "
                                     f"(best of {args.repeats})"))
        if payload.get("checks"):
            rows = [
                {"check": check,
                 "value": verdict.get("value"),
                 "budget": ("-" if verdict.get("budget") is None
                            else verdict.get("budget")),
                 "ok": "yes" if verdict.get("ok") else "NO"}
                for check, verdict in sorted(payload["checks"].items())
            ]
            print(format_table(rows,
                               headers=["check", "value", "budget", "ok"],
                               title=f"bench {name} (budget checks)"))
        print(f"wrote {path}")
    run.write_report(
        "bench,policy,rate\n" + "\n".join(report_rows) + "\n"
    )
    run.mark("complete")
    exit_code = 0
    for name, payload in current.items():
        for check, verdict in sorted(payload.get("checks", {}).items()):
            if not verdict.get("ok"):
                print(f"bench {name}: budget check {check} FAILED",
                      file=sys.stderr)
                exit_code = 1
    if baseline is not None:
        report = compare(current, baseline, tolerance=args.tolerance)
        report.notes.extend(baseline_notes)
        print(report.format())
        if not report.ok:
            exit_code = 1
    return exit_code


def cmd_fsck(args) -> int:
    """``repro fsck``: artifact-integrity check with typed exit codes."""
    import json as json_mod

    from repro.store.fsck import fsck_path

    target = Path(args.target)
    if not target.exists():
        # Maybe it's a run id: resolve under the run root.
        candidate = Path(args.run_dir or DEFAULT_RUN_ROOT) / args.target
        if candidate.is_dir():
            target = candidate
        else:
            print(f"fsck: no file, directory, or run named "
                  f"{args.target!r}", file=sys.stderr)
            return 3
    report = fsck_path(target, repair=args.repair)
    if args.json:
        print(json_mod.dumps(report.as_dict(), indent=1, sort_keys=True))
    else:
        print(report.format())
        if report.unresolved and not args.repair:
            print("re-run with --repair to truncate damaged journal tails "
                  "and quarantine unrecoverable artifacts", file=sys.stderr)
    return report.exit_code()


def cmd_mpki(args) -> int:
    from repro.eval.experiments import mpki_comparison

    eval_config = _eval_config(args)
    results = mpki_comparison(
        eval_config, policies=tuple(args.policies), min_mpki=args.min_mpki,
        suite=args.suite,
    )
    policies = ["lru"] + args.policies
    rows = [
        {"workload": workload, **{p: round(row[p], 2) for p in policies}}
        for workload, row in results.items()
    ]
    print(format_table(rows, headers=["workload"] + policies,
                       title=f"demand MPKI (LRU MPKI > {args.min_mpki})"))
    return 0


def cmd_mix(args) -> int:
    eval_config = _eval_config(args)
    trace = eval_config.mix_trace(args.workloads)
    baseline = run_workload(eval_config, trace, "lru", num_cores=len(args.workloads))
    print(f"mix: {trace.name}")
    print(f"LRU per-core IPC: {[round(v, 3) for v in baseline.ipc]}")
    for policy in args.policies:
        result = run_workload(
            eval_config, trace, policy, num_cores=len(args.workloads)
        )
        speedup = mix_speedup(result.ipc, baseline.ipc)
        print(f"  {policy:10s} mix speedup {100 * (speedup - 1):+.2f}%")
    return 0


def cmd_table1(args) -> int:
    from repro.eval.experiments import table1_overhead

    rows = [
        {
            "policy": row.policy,
            "uses_pc": "Yes" if row.uses_pc else "No",
            "kib": round(row.kib, 2),
            "paper_kib": row.paper_kib,
        }
        for row in table1_overhead()
    ]
    print(format_table(rows, headers=["policy", "uses_pc", "kib", "paper_kib"],
                       title="Table I — storage overhead, 16-way 2MB LLC"))
    return 0


def cmd_train(args) -> int:
    from repro.rl import (
        AgentReplacementPolicy,
        TrainerConfig,
        feature_importance,
        train_on_stream,
    )
    from repro.rl.trainer import save_agent

    eval_config = _eval_config(args)
    trace = eval_config.trace(args.workload)
    prepared = _prepared(eval_config, trace, 1, None)
    config = TrainerConfig(
        hidden_size=args.hidden, epochs=args.epochs, seed=args.seed
    )
    print(f"training on {args.workload} "
          f"({len(prepared.llc_records)} LLC accesses) ...", file=sys.stderr)
    registry = None
    if args.metrics:
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
    trained = train_on_stream(
        prepared.llc_config,
        prepared.llc_records,
        config,
        checkpoint=args.checkpoint,
        resume=args.resume,
        registry=registry,
    )
    if registry is not None:
        from repro.telemetry.export import (
            build_payload,
            render_metrics,
            write_metrics_json,
        )

        payload = build_payload(
            "train",
            registry.snapshot(),
            meta={"workload": args.workload, "epochs": args.epochs,
                  "hidden": args.hidden, "seed": args.seed},
        )
        write_metrics_json(args.metrics, payload)
        print(render_metrics(payload))
        print(f"metrics written to {args.metrics}", file=sys.stderr)

    adapter = AgentReplacementPolicy(trained.agent, trained.extractor, train=False)
    rl_result = replay(prepared, adapter, detailed=True)
    lru_result = replay(prepared, "lru")
    print(f"LLC hit rate: agent {100 * rl_result.llc_hit_rate:.2f}% "
          f"vs LRU {100 * lru_result.llc_hit_rate:.2f}%")
    print("top features by |weight|:")
    importances = feature_importance(trained.agent.network, trained.extractor)
    for name, value in sorted(importances.items(), key=lambda kv: -kv[1])[:8]:
        print(f"  {name:26s} {value:.4f}")
    if args.save:
        save_agent(trained, args.save)
        print(f"agent saved to {args.save}")
    return 0


def cmd_hillclimb(args) -> int:
    from repro.rl.hill_climbing import hill_climb
    from repro.rl.trainer import TrainerConfig, llc_stream_records

    eval_config = _eval_config(args)
    llc_config = eval_config.hierarchy(num_cores=1).llc
    stream = llc_stream_records(eval_config, args.workload)[: args.budget]
    config = TrainerConfig(
        hidden_size=16, epochs=1, max_records=args.budget, seed=args.seed
    )
    result = hill_climb(
        llc_config, [stream], config=config, max_features=args.max_features
    )
    for step in result.steps:
        print(f"+ {step.added_feature:24s} -> hit rate {step.score:.3f}")
    print(f"selected: {result.selected}")
    return 0


def cmd_report(args) -> int:
    from repro.eval.report import write_report

    eval_config = _eval_config(args)
    write_report(
        args.output,
        eval_config,
        include_multicore=args.multicore,
        num_mixes=args.mixes,
    )
    print(f"report written to {args.output}")
    return 0


def cmd_trace(args) -> int:
    from repro.traces.trace_io import save_trace

    eval_config = _eval_config(args)
    trace = eval_config.trace(args.workload)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} records ({trace.instruction_count} "
          f"instructions) to {args.output}")
    return 0


def cmd_validate(args) -> int:
    from repro.objcache.trace_io import SUFFIXES as OBJTRACE_SUFFIXES
    from repro.sanitize.preflight import (
        validate_agent_file,
        validate_bench_file,
        validate_object_trace_file,
        validate_scenario_file,
        validate_trace_file,
    )

    failures = 0
    for path in args.paths:
        kind = args.kind
        if kind == "auto":
            name = str(path)
            basename = Path(path).name
            if name.endswith(".npz"):
                kind = "agent"
            elif name.endswith(OBJTRACE_SUFFIXES):
                kind = "objtrace"
            elif basename.startswith("BENCH_") and name.endswith(
                (".json", ".jsonl")
            ):
                kind = "bench"
            elif name.endswith((".yaml", ".yml", ".json")):
                kind = "scenario"
            else:
                kind = "trace"
        if kind == "agent":
            report = validate_agent_file(path)
        elif kind == "objtrace":
            report = validate_object_trace_file(path)
        elif kind == "bench":
            report = validate_bench_file(path)
        elif kind == "scenario":
            report = validate_scenario_file(path)
        else:
            report = validate_trace_file(path, quarantine=args.quarantine)
        print(report.format())
        if not report.ok:
            failures += 1
    return 1 if failures else 0


# -- scenarios ----------------------------------------------------------------


def _scenario_library(args):
    from repro.scenarios import load_library

    return load_library(args.library)


def _print_scenario_report(scenario, payload) -> None:
    rows = []
    object_cells = False
    for cell in payload["cells"]:
        if "byte_hit_rate" in cell:  # object-cache scenario cell
            object_cells = True
            row = {
                "workload": cell["workload"],
                "policy": cell["policy"],
                "seed": cell["seed"],
                "byte-hit%": round(100 * cell["byte_hit_rate"], 2),
                "obj-hit%": round(100 * cell["object_hit_rate"], 2),
                "evictions": cell["stats"]["evictions"],
            }
        else:
            row = {
                "workload": cell["workload"],
                "policy": cell["policy"],
                "seed": cell["seed"],
                "ipc": round(cell["ipc"][0], 4),
                "hit%": round(100 * cell["hit_rate"], 2),
                "mpki": round(cell["demand_mpki"], 2),
            }
        regret = cell.get("regret")
        if regret and regret.get("graded"):
            row["regret"] = round(
                regret["regret_x2"] / (2 * regret["graded"]), 4
            )
        rows.append(row)
    if object_cells:
        headers = ["workload", "policy", "seed", "byte-hit%", "obj-hit%",
                   "evictions"]
    else:
        headers = ["workload", "policy", "seed", "ipc", "hit%", "mpki"]
    if any("regret" in row for row in rows):
        headers.append("regret")
    print(format_table(rows, headers=headers,
                       title=scenario.title or scenario.name))
    for result in payload["expectations"]:
        status = "PASS" if result["status"] == "pass" else "FAIL"
        print(f"  expect {result['expect']}: {status}")
        for failure in result["failures"]:
            print(f"    - {failure}")
    conservation = payload["conservation"]
    if not conservation["ok"]:
        print("  conservation violations:")
        for problem in conservation["problems"]:
            print(f"    - {problem}")


def cmd_scenario_list(args) -> int:
    library = _scenario_library(args)
    if not library:
        print("no scenarios found (looked under "
              f"{args.library or 'the default library dir'})", file=sys.stderr)
        return 1
    rows = []
    for name in sorted(library):
        scenario = library[name]
        rows.append({
            "name": name,
            "figure": scenario.figure or "-",
            "workloads": len(scenario.workload_names),
            "policies": len(scenario.policies),
            "seeds": len(scenario.run_seeds),
            "golden": "yes" if scenario.golden else "-",
            "title": scenario.title[:48] or "-",
        })
    print(format_table(
        rows,
        headers=["name", "figure", "workloads", "policies", "seeds",
                 "golden", "title"],
        title=f"scenario library ({len(library)} scenarios)",
    ))
    return 0


def cmd_scenario_run(args) -> int:
    import json as json_module

    from repro.scenarios import (
        check_report,
        compare_to_golden,
        report_digest,
        resolve_scenario,
        run_scenario,
    )

    scenario = resolve_scenario(args.name, root=args.library)
    payload = run_scenario(
        scenario, jobs=args.jobs, cache_dir=args.cache_dir,
        progress=lambda message: print(message, file=sys.stderr),
        decisions=args.decisions,
    )
    _print_scenario_report(scenario, payload)
    print(f"report digest: {report_digest(payload)}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, sort_keys=True, indent=1)
        print(f"report written to {args.json}", file=sys.stderr)
    failed = check_report(payload)
    if scenario.golden and not args.no_golden_check:
        diff = compare_to_golden(scenario.name, payload, root=args.goldens)
        if diff is None:
            print("no golden recorded yet (pin one with: repro scenario "
                  f"bless {scenario.name})", file=sys.stderr)
        elif diff:
            print("\ngolden regression:")
            for line in diff:
                print(f"  {line}")
            return 1
        else:
            print("golden check: report matches the blessed digest")
    return 1 if failed else 0


def cmd_scenario_diff(args) -> int:
    import json as json_module

    from repro.scenarios import (
        diff_reports,
        read_golden,
        resolve_scenario,
        run_scenario,
    )

    scenario = resolve_scenario(args.name, root=args.library)
    if args.against:
        with open(args.against, encoding="utf-8") as handle:
            document = json_module.load(handle)
        baseline = document.get("report", document)
        source = args.against
    else:
        stored = read_golden(scenario.name, root=args.goldens)
        if stored is None:
            raise ValueError(
                f"no golden recorded for {scenario.name!r} (bless one first "
                "or pass --against REPORT.json)"
            )
        baseline = stored["report"]
        source = f"golden {scenario.name}"
    payload = run_scenario(scenario, jobs=args.jobs)
    lines = diff_reports(baseline, payload)
    if not lines:
        print(f"no differences against {source}")
        return 0
    print(f"differences against {source}:")
    for line in lines:
        print(f"  {line}")
    return 1


def cmd_scenario_bless(args) -> int:
    from repro.scenarios import resolve_scenario, run_scenario, write_golden

    if args.all:
        library = _scenario_library(args)
        scenarios = [library[name] for name in sorted(library)
                     if library[name].golden]
        if not scenarios:
            print("no scenarios are marked 'golden: true'", file=sys.stderr)
            return 1
    elif args.names:
        scenarios = [resolve_scenario(name, root=args.library)
                     for name in args.names]
    else:
        raise ValueError("give scenario names or --all")
    for scenario in scenarios:
        payload = run_scenario(scenario, jobs=args.jobs)
        path = write_golden(scenario.name, payload, root=args.goldens)
        print(f"blessed {scenario.name} -> {path}")
    return 0


def cmd_scenario(args) -> int:
    handlers = {
        "list": cmd_scenario_list,
        "run": cmd_scenario_run,
        "diff": cmd_scenario_diff,
        "bless": cmd_scenario_bless,
    }
    return handlers[args.scenario_command](args)


def cmd_serve(args) -> int:
    """Eviction-as-a-service: run the policy server, or its chaos soak."""
    from repro.serve.server import PolicyServer, ServeConfig

    if args.chaos:
        from repro.serve.soak import render_soak_report, run_soak

        report = run_soak(
            scenario_name=args.scenario,
            clients=args.clients,
            artifacts=args.artifacts,
            library=args.library,
            progress=lambda message: print(f"# {message}"),
        )
        print(render_soak_report(report))
        if args.artifacts:
            print(f"artifacts -> {args.artifacts}")
        return 0 if report["ok"] else 1

    import asyncio
    import signal

    from repro import telemetry
    from repro.telemetry.export import build_payload, start_http_exporter

    config = ServeConfig(
        deadline_us=args.deadline_us,
        max_batch=args.max_batch,
        snapshot_every=args.snapshot_every,
        snapshot_dir=args.snapshot_dir,
    )
    telemetry.configure(registry=telemetry.MetricsRegistry())
    server = PolicyServer(config, host=args.host, port=args.port, log=print)
    exporter = None

    async def serve() -> int:
        nonlocal exporter
        if args.restore:
            server.restore(args.restore)
        await server.start()
        if args.metrics_port is not None:
            exporter = start_http_exporter(
                lambda: build_payload(
                    "serve", telemetry.get_registry().snapshot()
                ),
                port=args.metrics_port,
                health_fn=server.health_payload,
            )
            print(f"metrics on http://{exporter.host}:{exporter.port}"
                  f"/metrics (+ /healthz)")
        drained = asyncio.Event()
        loop = asyncio.get_running_loop()

        def request_drain(signame: str) -> None:
            print(f"received {signame}: draining")
            drained.set()

        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, request_drain, signal.Signals(signum).name
            )
        await drained.wait()
        await server.drain()
        return 0

    try:
        return asyncio.run(serve())
    finally:
        if exporter is not None:
            exporter.close()
        telemetry.shutdown()


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RLR cache-replacement reproduction (HPCA 2021)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list workloads and policies")

    simulate = commands.add_parser("simulate", help="run one workload/policy")
    simulate.add_argument("workload")
    simulate.add_argument("--policy", default="rlr")
    _add_eval_arguments(simulate)

    compare = commands.add_parser("compare", help="compare policies on a workload")
    compare.add_argument("workload")
    _policies_argument(compare, ("lru", "drrip", "ship++", "rlr"))
    compare.add_argument("--belady", action="store_true",
                         help="include the offline-optimal policy")
    _add_eval_arguments(compare)

    sweep = commands.add_parser("sweep", help="sweep a whole suite")
    sweep.add_argument("--suite", choices=("spec2006", "cloudsuite"),
                       default="spec2006")
    sweep.add_argument("--scenario", default=None, metavar="NAME",
                       help="sweep a declarative scenario instead of a "
                            "suite (library name or file path; object_cache "
                            "scenarios record size-graded decision logs in "
                            "the run directory)")
    _policies_argument(sweep, ("drrip", "ship++", "rlr"))
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (default 1)")
    sweep.add_argument("--cache-dir", default=None,
                       help="persist prepared workloads to this directory "
                            "(repeat sweeps skip pass 1)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore any prepared-workload cache")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-cell wall-clock watchdog in seconds "
                            "(hung workers are killed and retried)")
    sweep.add_argument("--retries", type=int, default=0,
                       help="retries for crashed/timed-out cells "
                            "(exponential backoff with jitter)")
    sweep.add_argument("--run-dir", default=None,
                       help="root for run directories (journal + report; "
                            f"default {DEFAULT_RUN_ROOT})")
    sweep.add_argument("--resume", metavar="RUN_ID", default=None,
                       help="resume an interrupted run (e.g. run-0001); "
                            "journaled cells are not re-run")
    sweep.add_argument("--metrics", action="store_true",
                       help="record telemetry: print a counters/timings "
                            "summary, write metrics.json + spans.jsonl to "
                            "the run directory (see docs/observability.md)")
    sweep.add_argument("--sanitize", choices=("off", "normal", "strict"),
                       default=None,
                       help="policy-contract sanitizer mode (default: "
                            "REPRO_SANITIZE or 'normal'; see "
                            "docs/validation.md)")
    sweep.add_argument("--strict", dest="sanitize", action="store_const",
                       const="strict",
                       help="shorthand for --sanitize strict (violations "
                            "fail the cell with a typed error)")
    sweep.add_argument("--no-strict", dest="sanitize", action="store_const",
                       const="normal",
                       help="shorthand for --sanitize normal (violations "
                            "degrade the cell to LRU)")
    sweep.add_argument("--decisions", nargs="?", const=1, type=int,
                       default=None, metavar="SAMPLE_RATE",
                       help="record per-eviction decision logs with Belady "
                            "regret grading (decisions.jsonl + decisions.bin "
                            "in the run directory; optional value keeps "
                            "every Nth event snapshot, aggregates always "
                            "cover all evictions; see repro inspect)")
    _add_eval_arguments(sweep)

    metrics = commands.add_parser(
        "metrics", help="render a run's recorded telemetry"
    )
    metrics.add_argument("run",
                         help="run directory, metrics.json path, or a run id "
                              f"under {DEFAULT_RUN_ROOT} (e.g. run-0001)")
    metrics.add_argument("--prometheus", action="store_true",
                         help="emit Prometheus text exposition format "
                              "instead of tables")

    replay_cmd = commands.add_parser(
        "replay", help="replay one workload/policy, optionally tracing "
                       "every eviction decision"
    )
    replay_cmd.add_argument("workload")
    replay_cmd.add_argument("--policy", default="rlr")
    replay_cmd.add_argument("--decisions", nargs="?", const=1, type=int,
                            default=None, metavar="SAMPLE_RATE",
                            help="record a Belady-graded decision log to a "
                                 "new run directory (see repro inspect)")
    replay_cmd.add_argument("--run-dir", default=None,
                            help="root for run directories "
                                 f"(default {DEFAULT_RUN_ROOT})")
    _add_eval_arguments(replay_cmd)

    inspect = commands.add_parser(
        "inspect", help="render a run's decision log (victim profiles, "
                        "regret, worst decisions)"
    )
    inspect.add_argument("run",
                         help="run directory, decisions.jsonl/.bin path, or "
                              f"a run id under {DEFAULT_RUN_ROOT} "
                              "(e.g. run-0001)")
    inspect.add_argument("--workload", default=None,
                         help="only cells whose workload name contains this")
    inspect.add_argument("--policy", default=None,
                         help="only cells whose policy name contains this")
    inspect.add_argument("--top", type=int, default=10,
                         help="worst decisions to show per cell (default 10)")

    bench = commands.add_parser(
        "bench", help="perf observatory: bench matrix, history, regression "
                      "gate (BENCH_*.json + BENCH_history.jsonl)"
    )
    bench.add_argument("which", nargs="?", default="all",
                       choices=("all", "replay", "objcache", "serve",
                                "train", "overhead", "history"),
                       help="which benchmark to run, or 'history' to render "
                            "the recorded trajectory (default all)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats; best-of-N is reported "
                            "(default 3)")
    bench.add_argument("--output-dir", default=".",
                       help="where to write BENCH_*.json (default: cwd)")
    bench.add_argument("--run-dir", default=None,
                       help=f"run-directory root (default {DEFAULT_RUN_ROOT})")
    bench.add_argument("--resume", metavar="RUN_ID", default=None,
                       help="resume an interrupted bench run: journaled "
                            "benchmarks are adopted, the rest are timed")
    bench.add_argument("--profile", action="store_true",
                       help="also capture a cProfile flamegraph "
                            "(collapsed-stack .folded file per bench, "
                            "written into the run directory)")
    bench.add_argument("--compare", metavar="BASELINE", default=None,
                       help="regression-gate against a baseline (a "
                            "BENCH_history.jsonl, a directory of "
                            "BENCH_*.json, or one snapshot); exits 1 on "
                            "regression")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="override every family's relative noise "
                            "threshold (fraction, e.g. 0.5 = 50%%; default: "
                            "per-family)")
    bench.add_argument("--history", metavar="PATH", default=None,
                       help="bench history log to append to / render "
                            "(default: <output-dir>/BENCH_history.jsonl)")
    bench.add_argument("--no-history", action="store_true",
                       help="do not append this run to the history log")

    fsck = commands.add_parser(
        "fsck",
        help="verify (and repair) the integrity of durable artifacts",
        description=(
            "Check a run directory, prep-cache directory, goldens "
            "directory, or single artifact file for truncation, torn "
            "writes, bit rot, and cross-artifact manifest mismatches. "
            "Exit codes: 0 = clean; 1 = corruption detected and still "
            "present; 2 = corruption found and every instance repaired "
            "or quarantined; 3 = usage error (no such target)."
        ),
    )
    fsck.add_argument("target",
                      help="path to check, or a run id under --run-dir "
                           "(e.g. run-0001)")
    fsck.add_argument("--repair", action="store_true",
                      help="repair what is re-derivable (truncate damaged "
                           "journal tails, refresh stale manifest digests) "
                           "and quarantine the rest; never deletes")
    fsck.add_argument("--json", action="store_true",
                      help="emit the full report as JSON")
    fsck.add_argument("--run-dir", default=None,
                      help=f"run-directory root used to resolve run ids "
                           f"(default {DEFAULT_RUN_ROOT})")

    mpki = commands.add_parser("mpki", help="Figure-12-style MPKI table")
    mpki.add_argument("--suite", choices=("spec2006", "cloudsuite"),
                      default="spec2006")
    mpki.add_argument("--min-mpki", type=float, default=3.0)
    _policies_argument(mpki, ("drrip", "rlr"))
    _add_eval_arguments(mpki)

    mix = commands.add_parser("mix", help="run a multicore workload mix")
    mix.add_argument("workloads", nargs=4, metavar="WORKLOAD")
    _policies_argument(mix, ("drrip", "rlr"))
    _add_eval_arguments(mix)

    commands.add_parser("table1", help="hardware-overhead table")

    train = commands.add_parser("train", help="train an RL agent")
    train.add_argument("workload")
    train.add_argument("--hidden", type=int, default=64)
    train.add_argument("--epochs", type=int, default=1)
    train.add_argument("--save", help="save the trained agent to this .npz")
    train.add_argument("--checkpoint", default=None,
                       help="write a full training checkpoint (agent, replay "
                            "buffer, RNGs, epoch) here after every epoch")
    train.add_argument("--resume", action="store_true",
                       help="restore --checkpoint if it exists and continue "
                            "from its epoch (bit-identical to uninterrupted)")
    train.add_argument("--metrics", metavar="PATH", default=None,
                       help="record per-epoch training telemetry (loss, "
                            "epsilon, agreement-with-OPT) to this "
                            "metrics.json")
    _add_eval_arguments(train)

    hillclimb = commands.add_parser("hillclimb", help="feature selection")
    hillclimb.add_argument("workload")
    hillclimb.add_argument("--budget", type=int, default=4000,
                           help="LLC accesses per training run")
    hillclimb.add_argument("--max-features", type=int, default=4)
    _add_eval_arguments(hillclimb)

    trace = commands.add_parser("trace", help="generate and save a trace")
    trace.add_argument("workload")
    trace.add_argument("output")
    _add_eval_arguments(trace)

    report = commands.add_parser("report", help="write a full markdown report")
    report.add_argument("output")
    report.add_argument("--multicore", action="store_true")
    report.add_argument("--mixes", type=int, default=3)
    _add_eval_arguments(report)

    validate = commands.add_parser(
        "validate", help="preflight-check trace files / saved agents"
    )
    validate.add_argument("paths", nargs="+", metavar="PATH",
                          help="trace (.csv/.csv.gz/.bin), object trace "
                               "(.objtrace/.objcsv), agent (.npz), "
                               "scenario (.yaml/.json), or bench "
                               "(BENCH_*.json / BENCH_history.jsonl) files "
                               "to check")
    validate.add_argument("--kind",
                          choices=("auto", "trace", "objtrace", "agent",
                                   "scenario", "bench"),
                          default="auto",
                          help="what the paths are (auto: .npz = agent, "
                               ".objtrace/.objcsv = object trace, "
                               "BENCH_* = bench, .yaml/.yml/.json = "
                               "scenario, anything else = trace)")
    validate.add_argument("--quarantine", action="store_true",
                          help="report bad trace records as warnings, the "
                               "way a quarantining load would skip them")

    scenario = commands.add_parser(
        "scenario", help="browse / run / diff / bless declarative scenarios"
    )
    scenario_commands = scenario.add_subparsers(
        dest="scenario_command", required=True
    )

    def _scenario_common(sub, golden_dir: bool = True) -> None:
        sub.add_argument("--library", default=None, metavar="DIR",
                         help="scenario library root (default: scenarios/ "
                              "or REPRO_SCENARIO_DIR)")
        if golden_dir:
            sub.add_argument("--goldens", default=None, metavar="DIR",
                             help="golden-report directory (default: "
                                  "tests/goldens/ or REPRO_GOLDEN_DIR)")
            sub.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the sweep")

    scenario_list = scenario_commands.add_parser(
        "list", help="browse the scenario library"
    )
    _scenario_common(scenario_list, golden_dir=False)

    scenario_run = scenario_commands.add_parser(
        "run", help="run one scenario, check expectations and golden"
    )
    scenario_run.add_argument("name",
                              help="scenario name (library) or file path")
    _scenario_common(scenario_run)
    scenario_run.add_argument("--json", metavar="PATH", default=None,
                              help="also write the full report payload here")
    scenario_run.add_argument("--cache-dir", default=None,
                              help="prepared-workload cache directory")
    scenario_run.add_argument("--decisions", nargs="?", const=1, type=int,
                              default=None, metavar="SAMPLE_RATE",
                              help="force per-eviction decision grading "
                                   "(automatic for regret expectations)")
    scenario_run.add_argument("--no-golden-check", action="store_true",
                              help="skip the golden-digest comparison")

    scenario_diff = scenario_commands.add_parser(
        "diff", help="readable report diff against the golden (or a report)"
    )
    scenario_diff.add_argument("name",
                               help="scenario name (library) or file path")
    _scenario_common(scenario_diff)
    scenario_diff.add_argument("--against", metavar="REPORT.json",
                               default=None,
                               help="diff against this saved report instead "
                                    "of the golden")

    scenario_bless = scenario_commands.add_parser(
        "bless", help="re-record golden reports (after intended changes)"
    )
    scenario_bless.add_argument("names", nargs="*", metavar="NAME",
                                help="scenarios to bless (default: --all)")
    _scenario_common(scenario_bless)
    scenario_bless.add_argument("--all", action="store_true",
                                help="bless every scenario marked "
                                     "'golden: true'")

    serve = commands.add_parser(
        "serve",
        help="eviction-as-a-service policy server (+ --chaos soak)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default 0 = any free port)")
    serve.add_argument("--deadline-us", type=float, default=500.0,
                       help="simulated per-request decision budget in "
                            "microseconds (default 500)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch size for the decide loop")
    serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="write crash-safe tenant snapshots here "
                            "(final snapshot on SIGTERM drain)")
    serve.add_argument("--snapshot-every", type=int, default=0, metavar="N",
                       help="also snapshot every N victim requests")
    serve.add_argument("--restore", default=None, metavar="PATH",
                       help="restore tenants from a snapshot before serving")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="expose /metrics and /healthz on this port "
                            "(0 = any free port)")
    serve.add_argument("--chaos", action="store_true",
                       help="run the chaos soak instead of serving: "
                            "identity phase + two deterministic fault "
                            "rounds (see docs/serving.md)")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent soak client threads (default 4)")
    serve.add_argument("--scenario", default="smoke-serve",
                       help="soak grid scenario (default smoke-serve)")
    serve.add_argument("--artifacts", default=None, metavar="DIR",
                       help="write soak server.log / metrics.json / "
                            "soak-report.json here")
    serve.add_argument("--library", default=None, metavar="DIR",
                       help="scenario library root for --chaos")

    return parser


_COMMANDS = {
    "list": cmd_list,
    "simulate": cmd_simulate,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "metrics": cmd_metrics,
    "replay": cmd_replay,
    "inspect": cmd_inspect,
    "bench": cmd_bench,
    "fsck": cmd_fsck,
    "mpki": cmd_mpki,
    "mix": cmd_mix,
    "table1": cmd_table1,
    "train": cmd_train,
    "hillclimb": cmd_hillclimb,
    "trace": cmd_trace,
    "report": cmd_report,
    "validate": cmd_validate,
    "scenario": cmd_scenario,
    "serve": cmd_serve,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except ValueError as error:
        # Bad user input (unknown workload/policy, invalid config): print
        # the message, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ArtifactCorruptionError, CheckpointError, SnapshotError) as error:
        # Corrupt durable state (torn/bit-rotted checkpoint, snapshot,
        # journal, golden): a typed message plus the repair hint, never a
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        print("hint: `python -m repro fsck <path> --repair` audits and "
              "repairs durable artifacts", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
