"""SPEC CPU 2006-like and CloudSuite-like workload models.

The paper evaluates on SimPoint traces of 29 SPEC CPU 2006 benchmarks and 5
CloudSuite benchmarks.  Those traces are proprietary; per DESIGN.md §2 each
benchmark is replaced by a synthetic model that reproduces its *qualitative*
LLC access behaviour — working-set size relative to the LLC, streaming vs.
irregular access, prefetch friendliness, write intensity, and memory
intensity (MPKI class).  Pattern assignments follow the standard
characterization literature for these suites (e.g. Jaleel's memory-
characterization studies and the RRIP/SHiP papers' discussion of which
benchmarks thrash, stream, or fit).

Working-set sizes are expressed as fractions of LLC capacity, so the models
scale with the evaluation configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces import synthetic
from repro.traces.record import Trace


@dataclass(frozen=True)
class PatternSpec:
    """One weighted pattern inside a workload model.

    ``working_set`` (and ``scan_lines``) are fractions of LLC lines.
    """

    weight: float
    kind: str  # stream|stride|cyclic|random|chase|zipf|scan_hot|multi_stream
    working_set: float
    stride: int = 1
    alpha: float = 1.0
    scan_lines: float = 0.0
    hot_fraction: float = 0.5
    streams: int = 8


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete benchmark model."""

    name: str
    suite: str  # "spec2006" or "cloudsuite"
    patterns: tuple
    mean_instr_delta: int = 6
    write_fraction: float = 0.1
    mpki_class: str = "high"  # informational: "high" or "low"


def _lines(fraction: float, llc_lines: int) -> int:
    return max(32, int(fraction * llc_lines))


def _make_generator(pattern: PatternSpec, llc_lines: int, length: int, offset: int):
    """Build a make_generator callable for PatternMixer, shifted by offset."""
    working_set = _lines(pattern.working_set, llc_lines)

    def shifted(generator):
        for line, pc_id, is_write in generator:
            yield line + offset, pc_id, is_write

    kind = pattern.kind
    if kind == "stream":
        return lambda rng: shifted(synthetic.sequential_stream(length, working_set))
    if kind == "stride":
        return lambda rng: shifted(
            synthetic.strided_stream(length, working_set, pattern.stride)
        )
    if kind == "cyclic":
        return lambda rng: shifted(synthetic.cyclic_working_set(length, working_set))
    if kind == "random":
        return lambda rng: shifted(synthetic.random_uniform(rng, length, working_set))
    if kind == "chase":
        return lambda rng: shifted(synthetic.pointer_chase(rng, length, working_set))
    if kind == "zipf":
        return lambda rng: shifted(
            synthetic.zipfian(rng, length, working_set, pattern.alpha)
        )
    if kind == "multi_stream":
        return lambda rng: shifted(
            synthetic.multi_stream(rng, length, working_set, pattern.streams)
        )
    if kind == "scan_hot":
        scan = _lines(pattern.scan_lines or pattern.working_set, llc_lines)
        return lambda rng: shifted(
            synthetic.scan_with_hot_set(
                rng, length, working_set, scan, pattern.hot_fraction
            )
        )
    raise ValueError(f"unknown pattern kind {kind!r}")


def build_trace(
    spec: WorkloadSpec, llc_lines: int, length: int, seed: int = 0, core: int = 0
) -> Trace:
    """Instantiate a workload model as a concrete trace.

    Args:
        spec: The workload model.
        llc_lines: LLC capacity in lines (working sets scale with this).
        length: Number of memory references to generate.
        seed: RNG seed.
        core: Issuing core id stamped on every record.
    """
    mixer = synthetic.PatternMixer(
        spec.name,
        seed=seed,
        mean_instr_delta=spec.mean_instr_delta,
        write_fraction=spec.write_fraction,
        base_address=core << 28,  # disjoint address spaces per core
    )
    offset = 0
    for pattern in spec.patterns:
        mixer.add(pattern.weight, _make_generator(pattern, llc_lines, length, offset))
        offset += _lines(max(pattern.working_set, pattern.scan_lines), llc_lines) + 64
    trace = mixer.build(length)
    if core:
        trace.records = [
            type(record)(
                address=record.address,
                pc=record.pc,
                access_type=record.access_type,
                instr_delta=record.instr_delta,
                core=core,
            )
            for record in trace.records
        ]
    return trace


def _spec(name, patterns, instr=6, writes=0.1, mpki="high"):
    return WorkloadSpec(name, "spec2006", tuple(patterns), instr, writes, mpki)


def _cloud(name, patterns, instr=8, writes=0.15, mpki="high"):
    return WorkloadSpec(name, "cloudsuite", tuple(patterns), instr, writes, mpki)


P = PatternSpec

#: The 29 SPEC CPU 2006 models (Figure 10's x-axis).  ``instr`` (mean
#: instructions per memory reference) is calibrated so LRU demand MPKI at the
#: default evaluation scale lands near the paper's Figure 12 values.
SPEC2006 = [
    _spec("473.astar", [P(0.3, "chase", 3.0), P(0.7, "zipf", 0.6, alpha=1.0)], instr=14),
    _spec("410.bwaves", [P(0.5, "multi_stream", 12.0, streams=6), P(0.4, "stride", 12.0, stride=3), P(0.1, "zipf", 0.8)], instr=14),
    _spec("401.bzip2", [P(0.4, "stream", 1.2), P(0.6, "zipf", 0.4, alpha=1.2)], instr=14),
    _spec("436.cactusADM", [P(0.4, "stride", 10.0, stride=5), P(0.25, "multi_stream", 8.0), P(0.35, "cyclic", 1.5)], instr=20),
    _spec("454.calculix", [P(0.8, "cyclic", 0.15), P(0.2, "stride", 0.4, stride=2)], instr=18, mpki="low"),
    _spec("447.dealII", [P(0.9, "zipf", 0.2, alpha=1.3), P(0.1, "stream", 0.3)], instr=16, mpki="low"),
    _spec("416.gamess", [P(1.0, "cyclic", 0.08)], instr=25, mpki="low"),
    _spec("403.gcc", [P(0.4, "cyclic", 1.4), P(0.35, "zipf", 0.35, alpha=1.2), P(0.25, "stream", 1.0)], instr=12),
    _spec("459.GemsFDTD", [P(0.35, "stride", 12.0, stride=2), P(0.35, "cyclic", 1.5), P(0.3, "multi_stream", 8.0)], instr=12),
    _spec("445.gobmk", [P(0.8, "zipf", 0.25, alpha=1.1), P(0.2, "random", 0.3)], instr=15, mpki="low"),
    _spec("435.gromacs", [P(0.9, "cyclic", 0.12), P(0.1, "stride", 0.3, stride=4)], instr=14, mpki="low"),
    _spec("464.h264ref", [P(0.7, "zipf", 0.3, alpha=1.2), P(0.3, "stream", 0.5)], instr=12, mpki="low"),
    _spec("456.hmmer", [P(0.9, "cyclic", 0.1), P(0.1, "stream", 0.2)], instr=13, mpki="low"),
    _spec("470.lbm", [P(0.55, "multi_stream", 10.0, streams=8), P(0.3, "cyclic", 1.3), P(0.15, "stream", 1.5)], instr=12, writes=0.45),
    _spec("437.leslie3d", [P(0.35, "stride", 12.0, stride=2), P(0.35, "cyclic", 1.4), P(0.3, "multi_stream", 8.0)], instr=14),
    _spec("462.libquantum", [P(0.75, "multi_stream", 12.0, streams=2), P(0.25, "stream", 0.3)], instr=12, writes=0.25),
    _spec("429.mcf", [P(0.45, "chase", 4.0), P(0.2, "random", 3.0), P(0.35, "zipf", 0.7)], instr=22),
    _spec("433.milc", [P(0.55, "multi_stream", 12.0), P(0.2, "stride", 2.0, stride=7), P(0.25, "cyclic", 1.3)], instr=14),
    _spec("444.namd", [P(1.0, "cyclic", 0.1)], instr=20, mpki="low"),
    _spec("471.omnetpp", [P(0.4, "scan_hot", 0.8, scan_lines=3.0, hot_fraction=0.6), P(0.25, "zipf", 0.7), P(0.35, "cyclic", 1.5)], instr=10),
    _spec("400.perlbench", [P(0.8, "zipf", 0.3, alpha=1.3), P(0.2, "chase", 0.2)], instr=14, mpki="low"),
    _spec("453.povray", [P(1.0, "zipf", 0.08, alpha=1.4)], instr=24, mpki="low"),
    _spec("458.sjeng", [P(0.7, "random", 0.35), P(0.3, "cyclic", 0.15)], instr=16, mpki="low"),
    _spec("450.soplex", [P(0.4, "scan_hot", 0.2, scan_lines=2.0, hot_fraction=0.6), P(0.3, "cyclic", 1.4), P(0.3, "stride", 10.0, stride=3)], instr=9),
    _spec("482.sphinx3", [P(0.35, "zipf", 0.5, alpha=1.1), P(0.35, "cyclic", 1.6), P(0.3, "multi_stream", 6.0)], instr=10),
    _spec("465.tonto", [P(0.9, "cyclic", 0.12), P(0.1, "zipf", 0.25)], instr=17, mpki="low"),
    _spec("481.wrf", [P(0.5, "stride", 10.0, stride=2), P(0.3, "cyclic", 0.8), P(0.2, "multi_stream", 8.0)], instr=13),
    _spec("483.xalancbmk", [P(0.4, "zipf", 0.6, alpha=1.0), P(0.3, "scan_hot", 0.5, scan_lines=2.0), P(0.3, "cyclic", 1.3)], instr=9),
    _spec("434.zeusmp", [P(0.55, "stride", 2.0, stride=4), P(0.45, "cyclic", 1.1)], instr=11),
]

#: The 5 CloudSuite models (Figure 11's x-axis).
CLOUDSUITE = [
    _cloud("cassandra", [P(0.5, "zipf", 0.8, alpha=1.0), P(0.3, "scan_hot", 0.6, scan_lines=2.0), P(0.2, "random", 0.5)], instr=12),
    _cloud("classification", [P(0.6, "multi_stream", 10.0), P(0.4, "zipf", 0.5)], instr=16),
    _cloud("cloud9", [P(0.5, "zipf", 0.6), P(0.3, "chase", 2.5), P(0.2, "stream", 1.5)], instr=11),
    _cloud("nutch", [P(0.6, "zipf", 0.6, alpha=0.9), P(0.4, "cyclic", 1.2)], instr=13),
    _cloud("streaming", [P(0.5, "multi_stream", 10.0), P(0.3, "scan_hot", 0.5, scan_lines=2.5, hot_fraction=0.6), P(0.2, "stream", 1.0)], instr=14, writes=0.2),
]

#: name -> spec, over both suites.
ALL_WORKLOADS = {spec.name: spec for spec in SPEC2006 + CLOUDSUITE}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload model by benchmark name."""
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise ValueError(f"unknown workload {name!r}; known: {known}") from None
