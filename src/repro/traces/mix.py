"""Multicore workload mixes (paper §V-A).

The paper's 4-core evaluation runs four different benchmarks on separate
cores and generates 100 random mixes of the 29 SPEC workloads.  This module
builds those mixes and merges per-core traces into a single interleaved
stream ordered by per-core instruction progress — a deterministic stand-in
for cycle-level interleaving that keeps each core's relative memory
intensity intact.

As in the paper, if one benchmark's trace ends before the others have
finished, it wraps around and replays from the beginning.
"""

from __future__ import annotations

import heapq
import random

from repro.traces.record import Trace, TraceRecord


def random_mixes(
    workload_names, num_mixes: int, mix_size: int = 4, seed: int = 0
) -> list:
    """Draw ``num_mixes`` random ``mix_size``-benchmark combinations."""
    rng = random.Random(seed)
    names = list(workload_names)
    if len(names) < mix_size:
        raise ValueError("not enough workloads to build a mix")
    return [tuple(rng.sample(names, mix_size)) for _ in range(num_mixes)]


def _stamp_core(record: TraceRecord, core: int) -> TraceRecord:
    if record.core == core:
        return record
    return TraceRecord(
        address=record.address,
        pc=record.pc,
        access_type=record.access_type,
        instr_delta=record.instr_delta,
        core=core,
    )


def interleave(traces, target_instructions_per_core: int = None) -> Trace:
    """Merge per-core traces by instruction progress.

    Each step emits the next record of the core with the least instructions
    retired so far (ties break by core id), mimicking equal-IPC progress.
    Cores whose trace ends are wrapped around until every core has retired
    ``target_instructions_per_core`` instructions (default: the smallest
    trace's instruction count).
    """
    traces = list(traces)
    if not traces:
        raise ValueError("no traces to interleave")
    if target_instructions_per_core is None:
        target_instructions_per_core = min(t.instruction_count for t in traces)

    positions = [0] * len(traces)
    progress = [0] * len(traces)
    heap = [(0, core) for core in range(len(traces))]
    heapq.heapify(heap)
    merged = []
    done = [False] * len(traces)
    while heap:
        retired, core = heapq.heappop(heap)
        if done[core]:
            continue
        trace = traces[core]
        record = trace.records[positions[core] % len(trace.records)]
        positions[core] += 1
        merged.append(_stamp_core(record, core))
        progress[core] = retired + record.instr_delta
        if progress[core] >= target_instructions_per_core:
            done[core] = True
        else:
            heapq.heappush(heap, (progress[core], core))
    name = "+".join(trace.name for trace in traces)
    return Trace(name, merged)
