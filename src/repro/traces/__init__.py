"""Trace records, synthetic workload models, and trace I/O."""

from repro.traces.record import (
    LINE_SIZE,
    OFFSET_BITS,
    AccessType,
    Trace,
    TraceRecord,
    access_type_from_name,
)

__all__ = [
    "AccessType",
    "LINE_SIZE",
    "OFFSET_BITS",
    "Trace",
    "TraceRecord",
    "access_type_from_name",
]
