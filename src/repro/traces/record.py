"""Memory access records — the unit of work fed to the simulators.

The paper's trace files are ChampSim LLC access logs of the form
``<PC, Access Type, Address>``.  This module defines the equivalent in-memory
representation used throughout the repository, for *CPU-level* traces (which
the cache hierarchy filters down to LLC accesses) as well as for pre-filtered
LLC traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

#: Cache line size used everywhere in this repository (bytes).
LINE_SIZE = 64
#: Number of low-order address bits covered by a cache line.
OFFSET_BITS = 6


class AccessType(IntEnum):
    """LLC access types, matching ChampSim / the paper's trace format."""

    LOAD = 0  #: Demand load (LD)
    RFO = 1  #: Request-for-ownership, i.e. a store miss (RFO)
    PREFETCH = 2  #: Hardware prefetch (PR)
    WRITEBACK = 3  #: Dirty eviction from an upper level (WB)

    @property
    def is_demand(self) -> bool:
        """True for access types that stall the core (LOAD and RFO)."""
        return self in (AccessType.LOAD, AccessType.RFO)

    @property
    def short_name(self) -> str:
        """Two/three-letter code used in traces and reports (LD/RFO/PR/WB)."""
        return _SHORT_NAMES[self]


_SHORT_NAMES = {
    AccessType.LOAD: "LD",
    AccessType.RFO: "RFO",
    AccessType.PREFETCH: "PR",
    AccessType.WRITEBACK: "WB",
}

_FROM_SHORT = {name: atype for atype, name in _SHORT_NAMES.items()}


def access_type_from_name(name: str) -> AccessType:
    """Parse an access type from its short code ("LD", "RFO", "PR", "WB")."""
    try:
        return _FROM_SHORT[name.upper()]
    except KeyError:
        raise ValueError(f"unknown access type {name!r}") from None


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory reference in a trace.

    Attributes:
        address: Full byte address of the reference.
        pc: Program counter of the instruction issuing the reference.  The
            cache substrate carries PC so that PC-based baselines (SHiP,
            Hawkeye, ...) can be simulated; RLR itself never reads it.
        access_type: LOAD / RFO / PREFETCH / WRITEBACK.
        instr_delta: Number of instructions retired since the previous memory
            reference in the trace (used by the timing model to compute IPC).
        core: Issuing core id (0 for single-core traces).
        line_address: Derived — address with the intra-line offset stripped
            (precomputed once; records are looked up in several cache levels).
    """

    address: int
    pc: int = 0
    access_type: AccessType = AccessType.LOAD
    instr_delta: int = 1
    core: int = 0
    line_address: int = field(init=False, compare=False, default=-1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "line_address", self.address >> OFFSET_BITS)

    @property
    def offset(self) -> int:
        """Low-order offset bits of the address (within the cache line)."""
        return self.address & (LINE_SIZE - 1)

    @property
    def is_write(self) -> bool:
        """True if the access writes the line (RFO or WRITEBACK)."""
        return self.access_type in (AccessType.RFO, AccessType.WRITEBACK)


@dataclass
class Trace:
    """A named sequence of trace records plus bookkeeping metadata."""

    name: str
    records: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def instruction_count(self) -> int:
        """Total instructions represented by the trace."""
        return sum(record.instr_delta for record in self.records)

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched by the trace."""
        return len({record.line_address for record in self.records})
