"""Trace characterization tools.

Profiles the properties the workload models are calibrated on (DESIGN.md
§2): per-set reuse-distance distributions, footprints, access-type and PC
breakdowns, and spatial locality.  Useful both for validating synthetic
models against intended behaviour and for characterizing imported traces.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field


@dataclass
class TraceProfile:
    """Summary statistics for one trace."""

    name: str
    references: int
    instructions: int
    footprint_lines: int
    access_type_counts: dict
    write_fraction: float
    distinct_pcs: int
    sequential_fraction: float  #: accesses at line+1 of the previous access
    reuse_distance_histogram: dict  #: bucketed per-set reuse distances
    cold_fraction: float  #: accesses with no prior reference to the line

    @property
    def mean_instructions_per_reference(self) -> float:
        return self.instructions / self.references if self.references else 0.0


#: Reuse-distance buckets (in per-set accesses), paper-Figure-4 style.
REUSE_BUCKETS = ((0, 8), (8, 16), (16, 32), (32, 64), (64, 128), (128, None))


def _bucket_label(low, high) -> str:
    return f"{low}-{high}" if high is not None else f">={low}"


def profile_trace(trace, num_sets: int = 128) -> TraceProfile:
    """Compute a :class:`TraceProfile` for ``trace``.

    ``num_sets`` sets the set-mapping used for per-set reuse distances
    (use the evaluation LLC's set count to match simulator behaviour).
    """
    set_mask = num_sets - 1
    set_accesses = defaultdict(int)
    last_access = {}
    type_counts = Counter()
    pcs = set()
    histogram = Counter()
    sequential = 0
    cold = 0
    previous_line = None
    writes = 0

    for record in trace:
        line = record.line_address
        set_index = line & set_mask
        set_accesses[set_index] += 1
        type_counts[record.access_type.short_name] += 1
        pcs.add(record.pc)
        if record.is_write:
            writes += 1
        if previous_line is not None and line == previous_line + 1:
            sequential += 1
        previous_line = line

        seen_at = last_access.get(line)
        if seen_at is None:
            cold += 1
        else:
            distance = set_accesses[set_index] - seen_at
            for low, high in REUSE_BUCKETS:
                if high is None or distance < high:
                    if distance >= low:
                        histogram[_bucket_label(low, high)] += 1
                        break
        last_access[line] = set_accesses[set_index]

    references = len(trace)
    reused = max(1, references - cold)
    return TraceProfile(
        name=trace.name,
        references=references,
        instructions=trace.instruction_count,
        footprint_lines=len(last_access),
        access_type_counts=dict(type_counts),
        write_fraction=writes / references if references else 0.0,
        distinct_pcs=len(pcs),
        sequential_fraction=sequential / references if references else 0.0,
        reuse_distance_histogram={
            label: count / reused for label, count in sorted(histogram.items())
        },
        cold_fraction=cold / references if references else 0.0,
    )


def compare_profiles(profiles) -> str:
    """Render several profiles side by side as a text table."""
    from repro.eval.reporting import format_table

    rows = []
    for profile in profiles:
        rows.append({
            "trace": profile.name,
            "refs": profile.references,
            "lines": profile.footprint_lines,
            "instr/ref": round(profile.mean_instructions_per_reference, 1),
            "write%": round(100 * profile.write_fraction, 1),
            "seq%": round(100 * profile.sequential_fraction, 1),
            "cold%": round(100 * profile.cold_fraction, 1),
            "pcs": profile.distinct_pcs,
        })
    headers = ["trace", "refs", "lines", "instr/ref", "write%", "seq%",
               "cold%", "pcs"]
    return format_table(rows, headers=headers, title="trace profiles")
