"""Synthetic access-pattern generators.

These are the building blocks for the SPEC-like / CloudSuite-like workload
models (:mod:`repro.traces.spec_models`).  Each generator yields
``(line_index, pc_id, is_write)`` tuples; :class:`PatternMixer` assembles
them into :class:`repro.traces.record.Trace` objects with addresses, PCs and
per-access instruction deltas.

All generators are deterministic given their RNG, so every experiment in the
repository is exactly reproducible.
"""

from __future__ import annotations

import bisect
import random

from repro.traces.record import AccessType, OFFSET_BITS, Trace, TraceRecord


def sequential_stream(length: int, working_set: int, start: int = 0):
    """A streaming scan: lines visited in order, wrapping at ``working_set``.

    Prefetch-friendly; no temporal reuse until the wrap (classic lbm /
    libquantum behaviour).
    """
    for i in range(length):
        yield (start + i) % working_set, 0, False


def strided_stream(length: int, working_set: int, stride: int, start: int = 0):
    """A strided scan (multi-array stencil codes: GemsFDTD, leslie3d)."""
    position = start
    for _ in range(length):
        yield position % working_set, 1, False
        position += stride


def cyclic_working_set(length: int, working_set: int, stride: int = 3):
    """Loop over a fixed working set: constant reuse distance.

    If ``working_set`` exceeds the cache, LRU thrashes (0% hits) while
    anti-MRU policies retain most of the set — the paper's recency insight.
    The loop advances by a small stride (coprime with the working set, so
    every line is still visited once per cycle): real loop bodies walk
    multi-line records, which keeps a next-line prefetcher from converting
    all loop reuse into prefetch traffic.
    """
    while working_set > 1 and _gcd(stride, working_set) != 1:
        stride += 1
    position = 0
    for _ in range(length):
        yield position, 2, False
        position = (position + stride) % working_set


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def random_uniform(rng: random.Random, length: int, working_set: int):
    """Uniform random accesses over a working set (mcf-like irregularity)."""
    for _ in range(length):
        yield rng.randrange(working_set), 3, False


def pointer_chase(rng: random.Random, length: int, working_set: int):
    """Walk a random permutation cycle: dependent, prefetch-hostile accesses.

    The permutation gives every line the same reuse distance
    (= working_set), modelling linked-data traversals (mcf, astar).
    """
    permutation = list(range(working_set))
    rng.shuffle(permutation)
    position = rng.randrange(working_set)
    for _ in range(length):
        yield position, 4, False
        position = permutation[position]


def zipfian(rng: random.Random, length: int, working_set: int, alpha: float = 1.0):
    """Zipf-skewed accesses: few hot lines, long cold tail (server codes)."""
    # Precompute the CDF once; working sets here are modest (<= ~1e5).
    weights = [1.0 / (rank + 1) ** alpha for rank in range(working_set)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    # Map lines through a shuffle so hot lines are scattered across sets.
    placement = list(range(working_set))
    rng.shuffle(placement)
    for _ in range(length):
        rank = bisect.bisect_left(cdf, rng.random())
        yield placement[min(rank, working_set - 1)], 5, False


def scan_with_hot_set(
    rng: random.Random,
    length: int,
    hot_lines: int,
    scan_lines: int,
    hot_fraction: float = 0.5,
    scan_stride: int = 3,
):
    """Interleave a reused hot set with a one-shot scan.

    The canonical pattern where scan-resistant policies (RRIP/SHiP/RLR) beat
    LRU: the scan floods the cache and evicts the hot set under LRU.  The
    scan advances by ``scan_stride`` lines (> 1) so a next-line prefetcher
    does not trivially cover it — real scans over records/objects skip
    within lines and across them.
    """
    scan_position = 0
    for _ in range(length):
        if rng.random() < hot_fraction:
            yield rng.randrange(hot_lines), 6, False
        else:
            # Scan lines live above the hot set in the address space.
            yield hot_lines + scan_position % scan_lines, 7, False
            scan_position += scan_stride


def multi_stream(rng: random.Random, length: int, working_set: int, streams: int = 8):
    """Interleave several strided streams under a single PC.

    Models streaming codes whose concurrent streams defeat hardware
    prefetching (large-footprint HPC codes like lbm/milc at the LLC): the
    streams share one instruction pointer, so an IP-stride prefetcher sees an
    erratic stride and stays quiet, and each stream advances by its own
    stride > 1, so a next-line prefetcher never covers the next access.  The
    result is a no-reuse miss stream at the LLC, as these codes exhibit.
    """
    region = max(1, working_set // streams)
    positions = [rng.randrange(region) for _ in range(streams)]
    strides = [rng.choice((2, 3, 5)) for _ in range(streams)]
    for _ in range(length):
        stream = rng.randrange(streams)
        line = stream * region + positions[stream]
        positions[stream] = (positions[stream] + strides[stream]) % region
        yield line, 9, False


def phased(rng: random.Random, length: int, phases, phase_length: int = None):
    """Concatenate pattern phases (program-phase changes, paper §III-C).

    Args:
        rng: Source of randomness shared by the phases.
        length: Total accesses to generate.
        phases: Sequence of ``make_generator(rng)`` callables, cycled.
        phase_length: Accesses per phase (default: length / len(phases)).

    Adaptive policies (DRRIP's dueling, RLR's RD refresh) must re-learn at
    each boundary; static heuristics cannot.
    """
    if not phases:
        raise ValueError("phased() needs at least one phase")
    if phase_length is None:
        phase_length = max(1, length // len(phases))
    produced = 0
    phase_index = 0
    while produced < length:
        generator = phases[phase_index % len(phases)](rng)
        for _ in range(min(phase_length, length - produced)):
            try:
                yield next(generator)
            except StopIteration:
                break
            produced += 1
        phase_index += 1


def write_heavy_stream(length: int, working_set: int, write_fraction: float = 0.5):
    """Streaming writes (lbm-like): generates RFOs and downstream writebacks."""
    for i in range(length):
        is_write = (i % max(1, round(1 / write_fraction))) == 0
        yield i % working_set, 8, is_write


#: pc_ids of irregular patterns (random/chase/zipf/scan_hot/multi_stream):
#: their PCs get folded into the shared pool; regular patterns keep clean
#: PCs so stride prefetchers can train.
_IRREGULAR_PC_IDS = frozenset((3, 4, 5, 6, 7, 9))


class PatternMixer:
    """Assemble weighted pattern generators into a single Trace.

    Args:
        name: Trace name.
        seed: RNG seed (patterns and interleaving are deterministic).
        mean_instr_delta: Average instructions between memory references —
            controls memory intensity (and thus MPKI).
        write_fraction: Additional probability of turning any access into a
            store (RFO at L1), on top of pattern-specified writes.
        base_address: Line-address offset for the whole trace (keeps traces
            of co-running cores in disjoint address ranges).
        pc_slots: Size of the shared PC pool the patterns' pc_ids are folded
            into.  Real programs issue each access class from many PCs whose
            behaviours overlap; folding pattern PCs into a small shared pool
            (with per-access jitter) models that, keeping PC-based policies
            (SHiP/Hawkeye) informative but not omniscient.  Set to 0 to give
            every pattern its own clean PC (an idealized best case for
            PC-based policies).
        spatial_locality: Probability that an access is followed by a short
            sequential run over its neighbouring lines.  Real programs touch
            multi-line objects even in irregular phases, which is what makes
            next-line prefetchers usefully accurate; without this, every
            next-line prefetch is dead and prefetch-handling policies get an
            unrealistically large lever.
    """

    def __init__(
        self,
        name: str,
        seed: int = 0,
        mean_instr_delta: int = 6,
        write_fraction: float = 0.0,
        base_address: int = 0,
        pc_slots: int = 8,
        spatial_locality: float = 0.35,
    ) -> None:
        self.name = name
        self.seed = seed
        self.mean_instr_delta = mean_instr_delta
        self.write_fraction = write_fraction
        self.base_address = base_address
        self.pc_slots = pc_slots
        self.spatial_locality = spatial_locality
        self._components = []  # (weight, make_generator)

    def add(self, weight: float, make_generator) -> "PatternMixer":
        """Add a pattern: ``make_generator(rng)`` returns a fresh generator."""
        self._components.append((weight, make_generator))
        return self

    def build(self, length: int) -> Trace:
        """Generate ``length`` records, interleaving patterns by weight."""
        if not self._components:
            raise ValueError("PatternMixer has no patterns")
        rng = random.Random(self.seed)
        generators = []
        weights = []
        for weight, make_generator in self._components:
            generators.append(make_generator(random.Random(rng.randrange(2**31))))
            weights.append(weight)
        total_weight = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total_weight
            cumulative.append(acc)

        records = []
        # Stable across processes (unlike hash(), which is randomized).
        name_digest = sum((i + 1) * ord(ch) for i, ch in enumerate(self.name))
        pc_base = (name_digest & 0xFFFF) << 8
        pending_run = []  # spatial-run continuation lines
        for _ in range(length):
            if pending_run:
                line, pc_id, is_write = pending_run.pop()
            else:
                draw = rng.random()
                index = 0
                while cumulative[index] < draw:
                    index += 1
                try:
                    line, pc_id, is_write = next(generators[index])
                except StopIteration:
                    # Restart exhausted finite patterns.
                    _, make_generator = self._components[index]
                    generators[index] = make_generator(
                        random.Random(rng.randrange(2**31))
                    )
                    line, pc_id, is_write = next(generators[index])
                if rng.random() < self.spatial_locality:
                    run_length = rng.randint(1, 3)
                    pending_run = [
                        (line + offset, pc_id, is_write)
                        for offset in range(run_length, 0, -1)
                    ]
            if not is_write and self.write_fraction > 0:
                is_write = rng.random() < self.write_fraction
            instr_delta = max(1, round(rng.expovariate(1 / self.mean_instr_delta)))
            if self.pc_slots and pc_id in _IRREGULAR_PC_IDS:
                # Fold irregular patterns' PCs into a shared pool with
                # jitter (see ctor).  Regular stream/stride/cyclic patterns
                # keep stable PCs so hardware stride prefetchers can train,
                # as they do on real loop code.
                pc_slot = 16 + (pc_id * 3 + rng.randrange(4)) % self.pc_slots
            else:
                pc_slot = pc_id
            records.append(
                TraceRecord(
                    address=(self.base_address + line) << OFFSET_BITS,
                    pc=pc_base + pc_slot * 4,
                    access_type=AccessType.RFO if is_write else AccessType.LOAD,
                    instr_delta=instr_delta,
                )
            )
        return Trace(self.name, records)
