"""Trace file I/O.

Two formats:

* **CSV** (:func:`save_trace` / :func:`load_trace`): the paper's record
  layout ``pc,access_type,address`` plus the two extra columns this
  repository's timing model needs (``instr_delta,core``).  Files ending in
  ``.gz`` are transparently compressed.  Human-readable, interoperable.
* **Binary** (:func:`save_trace_binary` / :func:`load_trace_binary`): a
  compact fixed-width record format (20 bytes/record after a small header)
  for large traces — ~4x smaller and ~10x faster to parse than CSV.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path

from repro.traces.record import (
    AccessType,
    Trace,
    TraceRecord,
    access_type_from_name,
)

_HEADER = "pc,access_type,address,instr_delta,core"

#: Binary format: magic, version, record struct (address, pc, type,
#: instr_delta, core).
_BINARY_MAGIC = b"RPTR"
_BINARY_VERSION = 1
_RECORD_STRUCT = struct.Struct("<QQBHB")


def _open(path, mode):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(trace: Trace, path) -> None:
    """Write ``trace`` to ``path`` (CSV, gzip if the name ends in .gz)."""
    with _open(path, "w") as handle:
        handle.write(f"# trace: {trace.name}\n")
        handle.write(_HEADER + "\n")
        for record in trace.records:
            handle.write(
                f"{record.pc:#x},{record.access_type.short_name},"
                f"{record.address:#x},{record.instr_delta},{record.core}\n"
            )


def load_trace(path, name: str = None) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    records = []
    trace_name = name
    with _open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if trace_name is None and "trace:" in line:
                    trace_name = line.split("trace:", 1)[1].strip()
                continue
            if line.startswith("pc,"):
                continue  # header
            fields = line.split(",")
            if len(fields) not in (3, 5):
                raise ValueError(f"malformed trace line: {line!r}")
            pc = int(fields[0], 0)
            access_type = access_type_from_name(fields[1])
            address = int(fields[2], 0)
            instr_delta = int(fields[3]) if len(fields) == 5 else 1
            core = int(fields[4]) if len(fields) == 5 else 0
            records.append(
                TraceRecord(
                    address=address,
                    pc=pc,
                    access_type=access_type,
                    instr_delta=instr_delta,
                    core=core,
                )
            )
    return Trace(trace_name or str(path), records)


def save_trace_binary(trace: Trace, path) -> None:
    """Write ``trace`` in the compact binary format."""
    name_bytes = trace.name.encode("utf-8")[:255]
    with open(path, "wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(struct.pack("<BB", _BINARY_VERSION, len(name_bytes)))
        handle.write(name_bytes)
        handle.write(struct.pack("<Q", len(trace.records)))
        pack = _RECORD_STRUCT.pack
        for record in trace.records:
            handle.write(
                pack(
                    record.address,
                    record.pc,
                    int(record.access_type),
                    min(record.instr_delta, 0xFFFF),
                    record.core,
                )
            )


def load_trace_binary(path) -> Trace:
    """Read a trace written by :func:`save_trace_binary`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _BINARY_MAGIC:
            raise ValueError(f"not a binary trace file: {path}")
        version, name_length = struct.unpack("<BB", handle.read(2))
        if version != _BINARY_VERSION:
            raise ValueError(f"unsupported trace version {version}")
        name = handle.read(name_length).decode("utf-8")
        (count,) = struct.unpack("<Q", handle.read(8))
        size = _RECORD_STRUCT.size
        payload = handle.read(count * size)
        if len(payload) != count * size:
            raise ValueError("truncated binary trace file")
        records = []
        unpack = _RECORD_STRUCT.unpack_from
        for index in range(count):
            address, pc, access_type, instr_delta, core = unpack(
                payload, index * size
            )
            records.append(
                TraceRecord(
                    address=address,
                    pc=pc,
                    access_type=AccessType(access_type),
                    instr_delta=instr_delta,
                    core=core,
                )
            )
    return Trace(name, records)
