"""Trace file I/O.

Two formats:

* **CSV** (:func:`save_trace` / :func:`load_trace`): the paper's record
  layout ``pc,access_type,address`` plus the two extra columns this
  repository's timing model needs (``instr_delta,core``).  Files ending in
  ``.gz`` are transparently compressed.  Human-readable, interoperable.
* **Binary** (:func:`save_trace_binary` / :func:`load_trace_binary`): a
  compact fixed-width record format (20 bytes/record after a small header)
  for large traces — ~4x smaller and ~10x faster to parse than CSV.

The binary encoding is exposed as :func:`trace_to_bytes` /
:func:`trace_from_bytes` so traces have one canonical byte representation;
:func:`trace_digest` hashes it, which the prepared-workload disk cache
(:mod:`repro.eval.prep_cache`) uses as the trace component of its content
key.

Ingestion is hardened (see docs/validation.md): both loaders validate
structure and field ranges up front and fail with a typed
:class:`~repro.sanitize.errors.TraceFormatError` carrying the CSV line
number or binary byte offset and record index — never a bare
``struct.error``/``KeyError``.  With ``quarantine=True`` a loader skips
bad records instead of aborting, emits one counted
:class:`TraceQuarantineWarning`, and bumps the ``trace.quarantined``
telemetry counter (free when telemetry is off).
"""

from __future__ import annotations

import gzip
import hashlib
import struct
import warnings
from pathlib import Path

from repro.sanitize.errors import TraceFormatError
from repro.telemetry import get_registry
from repro.traces.record import (
    AccessType,
    Trace,
    TraceRecord,
    access_type_from_name,
)


class TraceQuarantineWarning(UserWarning):
    """Bad trace records were skipped by a ``quarantine=True`` load."""

_HEADER = "pc,access_type,address,instr_delta,core"

#: Binary format: magic, version, record struct (address, pc, type,
#: instr_delta, core).
_BINARY_MAGIC = b"RPTR"
_BINARY_VERSION = 1
_RECORD_STRUCT = struct.Struct("<QQBHB")


def _open(path, mode):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(trace: Trace, path) -> None:
    """Write ``trace`` to ``path`` (CSV, gzip if the name ends in .gz)."""
    with _open(path, "w") as handle:
        handle.write(f"# trace: {trace.name}\n")
        handle.write(_HEADER + "\n")
        for record in trace.records:
            handle.write(
                f"{record.pc:#x},{record.access_type.short_name},"
                f"{record.address:#x},{record.instr_delta},{record.core}\n"
            )


def _quarantine_report(source, skipped: list) -> None:
    """One counted warning + telemetry counter for skipped records."""
    if not skipped:
        return
    get_registry().counter("trace.quarantined").inc(len(skipped))
    first = skipped[0]
    warnings.warn(
        f"{source}: quarantined {len(skipped)} bad record(s) "
        f"(first: {first})",
        TraceQuarantineWarning,
        stacklevel=3,
    )


def _parse_csv_record(fields, source, lineno: int) -> TraceRecord:
    """One validated CSV record; raises a line-numbered TraceFormatError."""
    if len(fields) not in (3, 5):
        raise TraceFormatError(
            source,
            f"expected 3 or 5 comma-separated fields, got {len(fields)}",
            line=lineno,
        )
    try:
        pc = int(fields[0], 0)
        address = int(fields[2], 0)
        instr_delta = int(fields[3]) if len(fields) == 5 else 1
        core = int(fields[4]) if len(fields) == 5 else 0
    except ValueError as error:
        raise TraceFormatError(
            source, f"non-numeric field ({error})", line=lineno
        ) from None
    try:
        access_type = access_type_from_name(fields[1])
    except ValueError:
        known = "/".join(sorted(t.short_name for t in AccessType))
        raise TraceFormatError(
            source,
            f"unknown access_type {fields[1]!r} (expected {known})",
            line=lineno,
        ) from None
    if pc < 0 or address < 0:
        raise TraceFormatError(
            source, f"negative address/pc ({fields[2]!r})", line=lineno
        )
    if instr_delta < 0:
        raise TraceFormatError(
            source, f"negative instr_delta {instr_delta}", line=lineno
        )
    if core < 0:
        raise TraceFormatError(
            source, f"negative core {core}", line=lineno
        )
    return TraceRecord(
        address=address,
        pc=pc,
        access_type=access_type,
        instr_delta=instr_delta,
        core=core,
    )


def load_trace(path, name: str = None, quarantine: bool = False) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Malformed lines raise :class:`TraceFormatError` naming the file and
    1-based line number; with ``quarantine=True`` they are skipped and
    reported once via :class:`TraceQuarantineWarning` instead.
    """
    records = []
    skipped = []
    trace_name = name
    source = str(path)
    with _open(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if trace_name is None and "trace:" in line:
                    trace_name = line.split("trace:", 1)[1].strip()
                continue
            if line.startswith("pc,"):
                continue  # header
            try:
                records.append(
                    _parse_csv_record(line.split(","), source, lineno)
                )
            except TraceFormatError as error:
                if not quarantine:
                    raise
                skipped.append(str(error))
    _quarantine_report(source, skipped)
    return Trace(trace_name or source, records)


def trace_to_bytes(trace: Trace) -> bytes:
    """The canonical binary encoding of ``trace`` (header + fixed records).

    Deterministic: the same name and record sequence always produce the
    same bytes, making the encoding safe to content-hash.
    """
    name_bytes = trace.name.encode("utf-8")[:255]
    chunks = [
        _BINARY_MAGIC,
        struct.pack("<BB", _BINARY_VERSION, len(name_bytes)),
        name_bytes,
        struct.pack("<Q", len(trace.records)),
    ]
    pack = _RECORD_STRUCT.pack
    for record in trace.records:
        chunks.append(
            pack(
                record.address,
                record.pc,
                int(record.access_type),
                min(record.instr_delta, 0xFFFF),
                record.core,
            )
        )
    return b"".join(chunks)


def trace_from_bytes(
    data: bytes, source: str = "<bytes>", quarantine: bool = False
) -> Trace:
    """Decode a trace from its canonical binary encoding.

    Structural problems (bad magic, unknown version, truncated header or
    record tail, trailing garbage) raise :class:`TraceFormatError` with the
    byte offset; a record with an out-of-range ``access_type`` raises with
    both the byte offset and the 0-based record index.  Under
    ``quarantine=True`` bad records are skipped, and a truncated or
    over-long body is reported once while the intact record prefix is
    salvaged; only header-level corruption still raises.
    """
    if len(data) == 0:
        raise TraceFormatError(source, "empty file (no trace header)")
    if data[:4] != _BINARY_MAGIC:
        raise TraceFormatError(
            source,
            f"bad magic {data[:4]!r} (expected {_BINARY_MAGIC!r})",
            offset=0,
        )
    try:
        version, name_length = struct.unpack_from("<BB", data, 4)
    except struct.error:
        raise TraceFormatError(
            source, "truncated header (version byte missing)", offset=4
        ) from None
    if version != _BINARY_VERSION:
        raise TraceFormatError(
            source,
            f"unsupported trace version {version} "
            f"(expected {_BINARY_VERSION})",
            offset=4,
        )
    offset = 6
    name = data[offset : offset + name_length].decode("utf-8", "replace")
    offset += name_length
    try:
        (count,) = struct.unpack_from("<Q", data, offset)
    except struct.error:
        raise TraceFormatError(
            source, "truncated header (record count missing)", offset=offset
        ) from None
    offset += 8
    size = _RECORD_STRUCT.size
    body = len(data) - offset
    skipped = []
    parse_count = count
    if body != count * size:
        if body < count * size:
            whole, partial = divmod(body, size)
            detail = (
                f"truncated record body: header promises {count} records "
                f"({count * size} bytes) but only {body} bytes follow"
            )
            if partial:
                detail += f" (file cut {partial} bytes into a record)"
            error = TraceFormatError(
                source, detail, offset=offset + whole * size, record=whole
            )
            parse_count = whole  # quarantine salvages the intact prefix
        else:
            error = TraceFormatError(
                source,
                f"{body - count * size} trailing byte(s) after the last "
                "record",
                offset=offset + count * size,
            )
        if not quarantine:
            raise error
        skipped.append(str(error))
    records = []
    unpack = _RECORD_STRUCT.unpack_from
    for index in range(parse_count):
        address, pc, access_type, instr_delta, core = unpack(
            data, offset + index * size
        )
        try:
            access_type = AccessType(access_type)
        except ValueError:
            error = TraceFormatError(
                source,
                f"access_type {access_type} outside "
                f"0..{max(AccessType)}",
                offset=offset + index * size,
                record=index,
            )
            if not quarantine:
                raise error from None
            skipped.append(str(error))
            continue
        records.append(
            TraceRecord(
                address=address,
                pc=pc,
                access_type=access_type,
                instr_delta=instr_delta,
                core=core,
            )
        )
    _quarantine_report(source, skipped)
    return Trace(name, records)


def trace_digest(trace: Trace) -> str:
    """SHA-256 hex digest of the canonical binary encoding of ``trace``."""
    return hashlib.sha256(trace_to_bytes(trace)).hexdigest()


def save_trace_binary(trace: Trace, path) -> None:
    """Write ``trace`` in the compact binary format."""
    with open(path, "wb") as handle:
        handle.write(trace_to_bytes(trace))


def load_trace_binary(path, quarantine: bool = False) -> Trace:
    """Read a trace written by :func:`save_trace_binary`.

    A truncated, corrupt, or zero-byte file raises
    :class:`TraceFormatError` naming the file and byte offset (never a
    bare ``struct.error``); ``quarantine=True`` skips records with
    out-of-range fields instead of aborting.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    return trace_from_bytes(data, source=str(path), quarantine=quarantine)
