"""Trace file I/O.

Two formats:

* **CSV** (:func:`save_trace` / :func:`load_trace`): the paper's record
  layout ``pc,access_type,address`` plus the two extra columns this
  repository's timing model needs (``instr_delta,core``).  Files ending in
  ``.gz`` are transparently compressed.  Human-readable, interoperable.
* **Binary** (:func:`save_trace_binary` / :func:`load_trace_binary`): a
  compact fixed-width record format (20 bytes/record after a small header)
  for large traces — ~4x smaller and ~10x faster to parse than CSV.

The binary encoding is exposed as :func:`trace_to_bytes` /
:func:`trace_from_bytes` so traces have one canonical byte representation;
:func:`trace_digest` hashes it, which the prepared-workload disk cache
(:mod:`repro.eval.prep_cache`) uses as the trace component of its content
key.
"""

from __future__ import annotations

import gzip
import hashlib
import struct
from pathlib import Path

from repro.traces.record import (
    AccessType,
    Trace,
    TraceRecord,
    access_type_from_name,
)

_HEADER = "pc,access_type,address,instr_delta,core"

#: Binary format: magic, version, record struct (address, pc, type,
#: instr_delta, core).
_BINARY_MAGIC = b"RPTR"
_BINARY_VERSION = 1
_RECORD_STRUCT = struct.Struct("<QQBHB")


def _open(path, mode):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(trace: Trace, path) -> None:
    """Write ``trace`` to ``path`` (CSV, gzip if the name ends in .gz)."""
    with _open(path, "w") as handle:
        handle.write(f"# trace: {trace.name}\n")
        handle.write(_HEADER + "\n")
        for record in trace.records:
            handle.write(
                f"{record.pc:#x},{record.access_type.short_name},"
                f"{record.address:#x},{record.instr_delta},{record.core}\n"
            )


def load_trace(path, name: str = None) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    records = []
    trace_name = name
    with _open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if trace_name is None and "trace:" in line:
                    trace_name = line.split("trace:", 1)[1].strip()
                continue
            if line.startswith("pc,"):
                continue  # header
            fields = line.split(",")
            if len(fields) not in (3, 5):
                raise ValueError(f"malformed trace line: {line!r}")
            pc = int(fields[0], 0)
            access_type = access_type_from_name(fields[1])
            address = int(fields[2], 0)
            instr_delta = int(fields[3]) if len(fields) == 5 else 1
            core = int(fields[4]) if len(fields) == 5 else 0
            records.append(
                TraceRecord(
                    address=address,
                    pc=pc,
                    access_type=access_type,
                    instr_delta=instr_delta,
                    core=core,
                )
            )
    return Trace(trace_name or str(path), records)


def trace_to_bytes(trace: Trace) -> bytes:
    """The canonical binary encoding of ``trace`` (header + fixed records).

    Deterministic: the same name and record sequence always produce the
    same bytes, making the encoding safe to content-hash.
    """
    name_bytes = trace.name.encode("utf-8")[:255]
    chunks = [
        _BINARY_MAGIC,
        struct.pack("<BB", _BINARY_VERSION, len(name_bytes)),
        name_bytes,
        struct.pack("<Q", len(trace.records)),
    ]
    pack = _RECORD_STRUCT.pack
    for record in trace.records:
        chunks.append(
            pack(
                record.address,
                record.pc,
                int(record.access_type),
                min(record.instr_delta, 0xFFFF),
                record.core,
            )
        )
    return b"".join(chunks)


def trace_from_bytes(data: bytes, source: str = "<bytes>") -> Trace:
    """Decode a trace from its canonical binary encoding."""
    if data[:4] != _BINARY_MAGIC:
        raise ValueError(f"not a binary trace: {source}")
    version, name_length = struct.unpack_from("<BB", data, 4)
    if version != _BINARY_VERSION:
        raise ValueError(f"unsupported trace version {version}")
    offset = 6
    name = data[offset : offset + name_length].decode("utf-8")
    offset += name_length
    (count,) = struct.unpack_from("<Q", data, offset)
    offset += 8
    size = _RECORD_STRUCT.size
    if len(data) - offset < count * size:
        raise ValueError(f"truncated binary trace: {source}")
    records = []
    unpack = _RECORD_STRUCT.unpack_from
    for index in range(count):
        address, pc, access_type, instr_delta, core = unpack(
            data, offset + index * size
        )
        records.append(
            TraceRecord(
                address=address,
                pc=pc,
                access_type=AccessType(access_type),
                instr_delta=instr_delta,
                core=core,
            )
        )
    return Trace(name, records)


def trace_digest(trace: Trace) -> str:
    """SHA-256 hex digest of the canonical binary encoding of ``trace``."""
    return hashlib.sha256(trace_to_bytes(trace)).hexdigest()


def save_trace_binary(trace: Trace, path) -> None:
    """Write ``trace`` in the compact binary format."""
    with open(path, "wb") as handle:
        handle.write(trace_to_bytes(trace))


def load_trace_binary(path) -> Trace:
    """Read a trace written by :func:`save_trace_binary`."""
    with open(path, "rb") as handle:
        data = handle.read()
    return trace_from_bytes(data, source=str(path))
