"""The offline RL design pipeline (paper §III).

Feature extraction (Table II) -> DQN agent with experience replay ->
weight-heat-map analysis (Figure 3) -> hill-climbing feature selection ->
the insights RLR is built from.
"""

from repro.rl.agent import DQNAgent
from repro.rl.analysis import (
    feature_importance,
    heatmap,
    render_heatmap,
    top_features,
)
from repro.rl.environment import RLSimulation
from repro.rl.explain import explain_decision, render_explanation, saliency
from repro.rl.generalization import (
    GeneralizationResult,
    evaluate_generalization,
    generalization_experiment,
    train_across_benchmarks,
)
from repro.rl.metrics import TrainingCurve, TrainingMonitor, train_with_monitor
from repro.rl.multi_agent import (
    MultiAgentReplacementPolicy,
    make_partitioned_agents,
)
from repro.rl.features import ALL_FEATURE_NAMES, FeatureExtractor
from repro.rl.hill_climbing import HillClimbResult, hill_climb
from repro.rl.network import MLP
from repro.rl.policy_adapter import AgentReplacementPolicy
from repro.rl.replay import ReplayMemory, Transition
from repro.rl.reward import FutureOracle, belady_reward
from repro.rl.trainer import (
    TrainedAgent,
    TrainerConfig,
    evaluate_on_stream,
    llc_stream_records,
    make_extractor,
    train_on_stream,
    train_per_benchmark,
)

__all__ = [
    "ALL_FEATURE_NAMES",
    "AgentReplacementPolicy",
    "DQNAgent",
    "FeatureExtractor",
    "FutureOracle",
    "GeneralizationResult",
    "explain_decision",
    "render_explanation",
    "saliency",
    "MultiAgentReplacementPolicy",
    "TrainingCurve",
    "TrainingMonitor",
    "evaluate_generalization",
    "generalization_experiment",
    "make_partitioned_agents",
    "train_across_benchmarks",
    "train_with_monitor",
    "HillClimbResult",
    "MLP",
    "RLSimulation",
    "ReplayMemory",
    "TrainedAgent",
    "TrainerConfig",
    "Transition",
    "belady_reward",
    "evaluate_on_stream",
    "feature_importance",
    "heatmap",
    "hill_climb",
    "llc_stream_records",
    "make_extractor",
    "render_heatmap",
    "top_features",
    "train_on_stream",
    "train_per_benchmark",
]
