"""High-level RL training/evaluation driver (paper §III).

Glues the pieces together: obtains LLC access streams for the training
benchmarks (the eight SPEC applications with a significant Belady-vs-LRU
gap), trains one agent per benchmark (as the paper does for its Figure 3
heat-map analysis) or a single shared agent, and evaluates agents greedily.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.eval.runner import _prepared
from repro.rl.agent import DQNAgent
from repro.rl.environment import RLSimulation
from repro.rl.features import FeatureExtractor
from repro.runs.atomic import atomic_write
from repro.runs.checkpoint import (
    CheckpointError,
    TrainingCheckpoint,
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.telemetry import get_registry, span
from repro.telemetry.instruments import record_training_epoch


def llc_stream_records(eval_config, workload_name: str) -> list:
    """The LLC access stream (TraceRecords) for one workload model."""
    trace = eval_config.trace(workload_name)
    return _prepared(eval_config, trace, 1, None).llc_records


@dataclass
class TrainedAgent:
    """An agent plus the extractor that defines its input layout."""

    agent: DQNAgent
    extractor: FeatureExtractor
    benchmark: str = ""
    train_hit_rate: float = 0.0


@dataclass
class TrainerConfig:
    """Hyper-parameters for a training run (paper values as defaults)."""

    hidden_size: int = 175
    epochs: int = 1
    epsilon: float = 0.1
    gamma: float = 0.0
    batch_size: int = 32
    train_interval: int = 4
    replay_capacity: int = 10_000
    learning_rate: float = 1e-3
    seed: int = 0
    features: Optional[tuple] = None  #: None = the full Table II set (334 dims)
    max_records: Optional[int] = None  #: truncate streams (speed knob)
    #: Global-norm gradient clip (None = unclipped, bit-identical to the
    #: pre-clipping implementation).
    grad_clip: Optional[float] = None
    #: Consecutive divergences of one epoch before training gives up
    #: (see :class:`repro.sanitize.divergence.DivergenceGuard`).
    divergence_strikes: int = 3


def make_extractor(llc_config, features=None) -> FeatureExtractor:
    """A Table II extractor matching an LLC configuration."""
    return FeatureExtractor(
        ways=llc_config.ways, num_sets=llc_config.num_sets, enabled=features
    )


def _checkpoint_fingerprint(config: TrainerConfig, extractor) -> dict:
    """Everything a checkpoint must agree on to be resumable."""
    return {
        "hidden_size": config.hidden_size,
        "epsilon": config.epsilon,
        "gamma": config.gamma,
        "batch_size": config.batch_size,
        "train_interval": config.train_interval,
        "replay_capacity": config.replay_capacity,
        "learning_rate": config.learning_rate,
        "seed": config.seed,
        "max_records": config.max_records,
        "grad_clip": config.grad_clip,
        "features": list(extractor.feature_order),
        "ways": extractor.ways,
        "num_sets": extractor.num_sets,
    }


def _rollback(guard, agent, extractor, snapshot, checkpoint, fingerprint, epoch):
    """Restore the last good training state after a diverged epoch.

    Prefers the durable on-disk checkpoint when it holds exactly this
    epoch boundary (it is then bit-identical to ``snapshot``, and reading
    it exercises the same path a crash-restart would take); otherwise the
    pre-epoch in-memory snapshot.
    """
    if checkpoint is not None and os.path.exists(checkpoint):
        try:
            restored = load_training_checkpoint(checkpoint, fingerprint)
        except (CheckpointError, OSError):
            restored = None
        if restored is not None and restored.epoch == epoch:
            agent.load_state_dict(restored.agent_state)
            extractor.restore_norm_state(restored.norm_maxima)
            return
    guard.restore(agent, extractor, snapshot)


def train_on_stream(
    llc_config,
    records,
    config: TrainerConfig,
    extractor=None,
    checkpoint=None,
    resume: bool = False,
    registry=None,
    sanitize: str = None,
) -> TrainedAgent:
    """Train a fresh agent on one LLC stream for ``config.epochs`` passes.

    With ``checkpoint`` set, the full training state (agent, replay buffer,
    RNGs, normalization maxima, epoch counter) is written atomically after
    every epoch; ``resume=True`` restores an existing checkpoint and
    continues from its epoch, producing weights bit-identical to an
    uninterrupted run.  A missing checkpoint with ``resume=True`` simply
    starts from scratch, so crash-loop supervisors can always pass both.

    ``registry`` (a :class:`repro.telemetry.MetricsRegistry`) records
    per-epoch training telemetry — mean loss, hit rate, epsilon,
    replay-buffer occupancy, and agreement-with-OPT — without touching the
    training computation (bit-identical with or without it).

    Unless the sanitizer mode is ``off``, every finished epoch passes
    through the divergence guard (:mod:`repro.sanitize.divergence`):
    NaN/Inf losses or exploded weights roll the run back to the last good
    state and re-run the epoch — bit-identically on the first retry, with
    an epsilon/learning-rate backoff afterwards — and raise
    :class:`~repro.sanitize.errors.TrainingDivergedError` after
    ``config.divergence_strikes`` consecutive failures of one epoch.
    """
    from repro.sanitize import resolve_mode
    from repro.sanitize.divergence import (
        DivergenceGuard,
        poison_agent,
        training_divergence,
    )
    from repro.testing.faults import poisoned

    if extractor is None:
        extractor = make_extractor(llc_config, config.features)
    if config.max_records is not None:
        records = records[: config.max_records]
    agent = DQNAgent(
        input_size=extractor.size,
        ways=llc_config.ways,
        hidden_size=config.hidden_size,
        epsilon=config.epsilon,
        gamma=config.gamma,
        batch_size=config.batch_size,
        train_interval=config.train_interval,
        replay_capacity=config.replay_capacity,
        learning_rate=config.learning_rate,
        grad_clip=config.grad_clip,
        seed=config.seed,
    )
    fingerprint = _checkpoint_fingerprint(config, extractor)
    start_epoch = 0
    hit_rate = 0.0
    if checkpoint is not None and resume and os.path.exists(checkpoint):
        restored = load_training_checkpoint(checkpoint, fingerprint)
        agent.load_state_dict(restored.agent_state)
        extractor.restore_norm_state(restored.norm_maxima)
        start_epoch = restored.epoch
        hit_rate = restored.train_hit_rate
    guard = None
    if resolve_mode(sanitize) != "off":
        guard = DivergenceGuard(max_strikes=config.divergence_strikes)
    epoch = start_epoch
    while epoch < max(1, config.epochs):
        snapshot = guard.snapshot(agent, extractor) if guard is not None else None
        losses_before = len(agent.losses)
        with span("train_epoch", epoch=epoch):
            simulation = RLSimulation(
                llc_config, agent, extractor, records, train=True
            )
            stats = simulation.run()
        if poisoned("train_epoch", epoch=epoch):
            poison_agent(agent)  # fault injection: corrupt our own state
        if guard is not None:
            problem = training_divergence(
                agent, agent.losses[losses_before:]
            )
            if problem is not None:
                # Raises TrainingDivergedError once strikes are exhausted.
                guard.strike(epoch, problem)
                get_registry().counter("rl.divergence_rollbacks").inc()
                _rollback(
                    guard, agent, extractor, snapshot,
                    checkpoint, fingerprint, epoch,
                )
                guard.apply_backoff(agent)
                continue
            guard.clear()
        hit_rate = stats.hit_rate
        if registry is not None:
            record_training_epoch(
                registry,
                epoch=epoch,
                hit_rate=hit_rate,
                losses=agent.losses[losses_before:],
                agent=agent,
                agreement=simulation.policy.decision_grades(),
            )
        if checkpoint is not None:
            save_training_checkpoint(
                checkpoint,
                TrainingCheckpoint(
                    epoch=epoch + 1,
                    agent_state=agent.state_dict(),
                    norm_maxima=extractor.norm_state(),
                    fingerprint=fingerprint,
                    train_hit_rate=hit_rate,
                ),
            )
        epoch += 1
    return TrainedAgent(
        agent=agent,
        extractor=extractor,
        train_hit_rate=hit_rate,
    )


def evaluate_on_stream(trained: TrainedAgent, llc_config, records):
    """Greedy (no exploration, no learning) pass; returns cache stats."""
    simulation = RLSimulation(
        llc_config, trained.agent, trained.extractor, records, train=False
    )
    return simulation.run()


def save_agent(trained: TrainedAgent, path) -> None:
    """Persist a trained agent (network weights + feature layout) to .npz.

    The write is atomic (temp + fsync + rename via
    :func:`repro.runs.atomic.atomic_write`), so a crash mid-save can never
    leave a truncated, unloadable file at ``path``.  Features are recorded
    in the extractor's canonical layout order
    (:attr:`~repro.rl.features.FeatureExtractor.feature_order`) — the order
    the trained weights are actually laid out against — not an incidental
    sort of the enabled set.  (Write through a file handle: numpy's savez
    appends ".npz" to bare string paths, which would break loading from the
    exact path given.)
    """
    import numpy as np

    network = trained.agent.network
    payload = {
        "w1": network.w1,
        "b1": network.b1,
        "w2": network.w2,
        "b2": network.b2,
        "meta": np.array(
            [network.input_size, network.hidden_size, network.output_size]
        ),
        "features": np.array(trained.extractor.feature_order, dtype="U40"),
        "geometry": np.array(
            [trained.extractor.ways, trained.extractor.num_sets]
        ),
    }
    atomic_write(path, lambda handle: np.savez(handle, **payload))


def load_agent(path) -> TrainedAgent:
    """Load an agent saved with :func:`save_agent` (greedy evaluation use)."""
    import numpy as np

    from repro.rl.agent import DQNAgent
    from repro.rl.network import MLP

    data = np.load(path)
    ways, num_sets = (int(v) for v in data["geometry"])
    extractor = FeatureExtractor(
        ways=ways, num_sets=num_sets, enabled=[str(f) for f in data["features"]]
    )
    network = MLP.load(path)
    agent = DQNAgent(
        input_size=network.input_size,
        ways=network.output_size,
        hidden_size=network.hidden_size,
    )
    agent.network = network
    return TrainedAgent(agent=agent, extractor=extractor)


def train_per_benchmark(
    eval_config, workload_names, config: TrainerConfig = None
) -> dict:
    """One agent per benchmark (paper §III-B heat-map methodology).

    Returns {benchmark: TrainedAgent}.
    """
    config = config or TrainerConfig()
    llc_config = eval_config.hierarchy(num_cores=1).llc
    agents = {}
    for name in workload_names:
        records = llc_stream_records(eval_config, name)
        trained = train_on_stream(llc_config, records, config)
        trained.benchmark = name
        agents[name] = trained
    return agents
