"""The RL training environment (paper Figure 2).

An LLC-only cache simulator fed with a pre-recorded LLC access stream (the
paper generates these with ChampSim; here they come from
:func:`repro.eval.runner.prepare_workload` or straight from synthetic
generators).  On every non-compulsory miss the agent picks the victim; the
environment scores the decision against Belady via the future oracle and the
agent trains from replay memory.
"""

from __future__ import annotations

from repro.cache.cache import Cache
from repro.rl.policy_adapter import AgentReplacementPolicy
from repro.rl.reward import FutureOracle


class RLSimulation:
    """One agent-driven pass over an LLC access stream.

    Args:
        llc_config: LLC geometry.
        agent: A :class:`repro.rl.agent.DQNAgent`.
        feature_extractor: Table II state-vector builder.
        records: The LLC access stream (TraceRecord list).
        train: Learn (epsilon-greedy + rewards) or evaluate (greedy).
    """

    def __init__(self, llc_config, agent, feature_extractor, records, train=True):
        self.records = records
        oracle = FutureOracle(r.line_address for r in records) if train else None
        self.policy = AgentReplacementPolicy(
            agent, feature_extractor, oracle=oracle, train=train
        )
        self.policy.bind(llc_config)
        self.cache = Cache(llc_config, self.policy, detailed=True)

    def run(self):
        """Process the whole stream; returns the cache's statistics."""
        access = self.cache.access
        for record in self.records:
            access(record)
        self.policy.finish()
        return self.cache.stats
