"""Per-decision explanation of the agent's choices (saliency).

The paper's Figure 3 interprets the network *globally* (mean |weight| per
input).  This module adds *local* interpretation: for one concrete
replacement decision, the gradient-times-input saliency of every feature
toward the chosen way's Q-value — which feature values pushed the agent to
evict that particular line.  Together the two views support the §III-B
"decipher the agent's policy" workflow.
"""

from __future__ import annotations

import numpy as np


def qvalue_gradient(network, state: np.ndarray, action: int) -> np.ndarray:
    """d Q(state)[action] / d state, computed analytically for the MLP."""
    state = np.asarray(state, dtype=float)
    pre_hidden = state @ network.w1 + network.b1
    hidden = np.tanh(pre_hidden)
    # dQ/dh = w2[:, action]; dh/dpre = 1 - tanh^2; dpre/dx = w1.T
    grad_hidden = network.w2[:, action] * (1.0 - hidden**2)
    return network.w1 @ grad_hidden


def saliency(network, state: np.ndarray, action: int) -> np.ndarray:
    """Gradient x input attribution per state element."""
    return qvalue_gradient(network, state, action) * np.asarray(state)


def explain_decision(trained, state: np.ndarray, action: int, top: int = 8):
    """Top feature attributions for choosing ``action`` in ``state``.

    Args:
        trained: A :class:`repro.rl.trainer.TrainedAgent`.
        state: The state vector the decision was made on.
        action: The chosen way.
        top: Number of attributions to return.

    Returns:
        List of (feature_label, state_value, attribution) sorted by
        |attribution| descending.  Per-way feature labels carry their way
        index (e.g. ``line_preuse[3]``).
    """
    attributions = saliency(trained.agent.network, state, action)
    labeled = []
    for label, start, end in trained.extractor.layout:
        span_attr = float(attributions[start:end].sum())
        span_value = float(np.asarray(state)[start:end].sum())
        labeled.append((label, span_value, span_attr))
    labeled.sort(key=lambda item: -abs(item[2]))
    return labeled[:top]


def render_explanation(attributions, width: int = 30) -> str:
    """ASCII rendering of an attribution list."""
    if not attributions:
        return "(no attributions)"
    peak = max(abs(a) for _, _, a in attributions) or 1.0
    lines = []
    for label, value, attribution in attributions:
        bar_length = int(round(abs(attribution) / peak * width))
        bar = ("+" if attribution >= 0 else "-") * bar_length
        lines.append(f"{label:28s} value={value:6.2f}  {attribution:+8.4f} {bar}")
    return "\n".join(lines)
