"""Experience replay (paper §III-A "Training").

A bounded circular buffer of <state, action, next_state, reward>
transactions.  Training samples random batches, which "breaks the similarity
of subsequent training samples" and lets the model relearn past experience.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One replacement decision stored for training."""

    state: np.ndarray
    action: int
    next_state: object  #: np.ndarray or None (terminal / gamma == 0)
    reward: float


class ReplayMemory:
    """Fixed-capacity circular transaction buffer."""

    def __init__(self, capacity: int = 10_000, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer = []
        self._cursor = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._buffer)

    def push(self, transition: Transition) -> None:
        """Append, overwriting the oldest transaction when full."""
        if len(self._buffer) < self.capacity:
            self._buffer.append(transition)
        else:
            self._buffer[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int) -> list:
        """Uniformly sample ``batch_size`` transactions (without replacement)."""
        if batch_size > len(self._buffer):
            raise ValueError("not enough transitions to sample")
        return self._rng.sample(self._buffer, batch_size)

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """Buffer contents, cursor, and sampling-RNG state (exact resume)."""
        return {
            "capacity": self.capacity,
            "buffer": list(self._buffer),
            "cursor": self._cursor,
            "rng": self._rng.getstate(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        if state["capacity"] != self.capacity:
            raise ValueError(
                f"replay capacity mismatch: checkpoint {state['capacity']}, "
                f"memory {self.capacity}"
            )
        self._buffer = list(state["buffer"])
        self._cursor = int(state["cursor"])
        self._rng.setstate(state["rng"])
