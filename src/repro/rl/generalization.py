"""Cross-workload generalization (paper §V-A).

"To train the RL agent, we only used the first 100M instructions of eight
SPEC CPU benchmarks.  In evaluation, however, we also show results for 26
new benchmarks that have not been used in training."

This module implements that protocol: train a single agent over the
training benchmarks' LLC streams (round-robin epochs), then evaluate it
greedily on arbitrary (including unseen) workloads through the standard
replay harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.runner import _prepared, replay
from repro.eval.workloads import RL_TRAINING_BENCHMARKS
from repro.rl.policy_adapter import AgentReplacementPolicy
from repro.rl.trainer import TrainedAgent, TrainerConfig, train_on_stream
from repro.rl.environment import RLSimulation


@dataclass
class GeneralizationResult:
    """Outcome of a train-on-A / evaluate-on-B experiment."""

    trained: TrainedAgent
    training_benchmarks: tuple
    hit_rates: dict = field(default_factory=dict)  #: workload -> {policy: rate}

    def agent_beats_lru(self, workload: str) -> bool:
        row = self.hit_rates[workload]
        return row["rl"] >= row["lru"]


def train_across_benchmarks(
    eval_config,
    benchmarks=RL_TRAINING_BENCHMARKS,
    config: TrainerConfig = None,
    max_records_per_benchmark: int = None,
) -> TrainedAgent:
    """Train one shared agent over several benchmarks' LLC streams.

    Epochs round-robin over the benchmarks (each gets a fresh oracle), so
    the single network sees every training access pattern — the paper's
    "one neural network for victim selection" setup.
    """
    config = config or TrainerConfig()
    llc_config = eval_config.hierarchy(num_cores=1).llc
    trained = None
    stats = None
    for epoch in range(max(1, config.epochs)):
        for name in benchmarks:
            trace = eval_config.trace(name)
            records = _prepared(eval_config, trace, 1, None).llc_records
            if max_records_per_benchmark is not None:
                records = records[:max_records_per_benchmark]
            if trained is None:
                # First stream builds the agent; later streams reuse it.
                trained = train_on_stream(
                    llc_config,
                    records,
                    TrainerConfig(**{**config.__dict__, "epochs": 1}),
                )
            else:
                simulation = RLSimulation(
                    llc_config, trained.agent, trained.extractor, records,
                    train=True,
                )
                stats = simulation.run()
    if stats is not None:
        trained.train_hit_rate = stats.hit_rate
    trained.benchmark = "+".join(benchmarks)
    return trained


def evaluate_generalization(
    eval_config,
    trained: TrainedAgent,
    workloads,
    baselines=("lru", "rlr"),
) -> dict:
    """Greedy evaluation of a trained agent on (possibly unseen) workloads.

    Returns {workload: {"rl": hit_rate, baseline...: hit_rate}} using the
    overall LLC hit rate (the paper's Figure 1 metric).
    """
    results = {}
    for name in workloads:
        trace = eval_config.trace(name)
        prepared = _prepared(eval_config, trace, 1, None)
        row = {}
        for baseline in baselines:
            row[baseline] = replay(prepared, baseline).llc_hit_rate
        adapter = AgentReplacementPolicy(
            trained.agent, trained.extractor, train=False
        )
        row["rl"] = replay(prepared, adapter, detailed=True).llc_hit_rate
        results[name] = row
    return results


def generalization_experiment(
    eval_config,
    held_out,
    training_benchmarks=None,
    config: TrainerConfig = None,
    max_records_per_benchmark: int = None,
) -> GeneralizationResult:
    """Full §V-A protocol: train on one set, evaluate on another."""
    training_benchmarks = tuple(training_benchmarks or RL_TRAINING_BENCHMARKS)
    trained = train_across_benchmarks(
        eval_config,
        training_benchmarks,
        config,
        max_records_per_benchmark=max_records_per_benchmark,
    )
    hit_rates = evaluate_generalization(eval_config, trained, held_out)
    return GeneralizationResult(
        trained=trained,
        training_benchmarks=training_benchmarks,
        hit_rates=hit_rates,
    )
