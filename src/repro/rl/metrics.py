"""Training diagnostics for the RL pipeline.

Tracks, per training window: the fraction of Belady-optimal decisions, the
fraction of actively harmful ones, and the mean training loss — the curves
one watches to know an agent is converging (the paper trains until the
policy stabilizes; these metrics make "stabilizes" observable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rl.reward import NEGATIVE_REWARD, POSITIVE_REWARD


@dataclass
class TrainingCurve:
    """Windowed training-progress series."""

    window: int
    optimal_rates: list = field(default_factory=list)
    harmful_rates: list = field(default_factory=list)
    mean_losses: list = field(default_factory=list)

    @property
    def windows(self) -> int:
        return len(self.optimal_rates)

    @property
    def final_optimal_rate(self) -> float:
        return self.optimal_rates[-1] if self.optimal_rates else 0.0

    def improved(self) -> bool:
        """Did the optimal-decision rate rise from the first to last window?"""
        if len(self.optimal_rates) < 2:
            return False
        return self.optimal_rates[-1] > self.optimal_rates[0]


class TrainingMonitor:
    """Hooks into an agent's decision stream to build a TrainingCurve.

    Wire it by calling :meth:`record_decision` with each decision's scalar
    reward (or the chosen entry of the counterfactual vector) and
    :meth:`record_loss` after each training step; or use
    :func:`train_with_monitor` which does the wiring.
    """

    def __init__(self, window: int = 500) -> None:
        self.curve = TrainingCurve(window=window)
        self._window = window
        self._optimal = 0
        self._harmful = 0
        self._count = 0
        self._losses = []

    def record_decision(self, reward: float) -> None:
        self._count += 1
        if reward == POSITIVE_REWARD:
            self._optimal += 1
        elif reward == NEGATIVE_REWARD:
            self._harmful += 1
        if self._count == self._window:
            self._flush()

    def record_loss(self, loss: float) -> None:
        self._losses.append(loss)

    def _flush(self) -> None:
        self.curve.optimal_rates.append(self._optimal / self._window)
        self.curve.harmful_rates.append(self._harmful / self._window)
        self.curve.mean_losses.append(
            sum(self._losses) / len(self._losses) if self._losses else 0.0
        )
        self._optimal = 0
        self._harmful = 0
        self._count = 0
        self._losses = []


def train_with_monitor(
    llc_config, records, config=None, window: int = 500
):
    """Train an agent while recording its training curve.

    Returns ``(TrainedAgent, TrainingCurve)``.  Implemented by wrapping the
    adapter's reward path; identical training behaviour to
    :func:`repro.rl.trainer.train_on_stream`.
    """
    from repro.cache.cache import Cache
    from repro.rl import reward as reward_module
    from repro.rl.policy_adapter import AgentReplacementPolicy
    from repro.rl.reward import FutureOracle
    from repro.rl.trainer import TrainedAgent, TrainerConfig, make_extractor

    config = config or TrainerConfig()
    extractor = make_extractor(llc_config, config.features)
    if config.max_records is not None:
        records = records[: config.max_records]

    from repro.rl.agent import DQNAgent

    agent = DQNAgent(
        input_size=extractor.size,
        ways=llc_config.ways,
        hidden_size=config.hidden_size,
        epsilon=config.epsilon,
        gamma=config.gamma,
        batch_size=config.batch_size,
        train_interval=config.train_interval,
        replay_capacity=config.replay_capacity,
        learning_rate=config.learning_rate,
        seed=config.seed,
    )
    monitor = TrainingMonitor(window=window)

    class _MonitoredAdapter(AgentReplacementPolicy):
        def victim(self, set_index, cache_set, access):
            way = super().victim(set_index, cache_set, access)
            grade = reward_module.belady_reward(
                self.oracle, cache_set, way, access
            )
            monitor.record_decision(grade)
            return way

    stats = None
    for _ in range(max(1, config.epochs)):
        oracle = FutureOracle(record.line_address for record in records)
        policy = _MonitoredAdapter(agent, extractor, oracle=oracle, train=True)
        policy.bind(llc_config)
        cache = Cache(llc_config, policy, detailed=True)
        for record in records:
            cache.access(record)
        policy.finish()
        stats = cache.stats
    for loss in agent.losses:
        monitor.record_loss(loss)
    trained = TrainedAgent(
        agent=agent,
        extractor=extractor,
        train_hit_rate=stats.hit_rate if stats else 0.0,
    )
    return trained, monitor.curve
