"""Set-partitioned multi-agent replacement (paper §III-A).

"In our simulation framework, there is only one neural network for victim
selection for all sets of the LLC. ...  Designers can choose to use
multiple agents by training them using different combinations of cache
sets."  This module implements that option: the LLC's sets are partitioned
round-robin over K agents, each of which trains only on the decisions of
its own partition.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy
from repro.rl.agent import DQNAgent
from repro.rl.policy_adapter import AgentReplacementPolicy
from repro.rl.reward import FutureOracle


class MultiAgentReplacementPolicy(ReplacementPolicy):
    """Route replacement decisions to one of K set-partitioned agents.

    Each agent owns the sets with ``set_index % num_agents == agent_id``.
    The per-agent adapters share nothing; each maintains its own
    access-preuse records and (in training mode) consumes the same future
    oracle, which is advanced exactly once per LLC access by this wrapper.
    """

    name = "rl_multi"
    needs_line_metadata = True

    def __init__(
        self,
        agents,
        feature_extractor,
        oracle: FutureOracle = None,
        train: bool = False,
    ) -> None:
        super().__init__()
        if not agents:
            raise ValueError("need at least one agent")
        self.num_agents = len(agents)
        self.oracle = oracle
        self.train = train
        # Child adapters never advance the oracle themselves (oracle=None
        # for accounting); rewards still need it, so pass it for lookups
        # but advance centrally.  We accomplish this by advancing here and
        # monkeypatching nothing: the child adapters receive the oracle but
        # with their _account() oracle-advance suppressed via subclassing.
        self._adapters = [
            _PartitionAdapter(agent, feature_extractor, oracle=oracle, train=train)
            for agent in agents
        ]

    def bind(self, config):
        super().bind(config)
        for adapter in self._adapters:
            adapter.bind(config)

    def _adapter_for(self, set_index: int):
        return self._adapters[set_index % self.num_agents]

    def on_hit(self, set_index, way, line, access):
        if self.oracle is not None:
            self.oracle.advance(access.line_address)
        self._adapter_for(set_index).on_hit(set_index, way, line, access)

    def on_miss(self, set_index, access):
        if self.oracle is not None:
            self.oracle.advance(access.line_address)
        self._adapter_for(set_index).on_miss(set_index, access)

    def on_fill(self, set_index, way, line, access):
        self._adapter_for(set_index).on_fill(set_index, way, line, access)

    def on_evict(self, set_index, way, line, access):
        self._adapter_for(set_index).on_evict(set_index, way, line, access)

    def victim(self, set_index, cache_set, access):
        return self._adapter_for(set_index).victim(set_index, cache_set, access)

    def finish(self) -> None:
        """Flush every partition's pending transition."""
        for adapter in self._adapters:
            adapter.finish()


class _PartitionAdapter(AgentReplacementPolicy):
    """An AgentReplacementPolicy that does not advance the shared oracle."""

    def _account(self, set_index, access):
        # The multi-agent wrapper advances the oracle centrally; partitions
        # only track their own set-access counters.
        self._set_accesses[set_index] += 1


def make_partitioned_agents(
    input_size: int,
    ways: int,
    num_agents: int,
    seed: int = 0,
    **agent_kwargs,
) -> list:
    """Construct K independent agents with distinct seeds."""
    return [
        DQNAgent(input_size=input_size, ways=ways, seed=seed + index, **agent_kwargs)
        for index in range(num_agents)
    ]
