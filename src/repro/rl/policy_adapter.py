"""The RL agent as a cache replacement policy (paper Figure 2).

:class:`AgentReplacementPolicy` plugs a :class:`repro.rl.agent.DQNAgent`
into the standard policy interface, so the agent can drive the same cache
simulator as every hand-crafted policy.  In training mode it computes the
Belady-derived reward from a :class:`repro.rl.reward.FutureOracle` and feeds
transitions into the agent's replay memory; in evaluation mode it acts
greedily.

It also maintains the one simulator-level feature hardware cannot easily
provide: *access preuse* — set accesses since the last access to the missing
address (the paper implements this record-keeping in its simulation
framework, and excludes the feature from the final hardware policy for
exactly this reason).
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy
from repro.rl.reward import (
    NEGATIVE_REWARD,
    POSITIVE_REWARD,
    FutureOracle,
    belady_reward,
    belady_reward_vector,
)


class AgentReplacementPolicy(ReplacementPolicy):
    """Replacement decisions delegated to an RL agent."""

    name = "rl"
    needs_line_metadata = True

    def __init__(
        self,
        agent,
        feature_extractor,
        oracle: FutureOracle = None,
        train: bool = False,
    ) -> None:
        super().__init__()
        self.agent = agent
        self.features = feature_extractor
        self.oracle = oracle
        self.train = train
        if train and oracle is None:
            raise ValueError("training requires a FutureOracle for rewards")
        self._set_accesses = None
        self._last_access = {}
        self._pending = None  # (state, action, reward) awaiting next_state
        # Agreement-with-OPT accounting (training only; the reward of the
        # chosen action is already computed, so grading it is free).
        self.optimal_decisions = 0
        self.harmful_decisions = 0
        self.total_decisions = 0

    def _post_bind(self):
        self._set_accesses = [0] * self.num_sets

    # -- access-preuse bookkeeping + oracle advancement ----------------------

    def _account(self, set_index: int, access) -> None:
        self._set_accesses[set_index] += 1
        if self.oracle is not None:
            self.oracle.advance(access.line_address)

    def on_hit(self, set_index, way, line, access):
        self._account(set_index, access)
        self._last_access[access.line_address] = self._set_accesses[set_index]

    def on_miss(self, set_index, access):
        self._account(set_index, access)
        # The fill updates _last_access (on_fill runs after victim()).

    def on_fill(self, set_index, way, line, access):
        self._last_access[access.line_address] = self._set_accesses[set_index]

    def _access_preuse(self, set_index: int, access) -> int:
        last = self._last_access.get(access.line_address)
        if last is None:
            return 0
        return self._set_accesses[set_index] - last

    # -- decisions ------------------------------------------------------------

    def victim(self, set_index, cache_set, access):
        state = self.features.vector(
            access, self._access_preuse(set_index, access), cache_set
        )
        valid_ways = cache_set.valid_ways()
        if self.train:
            action = self.agent.select_action(state, valid_ways)
            if getattr(self.agent, "counterfactual", False):
                rewards = belady_reward_vector(self.oracle, cache_set, access)
                self.agent.observe_vector(state, rewards)
                self._grade(rewards[action])
            else:
                reward = belady_reward(self.oracle, cache_set, action, access)
                self._grade(reward)
                if self._pending is not None:
                    pending_state, pending_action, pending_reward = self._pending
                    self.agent.observe(
                        pending_state, pending_action, pending_reward, state
                    )
                self._pending = (state, action, reward)
        else:
            action = self.agent.select_greedy(state, valid_ways)
        return action

    def _grade(self, reward: float) -> None:
        self.total_decisions += 1
        if reward == POSITIVE_REWARD:
            self.optimal_decisions += 1
        elif reward == NEGATIVE_REWARD:
            self.harmful_decisions += 1

    def decision_grades(self) -> dict:
        """Agreement-with-OPT counts accumulated so far (training mode)."""
        return {
            "optimal": self.optimal_decisions,
            "harmful": self.harmful_decisions,
            "total": self.total_decisions,
        }

    def finish(self) -> None:
        """Flush the last pending transition (end of a training run)."""
        if self._pending is not None:
            state, action, reward = self._pending
            self.agent.observe(state, action, reward, None)
            self._pending = None
