"""Table II feature extraction — the RL agent's state vector.

The paper represents LLC state as 334 floating-point values for a 16-way
cache:

* access information: 6-bit binary offset, access preuse, one-hot access
  type (6 + 1 + 4 = 11);
* set information: set number, set accesses, set accesses since miss (3);
* per-line information for each of the 16 ways: 6-bit binary offset, dirty,
  preuse, age since insertion, age since last access, one-hot last access
  type, LD/RFO/PF/WB access counts, hits since insertion, recency
  (6+1+1+1+1+4+1+1+1+1+1+1 = 20 each, 320 total).

Categorical features are one-hot encoded, numeric features are normalized by
their running maxima (as in §III-A), offsets use their raw 6-bit binary
representation.  Every feature can be individually disabled — the
hill-climbing analysis (§III-B) searches over these switches.
"""

from __future__ import annotations

import numpy as np

from repro.traces.record import AccessType

#: Feature names in Table II order, with their element widths.
ACCESS_FEATURES = (
    ("access_offset", 6),
    ("access_preuse", 1),
    ("access_type", 4),
)
SET_FEATURES = (
    ("set_number", 1),
    ("set_accesses", 1),
    ("set_accesses_since_miss", 1),
)
LINE_FEATURES = (
    ("line_offset", 6),
    ("line_dirty", 1),
    ("line_preuse", 1),
    ("line_age_insertion", 1),
    ("line_age_last_access", 1),
    ("line_last_access_type", 4),
    ("line_ld_count", 1),
    ("line_rfo_count", 1),
    ("line_pf_count", 1),
    ("line_wb_count", 1),
    ("line_hits", 1),
    ("line_recency", 1),
)

ALL_FEATURE_NAMES = tuple(
    name for name, _ in ACCESS_FEATURES + SET_FEATURES + LINE_FEATURES
)


def _one_hot(access_type: AccessType) -> list:
    encoding = [0.0, 0.0, 0.0, 0.0]
    encoding[access_type] = 1.0
    return encoding


def _binary(value: int, bits: int) -> list:
    return [float((value >> bit) & 1) for bit in range(bits)]


class _RunningMax:
    """Normalizes values by the largest magnitude seen so far."""

    __slots__ = ("maxima",)

    def __init__(self) -> None:
        self.maxima = {}

    def normalize(self, key: str, value: float) -> float:
        current = self.maxima.get(key, 1.0)
        if value > current:
            self.maxima[key] = value
            current = value
        return value / current


class FeatureExtractor:
    """Builds state vectors from LLC state (Figure 2's "State Vector").

    Args:
        ways: LLC associativity.
        num_sets: LLC set count (for set-number normalization).
        enabled: Iterable of feature names to include (default: all — the
            full 334-dim vector for a 16-way cache).
    """

    def __init__(self, ways: int, num_sets: int, enabled=None) -> None:
        self.ways = ways
        self.num_sets = num_sets
        if enabled is None:
            enabled = ALL_FEATURE_NAMES
        self.enabled = frozenset(enabled)
        unknown = self.enabled - set(ALL_FEATURE_NAMES)
        if unknown:
            raise ValueError(f"unknown features: {sorted(unknown)}")
        self._norm = _RunningMax()
        self.layout = self._build_layout()
        self.size = self.layout[-1][2] if self.layout else 0

    def _build_layout(self) -> list:
        """[(feature_name, start, end)] index ranges in the state vector."""
        layout = []
        cursor = 0
        for name, width in ACCESS_FEATURES + SET_FEATURES:
            if name in self.enabled:
                layout.append((name, cursor, cursor + width))
                cursor += width
        for way in range(self.ways):
            for name, width in LINE_FEATURES:
                if name in self.enabled:
                    layout.append((f"{name}[{way}]", cursor, cursor + width))
                    cursor += width
        return layout

    @property
    def feature_order(self) -> tuple:
        """Enabled feature names in canonical Table II (layout) order.

        This — not any caller-supplied iteration order — is the order the
        state vector is laid out in, so it is what agent persistence must
        record alongside trained weights.
        """
        return tuple(name for name in ALL_FEATURE_NAMES if name in self.enabled)

    def norm_state(self) -> dict:
        """The running-max normalization state (for training checkpoints)."""
        return dict(self._norm.maxima)

    def restore_norm_state(self, maxima: dict) -> None:
        """Restore :meth:`norm_state` output (exact training resume)."""
        self._norm.maxima = dict(maxima)

    def feature_spans(self) -> dict:
        """name -> list of (start, end) spans (per-way features: one/way)."""
        spans = {}
        for label, start, end in self.layout:
            base = label.split("[", 1)[0]
            spans.setdefault(base, []).append((start, end))
        return spans

    def vector(self, access, access_preuse: int, cache_set) -> np.ndarray:
        """Extract the state vector for a replacement decision.

        Args:
            access: The missing access (a TraceRecord).
            access_preuse: Set accesses since the last access to this
                address (tracked by the RL environment).
            cache_set: The accessed :class:`repro.cache.cache_set.CacheSet`.
        """
        norm = self._norm.normalize
        values = []
        enabled = self.enabled
        if "access_offset" in enabled:
            values.extend(_binary(access.address & 63, 6))
        if "access_preuse" in enabled:
            values.append(norm("access_preuse", float(access_preuse)))
        if "access_type" in enabled:
            values.extend(_one_hot(access.access_type))
        if "set_number" in enabled:
            values.append(cache_set.index / max(1, self.num_sets - 1))
        if "set_accesses" in enabled:
            values.append(norm("set_accesses", float(cache_set.accesses)))
        if "set_accesses_since_miss" in enabled:
            values.append(
                norm("set_accesses_since_miss", float(cache_set.accesses_since_miss))
            )
        recency_scale = max(1, self.ways - 1)
        for line in cache_set.lines:
            valid = line.valid
            if "line_offset" in enabled:
                values.extend(_binary(line.offset if valid else 0, 6))
            if "line_dirty" in enabled:
                values.append(1.0 if valid and line.dirty else 0.0)
            if "line_preuse" in enabled:
                values.append(norm("line_preuse", float(line.preuse)) if valid else 0.0)
            if "line_age_insertion" in enabled:
                values.append(
                    norm("line_age_insertion", float(line.age_since_insertion))
                    if valid
                    else 0.0
                )
            if "line_age_last_access" in enabled:
                values.append(
                    norm("line_age_last_access", float(line.age_since_last_access))
                    if valid
                    else 0.0
                )
            if "line_last_access_type" in enabled:
                values.extend(_one_hot(line.last_access_type) if valid else [0.0] * 4)
            if "line_ld_count" in enabled:
                values.append(
                    norm("line_ld_count", float(line.access_counts[AccessType.LOAD]))
                    if valid
                    else 0.0
                )
            if "line_rfo_count" in enabled:
                values.append(
                    norm("line_rfo_count", float(line.access_counts[AccessType.RFO]))
                    if valid
                    else 0.0
                )
            if "line_pf_count" in enabled:
                values.append(
                    norm(
                        "line_pf_count", float(line.access_counts[AccessType.PREFETCH])
                    )
                    if valid
                    else 0.0
                )
            if "line_wb_count" in enabled:
                values.append(
                    norm(
                        "line_wb_count",
                        float(line.access_counts[AccessType.WRITEBACK]),
                    )
                    if valid
                    else 0.0
                )
            if "line_hits" in enabled:
                values.append(
                    norm("line_hits", float(line.hits_since_insertion))
                    if valid
                    else 0.0
                )
            if "line_recency" in enabled:
                values.append(line.recency / recency_scale if valid else 0.0)
        return np.asarray(values, dtype=np.float64)
