"""The DQN-style RL agent (paper §III-A "Agent" / "Training").

Epsilon-greedy victim selection over the MLP's per-way Q-values, experience
replay, and optional discounting with a target network.  The paper's reward
is an immediate Belady-derived signal, so the default ``gamma`` is 0 (pure
reward regression); discounted Q-learning is supported for experimentation.
"""

from __future__ import annotations

import random

import numpy as np

from repro.rl.network import MLP
from repro.rl.replay import ReplayMemory, Transition

#: Paper: epsilon = 0.1 performed best.
DEFAULT_EPSILON = 0.1


class DQNAgent:
    """Victim-selecting agent: network + replay + exploration policy.

    Args:
        input_size: State-vector width.
        ways: Number of cache ways (output size).
        hidden_size: Hidden-layer width (paper: 175).
        epsilon: Exploration rate (paper: 0.1).
        gamma: Discount factor (0 = immediate-reward regression, the default
            matching the paper's Belady reward).
        batch_size: Replay batch size.
        train_interval: Decisions between training steps.
        target_sync_interval: Training steps between target-network syncs
            (only relevant when gamma > 0).
        replay_capacity: Replay-memory size.
        learning_rate: Adam step size.
        counterfactual: Train on the full Belady reward vector (the reward of
            evicting EVERY way is computable from the future oracle), which
            is far more sample-efficient than single-action DQN updates.
            Set False for the paper-literal single-action mode.
        grad_clip: Global-norm gradient clip (None = no clipping; see
            :class:`~repro.rl.network.MLP`).
        seed: RNG seed for exploration, replay sampling, and weights.
    """

    def __init__(
        self,
        input_size: int,
        ways: int = 16,
        hidden_size: int = 175,
        epsilon: float = DEFAULT_EPSILON,
        gamma: float = 0.0,
        batch_size: int = 32,
        train_interval: int = 4,
        target_sync_interval: int = 256,
        replay_capacity: int = 10_000,
        learning_rate: float = 1e-3,
        counterfactual: bool = True,
        grad_clip: float = None,
        seed: int = 0,
    ) -> None:
        self.counterfactual = counterfactual
        self.ways = ways
        self.epsilon = epsilon
        self.gamma = gamma
        self.batch_size = batch_size
        self.train_interval = train_interval
        self.target_sync_interval = target_sync_interval
        self.network = MLP(
            input_size, hidden_size, ways, learning_rate=learning_rate,
            seed=seed, grad_clip=grad_clip,
        )
        self._target = MLP(
            input_size, hidden_size, ways, learning_rate=learning_rate,
            seed=seed, grad_clip=grad_clip,
        )
        self._target.copy_weights_from(self.network)
        self.replay = ReplayMemory(replay_capacity, seed=seed + 1)
        self._rng = random.Random(seed + 2)
        self.decisions = 0
        self.train_steps = 0
        self.losses = []

    # -- action selection ---------------------------------------------------

    def select_action(self, state: np.ndarray, valid_ways) -> int:
        """Epsilon-greedy choice among ``valid_ways``."""
        if self._rng.random() < self.epsilon:
            return self._rng.choice(list(valid_ways))
        return self.select_greedy(state, valid_ways)

    def select_greedy(self, state: np.ndarray, valid_ways) -> int:
        """Highest-Q valid way (exploitation only)."""
        q_values = self.network.predict_one(state)
        return max(valid_ways, key=lambda way: q_values[way])

    # -- learning -------------------------------------------------------------

    def observe(self, state, action: int, reward: float, next_state=None) -> None:
        """Record a transition and train on schedule."""
        self.replay.push(Transition(state, action, next_state, reward))
        self.decisions += 1
        if (
            self.decisions % self.train_interval == 0
            and len(self.replay) >= self.batch_size
        ):
            self._train_step()

    def observe_vector(self, state, reward_vector) -> None:
        """Record a counterfactual transition (reward for every way)."""
        self.replay.push(
            Transition(state, -1, None, np.asarray(reward_vector, dtype=float))
        )
        self.decisions += 1
        if (
            self.decisions % self.train_interval == 0
            and len(self.replay) >= self.batch_size
        ):
            self._train_step_full()

    def _train_step_full(self) -> None:
        batch = self.replay.sample(self.batch_size)
        states = np.stack([transition.state for transition in batch])
        targets = np.stack([transition.reward for transition in batch])
        loss = self.network.train_batch_full(states, targets)
        self.losses.append(loss)
        self.train_steps += 1

    def _train_step(self) -> None:
        batch = self.replay.sample(self.batch_size)
        states = np.stack([transition.state for transition in batch])
        actions = np.array([transition.action for transition in batch])
        rewards = np.array([transition.reward for transition in batch])
        if self.gamma > 0.0:
            targets = rewards.copy()
            next_states = [transition.next_state for transition in batch]
            have_next = [i for i, s in enumerate(next_states) if s is not None]
            if have_next:
                stacked = np.stack([next_states[i] for i in have_next])
                future_q = self._target.forward(stacked).max(axis=1)
                for offset, index in enumerate(have_next):
                    targets[index] += self.gamma * future_q[offset]
        else:
            targets = rewards
        loss = self.network.train_batch(states, actions, targets)
        self.losses.append(loss)
        self.train_steps += 1
        if self.gamma > 0.0 and self.train_steps % self.target_sync_interval == 0:
            self._target.copy_weights_from(self.network)

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything that evolves during training, for exact resume.

        Covers the online and target networks (weights + Adam state), the
        replay buffer, the exploration RNG, and the decision/training
        counters — restoring this into a freshly constructed agent (same
        hyper-parameters) continues training bit-identically.
        """
        return {
            "ways": self.ways,
            "network": self.network.state_dict(),
            "target": self._target.state_dict(),
            "replay": self.replay.state_dict(),
            "rng": self._rng.getstate(),
            "decisions": self.decisions,
            "train_steps": self.train_steps,
            "losses": list(self.losses),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this agent."""
        if state["ways"] != self.ways:
            raise ValueError(
                f"way-count mismatch: checkpoint {state['ways']}, "
                f"agent {self.ways}"
            )
        self.network.load_state_dict(state["network"])
        self._target.load_state_dict(state["target"])
        self.replay.load_state_dict(state["replay"])
        self._rng.setstate(state["rng"])
        self.decisions = int(state["decisions"])
        self.train_steps = int(state["train_steps"])
        self.losses = list(state["losses"])
