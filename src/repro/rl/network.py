"""The agent's neural network (paper §III-A).

A multi-layer perceptron with one hidden layer — 334 inputs, 175 tanh hidden
neurons, 16 linear outputs for a 16-way LLC — "simple enough for
interpretation but performs almost as well as denser networks".  Implemented
in numpy with Adam, trained by Q-value regression on the selected action's
output only (standard DQN-style masking).
"""

from __future__ import annotations

import numpy as np


class MLP:
    """One-hidden-layer perceptron: tanh hidden, linear output.

    Args:
        input_size: State-vector width (334 for the full feature set, 16-way).
        hidden_size: Hidden neurons (paper: 175).
        output_size: One Q-value per cache way (paper: 16).
        learning_rate: Adam step size.
        seed: Weight-initialization seed.
        grad_clip: Global-norm gradient clip applied before each Adam step
            (None, the default, skips clipping entirely — bit-identical to
            the unclipped implementation).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int = 175,
        output_size: int = 16,
        learning_rate: float = 1e-3,
        seed: int = 0,
        grad_clip: float = None,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.output_size = output_size
        self.learning_rate = learning_rate
        self.grad_clip = grad_clip
        # Xavier/Glorot initialization for tanh.
        bound1 = np.sqrt(6.0 / (input_size + hidden_size))
        bound2 = np.sqrt(6.0 / (hidden_size + output_size))
        self.w1 = rng.uniform(-bound1, bound1, (input_size, hidden_size))
        self.b1 = np.zeros(hidden_size)
        self.w2 = rng.uniform(-bound2, bound2, (hidden_size, output_size))
        self.b2 = np.zeros(output_size)
        # Adam state.
        self._step = 0
        self._moments = {
            name: (np.zeros_like(param), np.zeros_like(param))
            for name, param in self._parameters().items()
        }

    def _parameters(self) -> dict:
        return {"w1": self.w1, "b1": self.b1, "w2": self.w2, "b2": self.b2}

    def forward(self, states: np.ndarray) -> np.ndarray:
        """Q-values for a batch (or single vector) of states."""
        states = np.atleast_2d(states)
        hidden = np.tanh(states @ self.w1 + self.b1)
        return hidden @ self.w2 + self.b2

    def predict_one(self, state: np.ndarray) -> np.ndarray:
        """Q-values for a single state, as a flat vector."""
        return self.forward(state)[0]

    def train_batch(
        self, states: np.ndarray, actions: np.ndarray, targets: np.ndarray
    ) -> float:
        """One Adam step of masked MSE regression.

        Only the output corresponding to each sample's ``action`` receives a
        gradient; returns the batch MSE loss on those outputs.
        """
        states = np.atleast_2d(states)
        batch = states.shape[0]
        pre_hidden = states @ self.w1 + self.b1
        hidden = np.tanh(pre_hidden)
        outputs = hidden @ self.w2 + self.b2

        rows = np.arange(batch)
        predicted = outputs[rows, actions]
        errors = predicted - targets
        loss = float(np.mean(errors**2))

        # Backprop through the masked MSE.
        grad_outputs = np.zeros_like(outputs)
        grad_outputs[rows, actions] = 2.0 * errors / batch
        grad_w2 = hidden.T @ grad_outputs
        grad_b2 = grad_outputs.sum(axis=0)
        grad_hidden = (grad_outputs @ self.w2.T) * (1.0 - hidden**2)
        grad_w1 = states.T @ grad_hidden
        grad_b1 = grad_hidden.sum(axis=0)

        self._adam_step(
            {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}
        )
        return loss

    def train_batch_full(self, states: np.ndarray, targets: np.ndarray) -> float:
        """One Adam step regressing ALL outputs to ``targets``.

        Used for counterfactual Belady-reward training, where the target
        Q-value of every way is known.  Returns the batch MSE.
        """
        states = np.atleast_2d(states)
        batch = states.shape[0]
        pre_hidden = states @ self.w1 + self.b1
        hidden = np.tanh(pre_hidden)
        outputs = hidden @ self.w2 + self.b2

        errors = outputs - targets
        loss = float(np.mean(errors**2))

        grad_outputs = 2.0 * errors / (batch * self.output_size)
        grad_w2 = hidden.T @ grad_outputs
        grad_b2 = grad_outputs.sum(axis=0)
        grad_hidden = (grad_outputs @ self.w2.T) * (1.0 - hidden**2)
        grad_w1 = states.T @ grad_hidden
        grad_b1 = grad_hidden.sum(axis=0)
        self._adam_step(
            {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}
        )
        return loss

    def _adam_step(self, grads: dict, beta1=0.9, beta2=0.999, eps=1e-8) -> None:
        if self.grad_clip is not None:
            norm = float(
                np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
            )
            if norm > self.grad_clip:
                scale = self.grad_clip / norm
                grads = {name: g * scale for name, g in grads.items()}
        self._step += 1
        parameters = self._parameters()
        for name, grad in grads.items():
            m, v = self._moments[name]
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad**2
            m_hat = m / (1 - beta1**self._step)
            v_hat = v / (1 - beta2**self._step)
            parameters[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    def copy_weights_from(self, other: "MLP") -> None:
        """Clone another network's parameters (target-network sync)."""
        self.w1 = other.w1.copy()
        self.b1 = other.b1.copy()
        self.w2 = other.w2.copy()
        self.b2 = other.b2.copy()

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """Every mutable tensor *and* the optimizer state.

        Unlike :meth:`save`/:meth:`load` (deployment persistence, which
        resets Adam), this captures the moments and step counter too, so a
        restored network continues training bit-identically.
        """
        return {
            "geometry": (self.input_size, self.hidden_size, self.output_size),
            "w1": self.w1.copy(),
            "b1": self.b1.copy(),
            "w2": self.w2.copy(),
            "b2": self.b2.copy(),
            "step": self._step,
            "moments": {
                name: (m.copy(), v.copy())
                for name, (m, v) in self._moments.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (exact training resume)."""
        geometry = tuple(state["geometry"])
        expected = (self.input_size, self.hidden_size, self.output_size)
        if geometry != expected:
            raise ValueError(
                f"network geometry mismatch: checkpoint {geometry}, "
                f"model {expected}"
            )
        self.w1 = state["w1"].copy()
        self.b1 = state["b1"].copy()
        self.w2 = state["w2"].copy()
        self.b2 = state["b2"].copy()
        self._step = int(state["step"])
        self._moments = {
            name: (m.copy(), v.copy())
            for name, (m, v) in state["moments"].items()
        }

    def save(self, path) -> None:
        """Persist weights + geometry to an .npz file.

        Writes to exactly ``path``: numpy's savez appends ``.npz`` to bare
        string paths, which would break a subsequent ``load(path)``, so the
        file is opened explicitly.
        """
        with open(path, "wb") as handle:
            np.savez(
                handle,
                w1=self.w1,
                b1=self.b1,
                w2=self.w2,
                b2=self.b2,
                meta=np.array(
                    [self.input_size, self.hidden_size, self.output_size]
                ),
            )

    @classmethod
    def load(cls, path, learning_rate: float = 1e-3) -> "MLP":
        """Load a network persisted with :meth:`save`."""
        data = np.load(path)
        input_size, hidden_size, output_size = (int(v) for v in data["meta"])
        network = cls(input_size, hidden_size, output_size, learning_rate)
        network.w1 = data["w1"]
        network.b1 = data["b1"]
        network.w2 = data["w2"]
        network.b2 = data["b2"]
        network._moments = {
            name: (np.zeros_like(param), np.zeros_like(param))
            for name, param in network._parameters().items()
        }
        return network

    def input_weight_magnitudes(self) -> np.ndarray:
        """Mean |weight| of each input neuron across hidden neurons.

        This is the quantity the paper's Figure 3 heat map plots per feature.
        """
        return np.abs(self.w1).mean(axis=1)
