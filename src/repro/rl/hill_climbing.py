"""Hill-climbing feature selection (paper §III-B).

"We started by training the agent with only one feature at a time.  After
doing this for each individual feature, we select the feature that performs
the best.  Then we enable this feature with one additional feature and
evaluate all such feature pairs.  We repeat the process by adding one more
feature at a time until no further performance improvement is seen."

The paper's search yields five features: access preuse, line preuse, line
last access type, line hits since insertion, and line recency.  The search
here is the same greedy-forward procedure over the Table II feature set,
scored by the trained agent's LLC hit rate on the training stream(s).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rl.features import ALL_FEATURE_NAMES
from repro.rl.trainer import (
    TrainerConfig,
    evaluate_on_stream,
    make_extractor,
    train_on_stream,
)


@dataclass
class HillClimbStep:
    """One round of the greedy search."""

    added_feature: str
    feature_set: tuple
    score: float
    candidate_scores: dict = field(default_factory=dict)


@dataclass
class HillClimbResult:
    """Outcome of the full search."""

    selected: tuple
    steps: list

    @property
    def final_score(self) -> float:
        return self.steps[-1].score if self.steps else 0.0


def _score_feature_set(llc_config, streams, features, config) -> float:
    """Train on each stream with only ``features`` enabled; mean hit rate."""
    total = 0.0
    for records in streams:
        extractor = make_extractor(llc_config, features)
        trained = train_on_stream(llc_config, records, config, extractor=extractor)
        stats = evaluate_on_stream(trained, llc_config, records)
        total += stats.hit_rate
    return total / len(streams)


def hill_climb(
    llc_config,
    streams,
    candidates=ALL_FEATURE_NAMES,
    config: TrainerConfig = None,
    max_features: int = 6,
    min_improvement: float = 1e-3,
) -> HillClimbResult:
    """Greedy-forward feature selection.

    Args:
        llc_config: LLC geometry.
        streams: LLC access streams (lists of TraceRecords) to train/score on.
        candidates: Feature names to search over (default: all of Table II).
        config: Training hyper-parameters; hill climbing typically uses a
            small network and truncated streams for tractability.
        max_features: Stop after selecting this many features.
        min_improvement: Stop when the best addition improves the score by
            less than this.
    """
    if config is None:
        # Small/fast defaults: the search runs many trainings.
        config = TrainerConfig(hidden_size=24, epochs=1, max_records=4000)
    selected = []
    steps = []
    best_score = 0.0
    remaining = [name for name in candidates]
    while remaining and len(selected) < max_features:
        scores = {}
        for candidate in remaining:
            features = tuple(selected) + (candidate,)
            scores[candidate] = _score_feature_set(
                llc_config, streams, features, config
            )
        best_candidate = max(scores, key=scores.get)
        if steps and scores[best_candidate] < best_score + min_improvement:
            break
        best_score = scores[best_candidate]
        selected.append(best_candidate)
        remaining.remove(best_candidate)
        steps.append(
            HillClimbStep(
                added_feature=best_candidate,
                feature_set=tuple(selected),
                score=best_score,
                candidate_scores=scores,
            )
        )
    return HillClimbResult(selected=tuple(selected), steps=steps)
