"""Belady-derived reward (paper §III-A "Reward").

* +1 when the agent evicts the line with the farthest reuse distance in the
  set (the Belady-optimal choice);
* -1 when the evicted line would be reused *sooner* than the line being
  inserted (keeping it would have yielded an earlier hit);
* 0 otherwise.

"Only the optimal replacement decision is assigned a positive reward,
differentiating it from the other decisions."
"""

from __future__ import annotations

from collections import deque

POSITIVE_REWARD = 1.0
NEGATIVE_REWARD = -1.0
NEUTRAL_REWARD = 0.0

#: Next-use position for never-reused lines.
NEVER = float("inf")


class FutureOracle:
    """Next-use lookups over a pre-recorded LLC line-address stream.

    Shares Belady's machinery: per-address queues of future positions,
    advanced once per LLC access.
    """

    def __init__(self, line_addresses) -> None:
        self._occurrences = {}
        for position, line_address in enumerate(line_addresses):
            self._occurrences.setdefault(line_address, deque()).append(position)
        self.position = 0

    def advance(self, line_address: int) -> None:
        """Consume the current stream position (must match the stream)."""
        queue = self._occurrences.get(line_address)
        if not queue or queue[0] != self.position:
            raise RuntimeError(
                f"oracle misalignment at position {self.position}"
            )
        queue.popleft()
        self.position += 1

    def next_use(self, line_address: int) -> float:
        """Stream position of the next access to ``line_address`` (or NEVER)."""
        queue = self._occurrences.get(line_address)
        return queue[0] if queue else NEVER

    def next_use_after(self, line_address: int, position: int) -> float:
        """First access to ``line_address`` strictly after ``position``.

        Lets a consumer that advances the oracle at end-of-access (the
        decision tracer) look past the in-flight occurrence of the line
        being inserted: at decision time that line's queue still holds the
        current position itself.  Queues hold at most one non-future entry
        (everything earlier was consumed by ``advance``), so the scan is
        O(1) in practice.
        """
        queue = self._occurrences.get(line_address)
        if not queue:
            return NEVER
        for occurrence in queue:
            if occurrence > position:
                return occurrence
        return NEVER


def belady_reward_vector(oracle: FutureOracle, cache_set, access) -> list:
    """Counterfactual rewards for evicting EACH way (invalid ways: -1).

    Because the oracle knows the future, the reward of every possible
    eviction is computable at decision time, not just the taken one.  Using
    the full vector as a regression target makes training far more
    sample-efficient than single-action DQN updates; both modes are
    supported (see :class:`repro.rl.agent.DQNAgent`'s ``counterfactual``).
    """
    next_uses = [
        oracle.next_use(line.line_address) if line.valid else None
        for line in cache_set.lines
    ]
    valid_uses = [use for use in next_uses if use is not None]
    farthest = max(valid_uses)
    inserted_next = oracle.next_use(access.line_address)
    rewards = []
    for use in next_uses:
        if use is None:
            rewards.append(NEGATIVE_REWARD)
        elif use == farthest:
            rewards.append(POSITIVE_REWARD)
        elif use < inserted_next:
            rewards.append(NEGATIVE_REWARD)
        else:
            rewards.append(NEUTRAL_REWARD)
    return rewards


def belady_reward(oracle: FutureOracle, cache_set, victim_way: int, access) -> float:
    """Reward the agent's choice of ``victim_way`` for the missing ``access``.

    Must be called *after* the oracle has advanced past the current access,
    so every ``next_use`` refers strictly to the future.
    """
    next_uses = [
        oracle.next_use(line.line_address) if line.valid else NEVER
        for line in cache_set.lines
    ]
    farthest = max(next_uses)
    chosen = next_uses[victim_way]
    if chosen == farthest:
        return POSITIVE_REWARD
    if chosen < oracle.next_use(access.line_address):
        return NEGATIVE_REWARD
    return NEUTRAL_REWARD
