"""Neural-network interpretation (paper §III-B, Figure 3).

To find the features that drive the agent's decisions, the paper computes
the average weight magnitude of each input-layer neuron across all hidden
neurons, and for per-line features additionally averages across the 16 ways.
Plotted per training benchmark, this is the Figure 3 heat map; the features
with consistently high magnitudes (across at least three benchmarks) are the
ones the final RLR policy is built from.
"""

from __future__ import annotations

import numpy as np


def feature_importance(network, extractor) -> dict:
    """Per-feature mean |input weight|, averaged over spans and ways.

    Args:
        network: A trained :class:`repro.rl.network.MLP`.
        extractor: The :class:`repro.rl.features.FeatureExtractor` that
            defined the network's input layout.

    Returns:
        {feature_name: importance} over Table II feature names.
    """
    magnitudes = network.input_weight_magnitudes()
    importances = {}
    for name, spans in extractor.feature_spans().items():
        values = [magnitudes[start:end].mean() for start, end in spans]
        importances[name] = float(np.mean(values))
    return importances


def heatmap(trained_agents: dict) -> tuple:
    """Figure 3's heat-map matrix.

    Args:
        trained_agents: {benchmark: TrainedAgent} from
            :func:`repro.rl.trainer.train_per_benchmark`.

    Returns:
        (feature_names, benchmark_names, matrix) where
        ``matrix[i][j]`` is feature i's importance for benchmark j,
        column-normalized to [0, 1].
    """
    benchmarks = list(trained_agents)
    per_benchmark = {
        benchmark: feature_importance(trained.agent.network, trained.extractor)
        for benchmark, trained in trained_agents.items()
    }
    features = sorted({name for imp in per_benchmark.values() for name in imp})
    matrix = np.zeros((len(features), len(benchmarks)))
    for j, benchmark in enumerate(benchmarks):
        importances = per_benchmark[benchmark]
        column = np.array([importances.get(f, 0.0) for f in features])
        peak = column.max()
        matrix[:, j] = column / peak if peak > 0 else column
    return features, benchmarks, matrix


def top_features(trained_agents: dict, count: int = 5, min_benchmarks: int = 3):
    """Features with high weight in at least ``min_benchmarks`` benchmarks.

    This automates the paper's reading of the heat map ("the features with
    high magnitude of weights, considering at least three benchmarks").
    """
    features, benchmarks, matrix = heatmap(trained_agents)
    threshold = 0.5  # "high magnitude" = top half of the normalized scale
    scores = []
    for i, feature in enumerate(features):
        high_count = int((matrix[i, :] >= threshold).sum())
        scores.append((high_count, float(matrix[i, :].mean()), feature))
    scores.sort(reverse=True)
    qualified = [
        feature for high, _, feature in scores if high >= min_benchmarks
    ]
    if len(qualified) >= count:
        return qualified[:count]
    # Fall back to mean importance if too few cross the threshold.
    return [feature for _, _, feature in scores[:count]]


def render_heatmap(features, benchmarks, matrix, width: int = 8) -> str:
    """ASCII rendering of the Figure 3 heat map (darker = heavier)."""
    shades = " .:-=+*#%@"
    lines = []
    header = " " * 26 + "".join(b[: width - 1].ljust(width) for b in benchmarks)
    lines.append(header)
    for i, feature in enumerate(features):
        cells = []
        for j in range(len(benchmarks)):
            level = int(round(matrix[i, j] * (len(shades) - 1)))
            cells.append((shades[level] * 3).ljust(width))
        lines.append(feature.ljust(26) + "".join(cells))
    return "\n".join(lines)
