"""Set-associative cache with pluggable replacement policy.

The cache is purely functional (no timing); the hierarchy and timing model
live in :mod:`repro.cache.hierarchy` and :mod:`repro.cpu`.  Observers can be
attached to record the access stream (for Belady precomputation and the
paper's Figure 4 analysis) and eviction events (Figures 5–7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache_set import CacheSet
from repro.cache.replacement.base import BYPASS
from repro.cache.stats import CacheStats


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    bypassed: bool = False
    evicted_line_address: int = -1
    evicted_dirty: bool = False

    @property
    def has_writeback(self) -> bool:
        """True if the access displaced a dirty line that must go downstream."""
        return self.evicted_line_address >= 0 and self.evicted_dirty


class Cache:
    """A single cache level.

    Args:
        config: Cache geometry (:class:`repro.cache.config.CacheConfig`).
        policy: A replacement policy instance; ``bind`` is called here.
        allow_bypass: Honour :data:`BYPASS` returned by the policy.  When
            False a bypass request falls back to LRU eviction.
        detailed: Maintain the full Table II per-line metadata (ages, preuse,
            per-type counts).  Needed at the LLC (RL features, analysis);
            upper levels run with ``detailed=False`` for speed.
        sanitize: Contract-sanitizer mode for the policy ("off" / "normal" /
            "strict"; None = ``REPRO_SANITIZE`` or the package default).
            See :func:`repro.sanitize.wrap_policy`; wrapping is idempotent,
            so a pre-wrapped policy is used as-is.
    """

    def __init__(
        self,
        config,
        policy,
        allow_bypass: bool = False,
        detailed: bool = True,
        sanitize: str = None,
    ) -> None:
        # Imported lazily: repro.sanitize pulls in the replacement-policy
        # base module, whose package __init__ imports this module.
        from repro.sanitize import wrap_policy

        self.config = config
        self.policy = wrap_policy(policy, mode=sanitize, allow_bypass=allow_bypass)
        self.allow_bypass = allow_bypass
        self.detailed = detailed
        self.sets = [CacheSet(i, config.ways) for i in range(config.num_sets)]
        self.stats = CacheStats()
        self._seen_lines = set()
        self.access_observers = []
        self.eviction_observers = []
        self.decision_observers = []

    # -- observers --------------------------------------------------------

    def add_access_observer(self, callback) -> None:
        """``callback(access, hit)`` fires on every access to this cache."""
        self.access_observers.append(callback)

    def add_eviction_observer(self, callback) -> None:
        """``callback(set_index, line, access)`` fires before each eviction."""
        self.eviction_observers.append(callback)

    def add_decision_observer(self, callback) -> None:
        """``callback(cache_set, way, victim_line, access)`` per eviction.

        Fires with the full set state *before* the fill, so the observer
        can see every resident line (the decision tracer grades the chosen
        way against the alternatives).  When no observer is registered the
        only cost is an empty-list ``for`` per eviction, identical to the
        pre-existing ``eviction_observers`` loop.
        """
        self.decision_observers.append(callback)

    # -- main entry point ---------------------------------------------------

    def access(self, access) -> AccessResult:
        """Look up ``access``; on a miss, allocate (evicting if needed)."""
        set_index = self.config.set_index(access.line_address)
        tag = self.config.tag(access.line_address)
        cache_set = self.sets[set_index]

        cache_set.begin_access(ages=self.detailed)
        way = cache_set.find(tag)

        if way is not None:
            result = self._handle_hit(cache_set, way, access)
        else:
            result = self._handle_miss(cache_set, tag, access)

        for callback in self.access_observers:
            callback(access, result.hit)
        return result

    def _handle_hit(self, cache_set, way: int, access) -> AccessResult:
        cache_set.record_hit()
        line = cache_set.lines[way]
        if self.detailed:
            line.touch(access)
        elif access.is_write:
            line.dirty = True
        cache_set.promote(way)
        self.stats.record_hit(access.access_type)
        self.policy.on_hit(cache_set.index, way, line, access)
        return AccessResult(hit=True)

    def _handle_miss(self, cache_set, tag: int, access) -> AccessResult:
        cache_set.record_miss()
        compulsory = access.line_address not in self._seen_lines
        self._seen_lines.add(access.line_address)
        self.stats.record_miss(access.access_type, compulsory=compulsory)
        self.policy.on_miss(cache_set.index, access)

        way = cache_set.free_way()
        evicted_address, evicted_dirty = -1, False
        if way is None:
            way = self.policy.victim(cache_set.index, cache_set, access)
            if way == BYPASS:
                if self.allow_bypass:
                    self.stats.bypasses += 1
                    return AccessResult(hit=False, bypassed=True)
                way = cache_set.lru_way()
            victim_line = cache_set.lines[way]
            for callback in self.eviction_observers:
                callback(cache_set.index, victim_line, access)
            for callback in self.decision_observers:
                callback(cache_set, way, victim_line, access)
            self.policy.on_evict(cache_set.index, way, victim_line, access)
            evicted_address = victim_line.line_address
            evicted_dirty = victim_line.dirty
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.dirty_evictions += 1

        line = cache_set.lines[way]
        # Promote BEFORE filling: promote shifts the other lines down based
        # on the outgoing line's recency, keeping recencies a permutation.
        cache_set.promote(way)
        line.fill(tag, access.line_address, access)
        line.recency = self.config.ways - 1
        self.policy.on_fill(cache_set.index, way, line, access)
        return AccessResult(
            hit=False,
            evicted_line_address=evicted_address,
            evicted_dirty=evicted_dirty,
        )

    # -- inspection helpers -------------------------------------------------

    def contains(self, line_address: int) -> bool:
        """True if ``line_address`` is currently cached (no state change)."""
        set_index = self.config.set_index(line_address)
        tag = self.config.tag(line_address)
        return self.sets[set_index].find(tag) is not None

    def invalidate(self, line_address: int) -> bool:
        """Drop ``line_address`` if present; returns whether it was cached."""
        found, _ = self.invalidate_line(line_address)
        return found

    def invalidate_line(self, line_address: int):
        """Drop ``line_address``; returns (was_present, was_dirty).

        Used for back-invalidation in inclusive hierarchies, where a dirty
        upper-level copy must be written back on invalidation.
        """
        set_index = self.config.set_index(line_address)
        tag = self.config.tag(line_address)
        way = self.sets[set_index].find(tag)
        if way is None:
            return False, False
        line = self.sets[set_index].lines[way]
        was_dirty = line.dirty
        line.invalidate()
        return True, was_dirty

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        valid = sum(
            1 for cache_set in self.sets for line in cache_set.lines if line.valid
        )
        return valid / self.config.num_lines

    def reset_stats(self) -> None:
        """Zero the statistics counters (after warm-up)."""
        self.stats.reset()
