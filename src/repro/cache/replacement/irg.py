"""IRG — Inter-Reference Gap distribution replacement.

Takagi & Hiraki, "Inter-Reference Gap Distribution Replacement" (cited as
[27] in the paper): each line carries a weight derived from the time gaps
between its successive references; on a miss the line with the smallest
weight — the one least likely to be re-referenced soon — is evicted.

This implementation keeps, per line, an exponential moving average of its
inter-reference gaps (in set accesses) plus the age since its last
reference, and evicts the line whose expected next reference (EMA gap
minus elapsed age, clamped) is farthest — a faithful, compact rendering of
the IRG idea on this substrate.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy, register_policy


@register_policy
class IRGPolicy(ReplacementPolicy):
    """Inter-reference-gap-based replacement."""

    name = "irg"
    #: EMA smoothing: new_gap weight = 1/4 (a shift in hardware).
    SMOOTH_SHIFT = 2
    #: Gap assigned to lines never re-referenced yet.
    COLD_GAP = 1 << 14

    def _post_bind(self):
        self._gap_ema = [[self.COLD_GAP] * self.ways for _ in range(self.num_sets)]
        self._age = [[0] * self.ways for _ in range(self.num_sets)]

    def _tick(self, set_index: int) -> None:
        ages = self._age[set_index]
        for way in range(self.ways):
            ages[way] += 1

    def on_hit(self, set_index, way, line, access):
        self._tick(set_index)
        gap = self._age[set_index][way]
        previous = self._gap_ema[set_index][way]
        if previous >= self.COLD_GAP:
            self._gap_ema[set_index][way] = gap
        else:
            self._gap_ema[set_index][way] = (
                previous - (previous >> self.SMOOTH_SHIFT) + (gap >> self.SMOOTH_SHIFT)
            )
        self._age[set_index][way] = 0

    def on_miss(self, set_index, access):
        self._tick(set_index)

    def on_fill(self, set_index, way, line, access):
        self._gap_ema[set_index][way] = self.COLD_GAP
        self._age[set_index][way] = 0

    def _expected_wait(self, set_index: int, way: int) -> int:
        """Set accesses until the line's next expected reference (>= 0)."""
        return max(0, self._gap_ema[set_index][way] - self._age[set_index][way])

    def victim(self, set_index, cache_set, access):
        # Evict the line expected to be referenced farthest in the future.
        return max(
            cache_set.valid_ways(),
            key=lambda way: self._expected_wait(set_index, way),
        )

    @classmethod
    def overhead_bits(cls, config):
        # 15-bit EMA gap + 8-bit age per line.
        return config.num_lines * (15 + 8)
