"""SHiP and SHiP++ — PC-signature-based hit predictors.

Wu et al., "SHiP: Signature-based Hit Predictor for High Performance
Caching", MICRO 2011, and Young et al., "SHiP++: Enhancing Signature-Based
Hit Predictor for Improved Cache Performance", CRC2 2017.

Both keep a Signature History Counter Table (SHCT) of saturating counters
indexed by a hashed PC signature.  Lines inserted by PCs whose signature has
a zero counter are predicted dead (inserted at distant RRPV).
"""

from __future__ import annotations

from repro.cache.replacement.base import register_policy
from repro.cache.replacement.rrip import _RRIPBase, RRPV_LONG, RRPV_MAX
from repro.traces.record import AccessType

SHCT_SIZE = 16 * 1024
SHCT_BITS = 3
SHCT_MAX = (1 << SHCT_BITS) - 1


def pc_signature(pc: int, table_size: int = SHCT_SIZE) -> int:
    """Fold a PC into a table index (simple xor-fold hash)."""
    mask = table_size - 1
    return (pc ^ (pc >> 14) ^ (pc >> 28)) & mask


@register_policy
class SHiPPolicy(_RRIPBase):
    """SHiP-PC on top of SRRIP.

    Per-line: signature + outcome bit.  On eviction of a never-reused line,
    the SHCT entry is decremented; on a reuse it is incremented.  Insertion:
    RRPV=3 for zero-counter signatures, RRPV=2 otherwise.

    Overhead (Table I): 2b RRPV/line + (14b sig + 1b outcome)/line sampled —
    the paper reports 14KB for a 16-way 2MB cache; we count RRPV for all
    lines plus the 16K x 3b SHCT (6KB).
    """

    name = "ship"
    uses_pc = True

    def _post_bind(self):
        super()._post_bind()
        self._shct = [1] * SHCT_SIZE
        self._signature = [[0] * self.ways for _ in range(self.num_sets)]
        self._outcome = [[False] * self.ways for _ in range(self.num_sets)]

    def on_hit(self, set_index, way, line, access):
        super().on_hit(set_index, way, line, access)
        signature = self._signature[set_index][way]
        self._outcome[set_index][way] = True
        self._shct[signature] = min(self._shct[signature] + 1, SHCT_MAX)

    def on_evict(self, set_index, way, line, access):
        if not self._outcome[set_index][way]:
            signature = self._signature[set_index][way]
            self._shct[signature] = max(self._shct[signature] - 1, 0)

    def on_fill(self, set_index, way, line, access):
        signature = pc_signature(access.pc)
        self._signature[set_index][way] = signature
        self._outcome[set_index][way] = False
        if self._shct[signature] == 0:
            self._rrpv[set_index][way] = RRPV_MAX
        else:
            self._rrpv[set_index][way] = RRPV_LONG

    @classmethod
    def overhead_bits(cls, config):
        # Paper accounting: 2b RRPV per line (8KB @ 2MB) + 16K x 3b SHCT
        # (6KB) = 14KB.  The sampled-set signature/outcome state is not
        # counted, matching the original publication's 14KB figure.
        return config.num_lines * 2 + SHCT_SIZE * SHCT_BITS


@register_policy
class SHiPPPPolicy(SHiPPolicy):
    """SHiP++: the five CRC2 enhancements on top of SHiP.

    1. PCs at max SHCT counter insert at RRPV=0.
    2. SHCT trains only on a line's *first* re-reference.
    3. Writeback insertions go straight to RRPV=3.
    4. Prefetch accesses get a separate signature space.
    5. Prefetch re-references do not fully promote the line.
    """

    name = "ship++"
    uses_pc = True

    def on_hit(self, set_index, way, line, access):
        signature = self._signature[set_index][way]
        if not self._outcome[set_index][way]:
            # Train only on the first re-reference (enhancement 2).
            self._shct[signature] = min(self._shct[signature] + 1, SHCT_MAX)
            self._outcome[set_index][way] = True
        if access.access_type == AccessType.PREFETCH:
            # Prefetch-aware update (enhancement 5): modest promotion only.
            current = self._rrpv[set_index][way]
            self._rrpv[set_index][way] = min(current, RRPV_LONG)
        else:
            self._rrpv[set_index][way] = 0

    def on_fill(self, set_index, way, line, access):
        if access.access_type == AccessType.PREFETCH:
            # Separate signature space for prefetches (enhancement 4).
            signature = pc_signature(access.pc ^ 0x2A5A5A5A)
        else:
            signature = pc_signature(access.pc)
        self._signature[set_index][way] = signature
        self._outcome[set_index][way] = False
        if access.access_type == AccessType.WRITEBACK:
            self._rrpv[set_index][way] = RRPV_MAX  # enhancement 3
        elif self._shct[signature] == SHCT_MAX:
            self._rrpv[set_index][way] = 0  # enhancement 1
        elif self._shct[signature] == 0:
            self._rrpv[set_index][way] = RRPV_MAX
        else:
            self._rrpv[set_index][way] = RRPV_LONG

    @classmethod
    def overhead_bits(cls, config):
        # SHiP++ doubles the SHCT (separate prefetch signature space): 2b
        # RRPV/line (8KB @ 2MB) + 2 x 16K x 3b SHCT (12KB) = 20KB.
        return config.num_lines * 2 + 2 * SHCT_SIZE * SHCT_BITS
